"""General communication: the CM-2 router.

The router delivers messages between arbitrary virtual processors over
the chip hypercube.  For the emulation, two operations cover everything
the simulation needs:

* :func:`permute` -- scatter values to destination VPs (a permutation
  send: every VP sends exactly one message to a distinct destination);
* :func:`gather` -- fetch values from source VPs (`get`, which the real
  machine implements as a round trip and which costs accordingly).

Both measure the *actual* on-chip/off-chip split of the pattern against
the VP geometry and charge the attached cost model, which is how the
emulation reproduces the communication behaviour behind Figure 7
instead of assuming it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.cm.field import Field
from repro.cm.machine import VPGeometry
from repro.cm.timing import CostModel
from repro.errors import MachineError

ArrayOrField = Union[np.ndarray, Field]


def _unwrap(x: ArrayOrField) -> np.ndarray:
    return x.data if isinstance(x, Field) else np.asarray(x)


def _check_permutation(dst: np.ndarray, n: int) -> None:
    if dst.shape != (n,):
        raise MachineError("destination array must have one entry per VP")
    if n and (dst.min() < 0 or dst.max() >= n):
        raise MachineError(f"destination VP out of range [0, {n})")
    # A permutation send must not have collisions; the hardware would
    # serialize them, the emulation forbids them for determinism.
    counts = np.bincount(dst, minlength=n)
    if np.any(counts > 1):
        raise MachineError("router send has colliding destinations")


def permute(
    values: ArrayOrField,
    dst_vp: np.ndarray,
    geometry: Optional[VPGeometry] = None,
    cost: Optional[CostModel] = None,
    payload_bits: int = 32,
) -> np.ndarray:
    """Send ``values[i]`` to VP ``dst_vp[i]`` (collision-free scatter).

    Returns the received array (``out[dst_vp[i]] = values[i]``).  When a
    cost model is attached, the measured off-chip fraction of the
    pattern is charged.
    """
    v = _unwrap(values)
    if isinstance(values, Field):
        geometry = geometry or values.geometry
        cost = cost or values.cost
    dst = np.asarray(dst_vp)
    n = v.shape[0]
    _check_permutation(dst, n)
    if cost is not None:
        cost.route(np.arange(n), dst, payload_bits=payload_bits)
    out = np.empty_like(v)
    out[dst] = v
    return out


def permute_many(
    columns: Sequence[np.ndarray],
    dst_vp: np.ndarray,
    geometry: VPGeometry,
    cost: Optional[CostModel] = None,
    bits_per_column: int = 32,
) -> list:
    """Permute several same-length columns in one (wider) send.

    The CM implementation moves the whole computational state of a
    particle in one message; modelling it as a single send with a wide
    payload matters for the cost accounting (per-message router
    overhead is paid once, not per column).
    """
    if not columns:
        return []
    dst = np.asarray(dst_vp)
    n = columns[0].shape[0]
    for c in columns:
        if c.shape[0] != n:
            raise MachineError("all columns must have equal length")
    _check_permutation(dst, n)
    if cost is not None:
        cost.route(
            np.arange(n), dst, payload_bits=bits_per_column * len(columns)
        )
    out = []
    for c in columns:
        o = np.empty_like(c)
        o[dst] = c
        out.append(o)
    return out


def gather(
    values: ArrayOrField,
    src_vp: np.ndarray,
    geometry: Optional[VPGeometry] = None,
    cost: Optional[CostModel] = None,
    payload_bits: int = 32,
) -> np.ndarray:
    """Fetch ``values[src_vp[i]]`` into VP ``i`` (a `get`).

    Unlike :func:`permute`, multiple VPs may read the same source.  The
    real machine implements `get` as request + reply, so the charge is
    doubled relative to a one-way send.
    """
    v = _unwrap(values)
    if isinstance(values, Field):
        geometry = geometry or values.geometry
        cost = cost or values.cost
    src = np.asarray(src_vp)
    n = src.shape[0]
    if v.shape[0] and (src.min() < 0 or src.max() >= v.shape[0]):
        raise MachineError("source VP out of range")
    if cost is not None:
        # request (address) out + payload back
        cost.route(np.arange(n), src, payload_bits=payload_bits * 2)
    return v[src]
