"""Unit tests for macroscopic sampling."""

import numpy as np
import pytest

from repro.core.cells import assign_cells
from repro.core.particles import ParticleArrays
from repro.core.sampling import CellSampler
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=20.0)


@pytest.fixture
def snapshot(rng, fs):
    d = Domain(10, 8)
    pop = ParticleArrays.from_freestream(rng, 20 * d.n_cells, fs, (0, 10), (0, 8))
    assign_cells(pop, d)
    return d, pop


class TestDensity:
    def test_uniform_density_recovered(self, snapshot):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        dens = s.number_density()
        assert dens.shape == d.shape
        assert dens.mean() == pytest.approx(20.0, rel=0.01)

    def test_time_average_reduces_noise(self, rng, fs):
        d = Domain(10, 8)
        s1 = CellSampler(d)
        s50 = CellSampler(d)
        for i in range(50):
            pop = ParticleArrays.from_freestream(
                rng, 10 * d.n_cells, fs, (0, 10), (0, 8)
            )
            assign_cells(pop, d)
            if i == 0:
                s1.accumulate(pop)
            s50.accumulate(pop)
        assert s50.number_density().std() < s1.number_density().std()

    def test_density_ratio(self, snapshot, fs):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        assert s.density_ratio(fs.density).mean() == pytest.approx(1.0, rel=0.01)

    def test_volume_correction(self, rng, fs):
        # Particles only in the open half of a half-blocked cell should
        # report the full local density after correction.
        d = Domain(4, 4)
        vf = np.ones(d.shape)
        vf[1, 1] = 0.5
        s = CellSampler(d, vf)
        pop = ParticleArrays.from_freestream(rng, 160, fs, (0, 4), (0, 4))
        assign_cells(pop, d)
        s.accumulate(pop)
        raw = s.number_density(correct_volumes=False)
        corrected = s.number_density(correct_volumes=True)
        assert corrected[1, 1] == pytest.approx(2.0 * raw[1, 1])
        assert corrected[0, 0] == raw[0, 0]

    def test_fully_blocked_cell_reports_zero(self, rng, fs):
        d = Domain(4, 4)
        vf = np.ones(d.shape)
        vf[2, 2] = 0.0
        s = CellSampler(d, vf)
        pop = ParticleArrays.from_freestream(rng, 50, fs, (0, 4), (0, 4))
        assign_cells(pop, d)
        s.accumulate(pop)
        assert s.number_density()[2, 2] == 0.0

    def test_requires_data(self, snapshot):
        d, _ = snapshot
        with pytest.raises(ConfigurationError):
            CellSampler(d).number_density()

    def test_reset(self, snapshot):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        s.reset()
        assert s.steps == 0
        with pytest.raises(ConfigurationError):
            s.number_density()

    def test_vf_shape_checked(self):
        with pytest.raises(ConfigurationError):
            CellSampler(Domain(4, 4), np.ones((3, 3)))


class TestMoments:
    def test_mean_velocity_recovers_drift(self, snapshot, fs):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        u, v, w = s.mean_velocity()
        assert u.mean() == pytest.approx(fs.speed, abs=0.01)
        assert abs(v.mean()) < 0.01

    def test_translational_temperature(self, snapshot, fs):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        rt = s.translational_temperature()
        assert rt.mean() == pytest.approx(fs.rt, rel=0.05)

    def test_rotational_temperature(self, snapshot, fs):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        rt = s.rotational_temperature(rotational_dof=2)
        assert rt.mean() == pytest.approx(fs.rt, rel=0.05)

    def test_empty_cells_report_zero_velocity(self, rng, fs):
        d = Domain(4, 4)
        pop = ParticleArrays.from_freestream(rng, 10, fs, (0, 1), (0, 1))
        assign_cells(pop, d)
        s = CellSampler(d)
        s.accumulate(pop)
        u, _, _ = s.mean_velocity()
        assert u[3, 3] == 0.0

    def test_mean_particles_per_cell(self, snapshot):
        d, pop = snapshot
        s = CellSampler(d)
        s.accumulate(pop)
        assert s.mean_particles_per_cell() == pytest.approx(20.0, rel=0.01)

    def test_wedge_volume_fractions_integration(self, rng, fs):
        d = Domain(30, 20)
        w = Wedge(x_leading=8, base=10, angle_deg=30)
        vf = w.open_volume_fractions(d)
        s = CellSampler(d, vf)
        pop = ParticleArrays.from_freestream(rng, 5000, fs, (0, 30), (0, 20))
        keep = ~w.inside(pop.x, pop.y)
        pop = pop.select(keep)
        assign_cells(pop, d)
        s.accumulate(pop)
        dens = s.number_density()
        assert np.isfinite(dens).all()
