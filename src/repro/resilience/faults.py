"""Deterministic fault injection for the parallel execution stack.

A :class:`FaultPlan` is an armed list of :class:`FaultSpec` entries --
*inject a worker crash on shard 1 at step 9*, *truncate the checkpoint
written at step 50* -- consulted by cheap hooks at the injection points:

* :class:`repro.parallel.backend.ShardWorker` (phase A): ``crash``
  (hard process death via ``os._exit``), ``exception`` (raised inside
  the worker, piped to the parent), ``hang`` (sleep past the barrier
  timeout).
* :class:`repro.parallel.exchange.MigrationChannels` (``ship``):
  ``overflow`` (forces the channel capacity down so the typed overflow
  raise fires) and ``corrupt`` (overwrites the shipped payload with
  seed-keyed garbage for the invariant auditor to catch).
* :func:`repro.io.snapshots.save_simulation`: ``truncate`` (cuts the
  written archive in half so the restore path must detect it).

Every hook is guarded by an ``is None`` test on the plan, so an
unarmed run pays a single attribute check -- in most hooks not even
that, because the plan is simply not installed.

Faults fire **at most once** (per process; worker processes inherit
the plan over ``fork`` and mark fires in their own copy).  After a
recovery the supervisor calls :meth:`FaultPlan.disarm_through` on the
parent's copy so a replay of the failed steps does not re-fire the
same fault through a freshly forked pool -- which is what makes
*deterministic fault at step k* compatible with *bitwise-identical
recovery through step k*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

#: Fault kinds a plan can arm (step-loop injection points).
STEP_FAULT_KINDS = (
    "crash",      # worker process dies (os._exit); inline: raises
    "exception",  # worker raises mid-phase (piped traceback path)
    "hang",       # worker sleeps past the barrier timeout
    "overflow",   # migration channel capacity forced below the load
    "corrupt",    # shipped migration payload overwritten with garbage
    "truncate",   # checkpoint archive truncated after writing
)

#: Service-level fault kinds consumed by :mod:`repro.service`.  Their
#: ``step`` field indexes a different clock per kind: job-worker faults
#: (``worker_kill``, ``worker_stall``) fire at the first heartbeat
#: chunk boundary at or after simulation step ``step``; journal faults
#: (``journal_tear``, ``orchestrator_kill``) fire at the Nth record
#: appended to the service journal.
SERVICE_FAULT_KINDS = (
    "worker_kill",        # job worker process dies hard (os._exit)
    "worker_stall",       # worker stops heartbeating (watchdog prey)
    "journal_tear",       # service journal torn mid-record (torn tail)
    "orchestrator_kill",  # orchestrator dies between journal records
)

#: Every armable fault kind.
FAULT_KINDS = STEP_FAULT_KINDS + SERVICE_FAULT_KINDS

#: Wildcard shard: the fault fires on whichever shard matches first.
ANY_SHARD = -1


@dataclass
class FaultSpec:
    """One armed fault.

    ``step`` is the *earliest* step at which the fault may fire; kinds
    that need traffic to be injectable (``overflow``, ``corrupt`` fire
    only when migrants are actually shipped) latch onto the first
    qualifying step at or after it, so a plan stays deterministic even
    when the exact migration schedule is not known in advance.
    """

    kind: str
    step: int
    shard: int = ANY_SHARD
    #: Sleep duration of a ``hang`` (longer than any barrier timeout).
    seconds: float = 3600.0
    #: Forced channel capacity of an ``overflow``.
    capacity: int = 0
    #: Set once the fault has fired (in this process's copy).
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError("fault step must be non-negative")

    def to_dict(self) -> dict:
        """JSON-serializable form (service submissions ship fault
        plans to job worker processes as plain dicts)."""
        return {
            "kind": self.kind,
            "step": self.step,
            "shard": self.shard,
            "seconds": self.seconds,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            step=int(data["step"]),
            shard=int(data.get("shard", ANY_SHARD)),
            seconds=float(data.get("seconds", 3600.0)),
            capacity=int(data.get("capacity", 0)),
        )


class FaultPlan:
    """A seed-keyed, fire-once collection of faults.

    The seed keys the garbage pattern of ``corrupt`` faults so a
    corruption test is reproducible bit for bit.
    """

    def __init__(self, faults: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.faults: List[FaultSpec] = list(faults)
        self.seed = int(seed)

    @property
    def armed(self) -> bool:
        """True while any fault has not fired yet."""
        return any(not f.fired for f in self.faults)

    def take(
        self, kind: str, step: int, shard: Optional[int] = None
    ) -> Optional[FaultSpec]:
        """Claim (and disarm) the first matching armed fault, if any.

        ``shard=None`` skips the shard filter (used by injection points
        that have no shard identity, e.g. the checkpoint writer).
        """
        for f in self.faults:
            if f.fired or f.kind != kind or step < f.step:
                continue
            if (
                shard is not None
                and f.shard != ANY_SHARD
                and f.shard != shard
            ):
                continue
            f.fired = True
            return f
        return None

    def disarm_through(self, step: int) -> int:
        """Mark every fault armed at or before ``step`` as fired.

        Called by the supervisor after recovering from a failure at
        ``step``: the replayed steps must not re-trigger the fault that
        was already exercised (worker-side fires happen in the worker
        process's copy of the plan and die with it).  Returns the
        number of faults disarmed.
        """
        n = 0
        for f in self.faults:
            if not f.fired and f.step <= step:
                f.fired = True
                n += 1
        return n

    def corruption_pattern(self, step: int, shard: int, shape) -> np.ndarray:
        """Deterministic garbage for a ``corrupt`` fault's payload.

        Seed-keyed by ``(plan seed, step, shard)``: a mix of NaNs and
        out-of-range magnitudes, so both the finite-state and the
        range audits have something to catch.
        """
        rng = np.random.default_rng((self.seed, step, shard))
        garbage = rng.choice(
            np.array([np.nan, 1e30, -1e30]), size=int(np.prod(shape))
        )
        return garbage.reshape(shape)

    def describe(self) -> List[dict]:
        """Serializable summary (journals, test assertions)."""
        return [
            {
                "kind": f.kind,
                "step": f.step,
                "shard": f.shard,
                "fired": f.fired,
            }
            for f in self.faults
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(not f.fired for f in self.faults)
        return f"FaultPlan({len(self.faults)} faults, {live} armed)"
