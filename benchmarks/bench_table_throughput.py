"""TAB2 -- absolute throughput: 7.2 us/particle/step (CM-2) vs 0.8 (Cray-2).

The paper: "Excluding the reservoir particles, for this implementation
that value is 7.2 usec/particle/timestep.  By comparison, the
corresponding fully vectorized implementation of this algorithm on the
Cray-2 takes 0.8 usec/particle/timestep."

The bench reports three numbers: the calibrated CM-2 model at the
anchor, the paper's Cray-2 constant, and this host's *actual* measured
throughput of the vectorized NumPy reference engine (the modern
"vector machine" stand-in) via pytest-benchmark.
"""

from repro.analysis.report import ExperimentRecord
from repro.constants import (
    PAPER_CM2_US_PER_PARTICLE,
    PAPER_CRAY2_US_PER_PARTICLE,
    PAPER_TOTAL_PARTICLES,
)
from repro.cm.timing import CM2TimingModel
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


def test_table_throughput(benchmark, emit):
    cfg = SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=23,
    )
    sim = Simulation(cfg)
    sim.run(5)  # warm the caches / steady population

    result = benchmark(sim.step)
    n_flow = sim.particles.n
    host_us = benchmark.stats["mean"] * 1e6 / n_flow

    tm = CM2TimingModel()
    model = tm.predict_curve([PAPER_TOTAL_PARTICLES])[PAPER_TOTAL_PARTICLES]

    rec = ExperimentRecord("TAB2", "throughput (us / particle / time step)")
    rec.add(
        "CM-2 model at 512k particles",
        PAPER_CM2_US_PER_PARTICLE,
        model.total,
        rel_tol=0.01,
    )
    rec.add(
        "Cray-2 hand-vectorized (paper constant)",
        PAPER_CRAY2_US_PER_PARTICLE,
        PAPER_CRAY2_US_PER_PARTICLE,
        note="documented comparator; not re-run",
    )
    rec.add(
        "this host, NumPy reference engine",
        None,
        host_us,
        note=f"measured over {n_flow} flow particles",
    )
    rec.add(
        "CM-2 / Cray-2 ratio",
        PAPER_CM2_US_PER_PARTICLE / PAPER_CRAY2_US_PER_PARTICLE,
        model.total / PAPER_CRAY2_US_PER_PARTICLE,
        rel_tol=0.02,
    )
    emit(rec)
    assert host_us < 100.0  # vectorization sanity: far under 100 us/particle
