"""Thermodynamic field analysis: temperature and Mach-number fields.

The paper validates on density, but the sampler accumulates full second
moments, so the reproduction can also check the *temperature* and
*Mach-number* structure against the Rankine-Hugoniot relations -- a
stricter test of the collision algorithm (density can be right while
the energy partition is wrong; temperature cannot).

All fields are derived from a :class:`repro.core.sampling.CellSampler`
in the Baganoff normalization (RT in cell-widths^2 / step^2).
"""

from __future__ import annotations

import math
import numpy as np

from repro.core.sampling import CellSampler
from repro.errors import ConfigurationError
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


def temperature_ratio_field(
    sampler: CellSampler, freestream: Freestream
) -> np.ndarray:
    """Translational temperature normalized by the freestream value."""
    rt = sampler.translational_temperature()
    return rt / freestream.rt


def total_temperature_ratio_field(
    sampler: CellSampler,
    freestream: Freestream,
    rotational_dof: int = 2,
) -> np.ndarray:
    """Temperature from ALL modes (translational + rotational).

    Equipartition-weighted: T_tot = (3 T_tr + dof * T_rot) / (3 + dof).
    Differences between this and the translational field expose
    rotational non-equilibrium (e.g. inside shock fronts).
    """
    t_tr = sampler.translational_temperature()
    t_rot = sampler.rotational_temperature(rotational_dof)
    dof = rotational_dof
    t_tot = (3.0 * t_tr + dof * t_rot) / (3.0 + dof)
    return t_tot / freestream.rt


def mach_field(
    sampler: CellSampler,
    freestream: Freestream,
    floor_rt_fraction: float = 1e-3,
) -> np.ndarray:
    """Local Mach number |bulk velocity| / sqrt(gamma R T) per cell.

    Cells with vanishing temperature (empty or single-particle) are
    reported as 0 rather than inf.
    """
    u, v, w = sampler.mean_velocity()
    speed = np.sqrt(u**2 + v**2 + w**2)
    rt = sampler.translational_temperature()
    floor = freestream.rt * floor_rt_fraction
    sound = np.sqrt(freestream.gamma * np.maximum(rt, floor))
    mach = np.where(rt > floor, speed / sound, 0.0)
    return mach


def rotational_nonequilibrium_field(
    sampler: CellSampler, rotational_dof: int = 2
) -> np.ndarray:
    """T_rot / T_tr per cell: 1 at equilibrium.

    Shock interiors lag below 1 while rotation catches up with the
    translational heating; the lag grows when the Future-Work internal
    exchange probability is reduced.
    """
    t_tr = sampler.translational_temperature()
    t_rot = sampler.rotational_temperature(rotational_dof)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(t_tr > 0, t_rot / np.maximum(t_tr, 1e-300), 0.0)
    return ratio


def shock_layer_temperature_ratio(
    sampler: CellSampler,
    freestream: Freestream,
    wedge: Wedge,
    surface_clearance: float = 2.0,
) -> float:
    """Mean T/T_inf in the shock layer over the ramp.

    Compared by the tests/benches against the oblique-shock
    Rankine-Hugoniot temperature ratio (~1.9 for the paper's Mach 4 /
    30-degree case).
    """
    t_field = total_temperature_ratio_field(sampler, freestream)
    i_lo = int(math.ceil(wedge.x_leading + 3.0))
    i_hi = int(math.floor(wedge.x_trailing - 3.0))
    slope = math.tan(math.radians(45.0))
    sc, kc = surface_clearance, 2.0
    # Thin layers on scaled geometries: halve the clearances until
    # usable samples exist (mirrors post_shock_plateau's fallback).
    for _ in range(4):
        vals = []
        for i in range(i_lo, min(i_hi, t_field.shape[0] - 1) + 1):
            x = i + 0.5
            surf = wedge.ramp_height_at(x)
            front = (x - wedge.x_leading) * slope
            j_lo = int(math.ceil(surf + sc))
            j_hi = int(math.floor(front - kc))
            if j_hi > j_lo:
                vals.append(t_field[i, j_lo:j_hi].mean())
        if vals:
            return float(np.mean(vals))
        sc, kc = sc / 2.0, kc / 2.0
    raise ConfigurationError("no usable shock-layer temperature samples")
