"""Run-history recording and the automated steady-state stop."""

import numpy as np
import pytest

from repro.analysis.convergence import SteadyStateDetector
from repro.core.history import CHANNELS, RunHistory, run_with_history
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError


class TestRunHistory:
    def test_records_every_step(self, small_config):
        sim = Simulation(small_config)
        h = run_with_history(sim, 25)
        assert len(h) == 25
        for c in CHANNELS:
            assert h.series(c).shape == (25,)

    def test_unknown_channel(self, small_config):
        sim = Simulation(small_config)
        h = run_with_history(sim, 3)
        with pytest.raises(ConfigurationError):
            h.series("temperature_of_the_cray")

    def test_mass_balance_closes(self, small_config):
        # injected - removed must equal the population change exactly
        # (particles are never silently created or destroyed).
        sim = Simulation(small_config)
        sim.run(10)
        n0 = sim.particles.n
        h = run_with_history(sim, 40)
        residual = h.mass_balance_residual()
        injected = h.series("n_injected_upstream").sum()
        removed = h.series("n_removed_downstream").sum()
        assert sim.particles.n == n0 + injected - removed
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_save(self, small_config, tmp_path):
        sim = Simulation(small_config)
        h = run_with_history(sim, 5)
        p = tmp_path / "hist.npz"
        h.save(p)
        loaded = np.load(p)
        assert loaded["n_flow"].shape == (5,)

    def test_needs_steps_for_balance(self, small_config):
        with pytest.raises(ConfigurationError):
            RunHistory().mass_balance_residual()


class TestSteadyStop:
    def test_stops_early_when_steady(self, small_config):
        sim = Simulation(small_config)
        det = SteadyStateDetector(window=20, tolerance=0.01, patience=5)
        h = run_with_history(
            sim, 500, detector=det, stop_when_steady=True
        )
        assert det.is_steady
        assert len(h) < 500  # stopped before the cap

    def test_bad_monitor_channel(self, small_config):
        sim = Simulation(small_config)
        det = SteadyStateDetector()
        with pytest.raises(ConfigurationError):
            run_with_history(
                sim, 5, detector=det, monitor_channel="nope",
                stop_when_steady=True,
            )

    def test_invalid_steps(self, small_config):
        sim = Simulation(small_config)
        with pytest.raises(ConfigurationError):
            run_with_history(sim, 0)
