"""Macroscopic sampling of cell quantities with time averaging.

The paper's solutions are **time averages**: "The simulation was run for
1200 time steps to reach steady state and then time averaged for a
further 2000 timesteps to generate the solution."  The sort makes
sampling cheap (particles of a cell are contiguous), but the emulation
samples directly with ``np.bincount`` -- same result, one pass, no
Python loops.

Cut cells divide by their **fractional volume** ("special allowance must
be made for the fractional cell volume ... in computing the time average
cell density"), which is exactly the correction the paper's plotting
package lacked (the "jagged edge" caveat of figure 3).  The sampler can
reproduce both behaviours for the figure benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain


class CellSampler:
    """Accumulates per-cell moments over time steps.

    Parameters
    ----------
    domain:
        The grid (defines the cell count and field shapes).
    volume_fractions:
        Optional ``(nx, ny)`` open-area fractions for cut cells; omitted
        means unit volumes everywhere.
    """

    def __init__(
        self, domain: Domain, volume_fractions: Optional[np.ndarray] = None
    ) -> None:
        self.domain = domain
        if volume_fractions is not None:
            volume_fractions = np.asarray(volume_fractions, dtype=np.float64)
            if volume_fractions.shape != domain.shape:
                raise ConfigurationError(
                    f"volume_fractions must be {domain.shape}"
                )
        self.volume_fractions = volume_fractions
        n = domain.n_cells
        self._count = np.zeros(n)
        self._mu = np.zeros(n)
        self._mv = np.zeros(n)
        self._mw = np.zeros(n)
        self._e_trans = np.zeros(n)  # sum of c.c
        self._e_rot = np.zeros(n)    # sum of r.r
        self._steps = 0

    # -- accumulation -----------------------------------------------------

    def accumulate(self, particles: ParticleArrays) -> None:
        """Add one snapshot of the population to the averages."""
        n_cells = self.domain.n_cells
        cell = particles.cell
        if cell.size and (cell.min() < 0 or cell.max() >= n_cells):
            raise ConfigurationError("particle cell index out of range")
        self._count += np.bincount(cell, minlength=n_cells)
        self._mu += np.bincount(cell, weights=particles.u, minlength=n_cells)
        self._mv += np.bincount(cell, weights=particles.v, minlength=n_cells)
        self._mw += np.bincount(cell, weights=particles.w, minlength=n_cells)
        csq = particles.u**2 + particles.v**2 + particles.w**2
        self._e_trans += np.bincount(cell, weights=csq, minlength=n_cells)
        if particles.rot.size:
            rsq = (particles.rot**2).sum(axis=1)
            self._e_rot += np.bincount(cell, weights=rsq, minlength=n_cells)
        self._steps += 1

    def reset(self) -> None:
        """Discard accumulated statistics (e.g. at end of transient)."""
        for arr in (
            self._count,
            self._mu,
            self._mv,
            self._mw,
            self._e_trans,
            self._e_rot,
        ):
            arr[:] = 0.0
        self._steps = 0

    # -- derived fields ---------------------------------------------------------

    @property
    def steps(self) -> int:
        return self._steps

    def _require_data(self) -> None:
        if self._steps == 0:
            raise ConfigurationError("no snapshots accumulated yet")

    def _grid(self, flat: np.ndarray) -> np.ndarray:
        return flat.reshape(self.domain.shape)

    def number_density(self, correct_volumes: bool = True) -> np.ndarray:
        """Time-averaged number density per cell, ``(nx, ny)``.

        ``correct_volumes=False`` reproduces the paper's plotting-package
        limitation (figure 3's jagged wedge edge): cut cells report raw
        count per *unit* volume instead of per open volume.
        """
        self._require_data()
        dens = self._count / self._steps
        if correct_volumes and self.volume_fractions is not None:
            vf = np.maximum(self.volume_fractions.reshape(-1), 1e-12)
            open_cell = self.volume_fractions.reshape(-1) > 0
            dens = np.where(open_cell, dens / vf, 0.0)
        return self._grid(dens)

    def density_ratio(self, freestream_density: float, correct_volumes: bool = True) -> np.ndarray:
        """Density normalized by the freestream value (figures 1-6)."""
        if freestream_density <= 0:
            raise ConfigurationError("freestream density must be positive")
        return self.number_density(correct_volumes) / freestream_density

    def mean_velocity(self) -> tuple:
        """Time-averaged bulk velocity components, each ``(nx, ny)``."""
        self._require_data()
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(self._count > 0, self._mu / self._count, 0.0)
            v = np.where(self._count > 0, self._mv / self._count, 0.0)
            w = np.where(self._count > 0, self._mw / self._count, 0.0)
        return self._grid(u), self._grid(v), self._grid(w)

    def translational_temperature(self) -> np.ndarray:
        """RT per cell from peculiar translational energy, ``(nx, ny)``.

        RT = (<c.c> - <c>.<c>) / 3 using the time-aggregated moments.
        """
        self._require_data()
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(self._count > 0, 1.0 / self._count, 0.0)
        mean_sq = self._e_trans * inv
        bulk_sq = (self._mu * inv) ** 2 + (self._mv * inv) ** 2 + (self._mw * inv) ** 2
        rt = np.maximum(mean_sq - bulk_sq, 0.0) / 3.0
        return self._grid(rt)

    def rotational_temperature(self, rotational_dof: int = 2) -> np.ndarray:
        """RT per cell from rotational energy: <r.r> / dof."""
        self._require_data()
        if rotational_dof <= 0:
            raise ConfigurationError("rotational_dof must be positive")
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(self._count > 0, 1.0 / self._count, 0.0)
        return self._grid(self._e_rot * inv / rotational_dof)

    def mean_particles_per_cell(self) -> float:
        """Average instantaneous particles per (open) cell."""
        self._require_data()
        if self.volume_fractions is not None:
            n_open = int((self.volume_fractions > 0).sum())
        else:
            n_open = self.domain.n_cells
        return float(self._count.sum() / self._steps / max(n_open, 1))


#: Accumulator attribute names shared by :class:`CellSampler` and
#: :class:`EnsembleSampler` (one flat float64 array each).
SAMPLER_FIELDS = ("_count", "_mu", "_mv", "_mw", "_e_trans", "_e_rot")


class EnsembleSampler:
    """Per-replica cell moments over a replica-blocked population.

    The ensemble engine steps R replicas as one wide population; this
    sampler keeps R independent sets of :class:`CellSampler`
    accumulators in flat ``R * n_cells`` arrays and fills all of them
    with *one* ``np.bincount`` per moment, keyed by the composite
    ``block * n_cells + cell`` index the engine's sort already uses.

    Bitwise contract: within a replica block the particles appear in
    the same relative order as in a solo run, and ``np.bincount`` sums
    each bin's weights in input order, so slicing replica ``r``'s
    accumulators out (:meth:`replica`) yields float-for-float what a
    solo :class:`CellSampler` would have accumulated.
    """

    def __init__(
        self,
        domain: Domain,
        n_replicas: int,
        volume_fractions: Optional[np.ndarray] = None,
    ) -> None:
        if n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        self.domain = domain
        self.n_replicas = int(n_replicas)
        if volume_fractions is not None:
            volume_fractions = np.asarray(volume_fractions, dtype=np.float64)
            if volume_fractions.shape != domain.shape:
                raise ConfigurationError(
                    f"volume_fractions must be {domain.shape}"
                )
        self.volume_fractions = volume_fractions
        m = domain.n_cells * self.n_replicas
        for name in SAMPLER_FIELDS:
            setattr(self, name, np.zeros(m))
        self._steps = 0

    @property
    def steps(self) -> int:
        return self._steps

    def accumulate(self, particles: ParticleArrays, key: np.ndarray) -> None:
        """Add one snapshot, keyed by the composite replica-cell index.

        ``key`` is ``block_position * n_cells + cell`` per particle
        (see :func:`repro.core.sortstep.blocked_cell_key`).
        """
        m = self.domain.n_cells * self.n_replicas
        if key.shape[0] != particles.n:
            raise ConfigurationError("key must have one entry per particle")
        if key.size and (key.min() < 0 or key.max() >= m):
            raise ConfigurationError("composite cell key out of range")
        self._count += np.bincount(key, minlength=m)
        self._mu += np.bincount(key, weights=particles.u, minlength=m)
        self._mv += np.bincount(key, weights=particles.v, minlength=m)
        self._mw += np.bincount(key, weights=particles.w, minlength=m)
        csq = particles.u**2 + particles.v**2 + particles.w**2
        self._e_trans += np.bincount(key, weights=csq, minlength=m)
        if particles.rot.size:
            rsq = (particles.rot**2).sum(axis=1)
            self._e_rot += np.bincount(key, weights=rsq, minlength=m)
        self._steps += 1

    def reset(self) -> None:
        """Discard accumulated statistics (e.g. at end of transient)."""
        for name in SAMPLER_FIELDS:
            getattr(self, name)[:] = 0.0
        self._steps = 0

    def replica(self, r: int) -> CellSampler:
        """Replica ``r``'s accumulators as a standalone CellSampler."""
        if not 0 <= r < self.n_replicas:
            raise ConfigurationError(
                f"replica index {r} out of range [0, {self.n_replicas})"
            )
        cs = CellSampler(self.domain, self.volume_fractions)
        n = self.domain.n_cells
        sl = slice(r * n, (r + 1) * n)
        for name in SAMPLER_FIELDS:
            getattr(cs, name)[:] = getattr(self, name)[sl]
        cs._steps = self._steps
        return cs

    def samplers(self) -> list:
        """One CellSampler per replica, in block order."""
        return [self.replica(r) for r in range(self.n_replicas)]


# -- ensemble statistics ----------------------------------------------------


@dataclass(frozen=True)
class EnsembleStatistic:
    """Mean, standard error and t-confidence interval of replica values.

    ``n == 1`` carries no interval information: ``stderr`` is ``inf``
    and the interval is the whole real line (callers gating on
    :meth:`contains` should require ``n >= 2``).
    """

    mean: float
    stderr: float
    lo: float
    hi: float
    n: int
    confidence: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        half = 0.5 * (self.hi - self.lo)
        return (
            f"{self.mean:.6g} +/- {half:.3g} "
            f"({100 * self.confidence:g}% CI, n={self.n})"
        )


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value (scipy, normal fallback)."""
    q = 0.5 + confidence / 2.0
    try:
        from scipy import stats

        return float(stats.t.ppf(q, df))
    except ImportError:  # pragma: no cover - scipy is a declared dep
        # Normal-quantile fallback (Acklam-style rational approximation
        # is overkill here; the inverse error function via math suffices
        # for the common confidence levels).
        # For small df this *underestimates* the interval width.
        return math.sqrt(2.0) * _erfinv(2.0 * q - 1.0)


def _erfinv(y: float) -> float:  # pragma: no cover - fallback only
    """Inverse error function by bisection (fallback path only)."""
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if math.erf(mid) < y:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def ensemble_statistic(
    values: Sequence[float], confidence: float = 0.95
) -> EnsembleStatistic:
    """Summarize one scalar measure across ensemble replicas.

    Replicas are independent by construction (disjoint Philox counter
    blocks), so the standard small-sample machinery applies: mean,
    standard error ``s / sqrt(n)`` (``ddof=1``), and the two-sided
    Student-t interval at the requested confidence.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    vals = np.asarray(values, dtype=np.float64).ravel()
    n = int(vals.size)
    if n == 0:
        raise ConfigurationError("no replica values to summarize")
    mean = float(vals.mean())
    if n == 1:
        return EnsembleStatistic(
            mean=mean,
            stderr=float("inf"),
            lo=float("-inf"),
            hi=float("inf"),
            n=1,
            confidence=confidence,
        )
    stderr = float(vals.std(ddof=1) / math.sqrt(n))
    half = _t_critical(n - 1, confidence) * stderr
    return EnsembleStatistic(
        mean=mean,
        stderr=stderr,
        lo=mean - half,
        hi=mean + half,
        n=n,
        confidence=confidence,
    )
