"""Unit tests for motion, cell indexing, the randomized sort and pairing."""

import numpy as np
import pytest

from repro.core.cells import assign_cells, cell_populations, randomized_sort_keys
from repro.core.motion import advance, advance_with_z
from repro.core.pairing import CandidatePairs, even_odd_pairs, pairing_efficiency
from repro.core.particles import ParticleArrays
from repro.core.sortstep import sort_by_cell
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream


@pytest.fixture
def pop(rng):
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
    return ParticleArrays.from_freestream(rng, 500, fs, (0, 20), (0, 10))


class TestMotion:
    def test_position_update_is_eq2(self, pop):
        x0, y0 = pop.x.copy(), pop.y.copy()
        advance(pop)
        assert np.allclose(pop.x, x0 + pop.u)
        assert np.allclose(pop.y, y0 + pop.v)

    def test_velocities_unchanged(self, pop):
        u0 = pop.u.copy()
        advance(pop)
        assert np.array_equal(pop.u, u0)

    def test_z_periodic_wrap(self, pop):
        z = np.full(pop.n, 0.95)
        pop.w[:] = 0.1
        z2 = advance_with_z(pop, z, depth=1.0)
        assert np.allclose(z2, 0.05)


class TestCells:
    def test_assign_cells(self, pop):
        d = Domain(20, 10)
        assign_cells(pop, d)
        assert np.array_equal(pop.cell, d.cell_index(pop.x, pop.y))

    def test_populations_sum(self, pop):
        d = Domain(20, 10)
        assign_cells(pop, d)
        pops = cell_populations(pop.cell, d.n_cells)
        assert pops.sum() == pop.n

    def test_populations_range_check(self):
        with pytest.raises(ConfigurationError):
            cell_populations(np.array([5]), n_cells=3)

    def test_keys_recover_cell(self, rng):
        cell = rng.integers(0, 100, size=1000)
        keys = randomized_sort_keys(cell, rng=rng, scale=8)
        assert np.array_equal(keys // 8, cell)

    def test_scale_one_disables_mixing(self):
        cell = np.array([3, 1, 2])
        assert np.array_equal(randomized_sort_keys(cell, scale=1), cell)

    def test_mix_bits_supply(self, rng):
        cell = np.array([0, 0, 1])
        keys = randomized_sort_keys(
            cell, scale=4, mix_bits=np.array([3, 1, 0])
        )
        assert keys.tolist() == [3, 1, 4]

    def test_needs_rng_or_bits(self):
        with pytest.raises(ConfigurationError):
            randomized_sort_keys(np.array([1]), scale=8)

    def test_invalid_scale(self, rng):
        with pytest.raises(ConfigurationError):
            randomized_sort_keys(np.array([1]), rng=rng, scale=0)


class TestSortStep:
    def test_sorted_by_cell_after(self, pop, rng):
        d = Domain(20, 10)
        assign_cells(pop, d)
        sort_by_cell(pop, rng=rng)
        assert np.all(np.diff(pop.cell) >= 0)

    def test_columns_stay_aligned(self, pop, rng):
        d = Domain(20, 10)
        assign_cells(pop, d)
        tag = pop.x + 1000 * pop.y  # per-particle fingerprint
        before = set(np.round(tag, 9))
        sort_by_cell(pop, rng=rng)
        assign_cells(pop, d)
        assert np.all(np.diff(pop.cell) >= 0)
        after = set(np.round(pop.x + 1000 * pop.y, 9))
        assert before == after

    def test_intra_cell_order_changes_between_sorts(self, rng):
        # The randomization requirement: repeated sorts of identical
        # cells must not preserve relative order.
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        pop = ParticleArrays.from_freestream(rng, 256, fs, (0, 1), (0, 1))
        pop.cell[:] = 0
        tag0 = pop.x.copy()
        sort_by_cell(pop, rng=rng)
        order_a = pop.x.copy()
        sort_by_cell(pop, rng=rng)
        order_b = pop.x.copy()
        assert not np.array_equal(order_a, order_b)

    def test_scale_one_is_stable_noop_ordering(self, rng):
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        pop = ParticleArrays.from_freestream(rng, 64, fs, (0, 1), (0, 1))
        pop.cell[:] = 0
        first = pop.x.copy()
        sort_by_cell(pop, rng=rng, scale=1)
        assert np.array_equal(pop.x, first)  # stable sort of equal keys


class TestPairing:
    def test_even_odd_structure(self):
        cells = np.array([0, 0, 0, 1, 1, 1])
        pairs = even_odd_pairs(cells)
        assert pairs.first.tolist() == [0, 2, 4]
        assert pairs.second.tolist() == [1, 3, 5]
        # Pair (2,3) straddles cells 0|1: not a candidate.
        assert pairs.same_cell.tolist() == [True, False, True]
        assert pairs.n_candidates == 2

    def test_odd_population_drops_last(self):
        pairs = even_odd_pairs(np.array([0, 0, 0]))
        assert pairs.n_pairs == 1

    def test_candidate_indices(self):
        pairs = even_odd_pairs(np.array([0, 0, 1, 2]))
        a, b = pairs.candidate_indices()
        assert a.tolist() == [0] and b.tolist() == [1]

    def test_efficiency_dense_cells(self, rng):
        # 1000 particles in 4 cells: nearly every pair is same-cell.
        cells = np.sort(rng.integers(0, 4, size=1000))
        assert pairing_efficiency(even_odd_pairs(cells)) > 0.95

    def test_efficiency_empty(self):
        assert pairing_efficiency(even_odd_pairs(np.array([], dtype=int))) == 0.0
