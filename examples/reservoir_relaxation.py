#!/usr/bin/env python
"""The reservoir trick: rectangular velocities Gaussianize by collision.

The paper avoids sampling Gaussians on a bit-serial machine: particles
parked in the reservoir get *rectangular* (uniform) velocities with the
freestream variance, and "after a few time steps collisions with other
reservoir particles relaxes these to the correct Gaussian
distributions."  This example watches that relaxation happen: excess
kurtosis climbs from the uniform value (-1.2) to the Gaussian value (0)
within a handful of collision rounds, while energy and momentum stay
exactly conserved.

Run:
    python examples/reservoir_relaxation.py
"""

import numpy as np

from repro import Freestream
from repro.core.reservoir import Reservoir
from repro.physics.distributions import excess_kurtosis, speed_distribution_chi2
from repro.rng import make_rng


def main() -> None:
    rng = make_rng(7)
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)
    res = Reservoir(fs)
    res.deposit(rng, 40_000)

    def report(label: str) -> None:
        p = res.particles
        k = excess_kurtosis(np.column_stack((p.u, p.v, p.w))).mean()
        chi2 = speed_distribution_chi2(
            np.column_stack((p.u - p.u.mean(), p.v, p.w)), fs.c_mp
        )
        print(
            f"{label:>10s}: kurtosis {k:+.3f}  "
            f"speed-dist chi2/bin {chi2:7.1f}  "
            f"E {p.total_energy():.3f}  <u> {p.u.mean():.4f}"
        )

    print(f"reservoir of {res.size} particles at freestream drift "
          f"{fs.speed:.3f} cells/step")
    print("(Gaussian has kurtosis 0; the rectangular start has -1.2)\n")
    report("initial")
    for round_no in range(1, 9):
        res.mix(rng, rounds=1)
        report(f"round {round_no}")

    print(
        "\nkurtosis reaches ~0 and the speed distribution matches the "
        "Maxwell pdf\nafter a few rounds -- no transcendental sampling "
        "needed, as the paper argues."
    )


if __name__ == "__main__":
    main()
