"""Property-based tests: selection-rule and reservoir invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cells import cell_populations
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.selection import collision_probabilities
from repro.physics.freestream import Freestream
from repro.physics.molecules import hard_sphere, maxwell_molecule
from repro.rng import make_rng


def make_population(seed, n, n_cells, fs):
    rng = make_rng(seed)
    pop = ParticleArrays.from_freestream(rng, n, fs, (0, 1), (0, 1))
    pop.cell = np.sort(rng.integers(0, n_cells, size=n)).astype(np.int64)
    return pop


freestreams = st.builds(
    Freestream,
    mach=st.floats(min_value=1.5, max_value=8.0),
    c_mp=st.floats(min_value=0.05, max_value=0.14),
    lambda_mfp=st.floats(min_value=0.5, max_value=5.0),
    density=st.floats(min_value=4.0, max_value=64.0),
)


class TestSelectionProperties:
    @given(
        freestreams,
        st.integers(min_value=2, max_value=400),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_probabilities(self, fs, n, n_cells, seed):
        assume(fs.collision_probability <= 1 / 3)
        pop = make_population(seed, n, n_cells, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, n_cells)
        for model in (maxwell_molecule(), hard_sphere()):
            prob, g = collision_probabilities(pop, pairs, fs, model, counts)
            assert np.all(prob >= 0.0)
            assert np.all(prob <= 1.0)
            assert np.all(g >= 0.0)
            # Non-candidates never collide.
            assert np.all(prob[~pairs.same_cell] == 0.0)

    @given(
        freestreams,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_probability_monotone_in_density(self, fs, seed):
        assume(fs.collision_probability <= 1 / 3)
        # Two cells, one twice as populated: the denser cell's pairs
        # must have >= probability (Maxwell molecules).
        rng = make_rng(seed)
        n_a, n_b = 8, 16
        pop = ParticleArrays.from_freestream(
            rng, n_a + n_b, fs, (0, 1), (0, 1)
        )
        pop.cell = np.array([0] * n_a + [1] * n_b, dtype=np.int64)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 2)
        prob, _ = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts
        )
        cand = pairs.same_cell
        in_a = cand & (pop.cell[pairs.first] == 0)
        in_b = cand & (pop.cell[pairs.first] == 1)
        if in_a.any() and in_b.any():
            assert prob[in_b].min() >= prob[in_a].max() - 1e-12


class TestReservoirProperties:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_deposit_withdraw_accounting(self, n_dep, n_wd, seed):
        rng = make_rng(seed)
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        res = Reservoir(fs)
        res.deposit(rng, n_dep)
        out = res.withdraw(rng, n_wd)
        assert out.n == n_wd
        assert res.size == max(n_dep - n_wd, 0)
        out.validate()

    @given(
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_mix_conserves(self, n, rounds, seed):
        rng = make_rng(seed)
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        res = Reservoir(fs)
        res.deposit(rng, n)
        e0 = res.particles.total_energy()
        p0 = res.particles.momentum()
        res.mix(rng, rounds=rounds)
        assert np.isclose(res.particles.total_energy(), e0, rtol=1e-10)
        assert np.allclose(res.particles.momentum(), p0, atol=1e-9)
        res.particles.validate()
