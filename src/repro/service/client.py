"""A tiny urllib client for the service API (used by CLI and tests).

Maps HTTP error statuses back onto the same typed exceptions the
Python :class:`~repro.service.orchestrator.Orchestrator` raises, so
``repro submit`` over the wire and ``orchestrator.submit`` in-process
fail identically.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterator, Optional, Tuple

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ServiceError,
)
from repro.service import store as st

_ERRORS = {
    429: BackpressureError,
    404: JobNotFoundError,
    409: JobStateError,
    400: ConfigurationError,
    503: ServiceError,
}


class ServiceClient:
    """HTTP client for one service endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                payload = {"detail": raw.decode(errors="replace")}
            cls = _ERRORS.get(exc.code, ServiceError)
            raise cls(
                payload.get("detail", f"HTTP {exc.code}"),
                **{
                    str(k): v
                    for k, v in (payload.get("context") or {}).items()
                },
            ) from None

    # -- endpoints -------------------------------------------------------

    def submit(self, **kwargs) -> dict:
        """POST /jobs; kwargs mirror :meth:`Orchestrator.submit`."""
        return self._request("POST", "/jobs", body=kwargs)

    def sweep(
        self,
        scenario: Optional[str] = None,
        spec: Optional[dict] = None,
        mach: Optional[list] = None,
        kn: Optional[list] = None,
        seeds: Optional[list] = None,
        overrides: Optional[dict] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> dict:
        """POST /sweep: one submission per mach x kn x seed grid point.

        Returns ``{"jobs": [...], "count": N}`` with one entry per
        grid point carrying its axis values plus the usual
        ``job_id`` / ``state`` / ``cached`` submit fields.
        """
        body = {
            k: v
            for k, v in (
                ("scenario", scenario),
                ("spec", spec),
                ("mach", mach),
                ("kn", kn),
                ("seeds", seeds),
                ("overrides", overrides),
                ("deadline", deadline),
                ("max_retries", max_retries),
            )
            if v is not None
        }
        return self._request("POST", "/sweep", body=body)

    def status(self, job_id: str) -> dict:
        """GET /jobs/<id>: the job's current status dict."""
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> list:
        """GET /jobs: status dicts for every known job."""
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """POST /jobs/<id>/cancel: stop a queued or running job."""
        return self._request("POST", f"/jobs/{job_id}/cancel", body={})

    def result(self, job_id: str) -> dict:
        """GET /jobs/<id>/result: the DONE job's result artifact."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def health(self) -> dict:
        """GET /healthz: liveness plus queue/worker gauges."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """GET /metrics: the Prometheus text exposition, verbatim."""
        req = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode()

    # -- live streaming --------------------------------------------------

    def fleet(self) -> dict:
        """GET /fleet: health plus one live row per job."""
        return self._request("GET", "/fleet")

    def events(
        self,
        job_id: str,
        cursor: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """GET /jobs/<id>/events: one long-poll round.

        Returns ``{"events", "cursor", "state", "terminal"}``; pass
        the returned cursor back in for a gapless feed.
        """
        params = {}
        if cursor:
            params["cursor"] = cursor
        if timeout is not None:
            params["timeout"] = f"{timeout:g}"
        query = "?" + urllib.parse.urlencode(params) if params else ""
        return self._request("GET", f"/jobs/{job_id}/events{query}")

    def iter_events(
        self,
        job_id: str,
        cursor: Optional[str] = None,
        poll_timeout: float = 10.0,
    ) -> Iterator[dict]:
        """Yield every event of a job until it goes terminal.

        A long-poll loop over :meth:`events` -- survives service
        restarts between rounds (the cursor is a plain byte-offset
        pair into the job's artifacts, not server state).
        """
        while True:
            out = self.events(job_id, cursor=cursor, timeout=poll_timeout)
            cursor = out["cursor"]
            for rec in out["events"]:
                yield rec
            if out["terminal"]:
                return

    def stream(
        self,
        job_id: str,
        cursor: Optional[str] = None,
    ) -> Iterator[Tuple[str, dict]]:
        """GET /jobs/<id>/stream: yield ``(event, data)`` SSE messages.

        Terminates after the final ``("state", {...})`` message.  On a
        dropped connection the last message's ``data["cursor"]`` (or
        the ``id:`` this generator tracked) resumes without a gap.
        """
        path = f"/jobs/{job_id}/stream"
        headers = {"Accept": "text/event-stream"}
        if cursor:
            headers["Last-Event-ID"] = cursor
        req = urllib.request.Request(
            self.base_url + path, headers=headers
        )
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                payload = {"detail": raw.decode(errors="replace")}
            cls = _ERRORS.get(exc.code, ServiceError)
            raise cls(
                payload.get("detail", f"HTTP {exc.code}"),
                **{
                    str(k): v
                    for k, v in (payload.get("context") or {}).items()
                },
            ) from None
        with resp:
            event, data_lines = "message", []
            for raw_line in resp:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:
                    # Blank line = message boundary.
                    if data_lines:
                        data = json.loads("\n".join(data_lines))
                        yield event, data
                        if event == "state" and data.get("terminal"):
                            return
                    event, data_lines = "message", []
                    continue
                if line.startswith(":"):
                    continue  # heartbeat comment
                field, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if field == "event":
                    event = value
                elif field == "data":
                    data_lines.append(value)

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = time.time() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in st.TERMINAL_STATES:
                return status
            if time.time() > deadline:
                raise ServiceError(
                    "timed out waiting for job",
                    job_id=job_id,
                    state=status["state"],
                    timeout=timeout,
                )
            time.sleep(poll)
