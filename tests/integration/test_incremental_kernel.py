"""Integration tests of the incremental sort kernel on the full engine.

The kernel is *not* expected to be bitwise identical to the counting
hot path -- the intra-cell randomization moved from the sort into the
pairing -- so the contract is **distributional equivalence**: at a
fixed seed the two kernels must agree on the physics at the population
level (collision activity, velocity moments, energy), while the
mechanical invariants (canonical order under sharding and migration,
snapshot continuation) hold exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.io.snapshots import load_simulation, save_simulation
from repro.parallel.backend import ShardedBackend
from repro.physics.freestream import Freestream
from repro.resilience.audit import InvariantAuditor


def _config(seed: int = 77, density: float = 8.0) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=48, ny=32),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=10.0, base=14.0, angle_deg=30.0),
        seed=seed,
    )


def _moments(parts):
    n = parts.n
    return {
        "mean_u": float(parts.u[:n].mean()),
        "mean_v": float(parts.v[:n].mean()),
        "var_u": float(parts.u[:n].var()),
        "var_v": float(parts.v[:n].var()),
        "var_w": float(parts.w[:n].var()),
        "rot_e": float(0.5 * (parts.rot[:n] ** 2).sum() / n),
    }


class TestStatisticalEquivalence:
    def test_kernels_agree_at_population_level(self):
        """Same seed, 25 steps: moments and collision totals match.

        Tolerances are a few percent -- two independent realizations of
        the same flow at N ~= 11k particles.  A physics divergence (a
        biased pairing, a broken selection probability) shows up as
        tens of percent.
        """
        runs = {}
        for kernel in ("counting", "incremental"):
            cfg = dataclasses.replace(_config(), sort_kernel=kernel)
            sim = Simulation(cfg, hotpath=True)
            colls = cands = 0
            for _ in range(25):
                diag = sim.step()
                colls += diag.n_collisions
                cands += diag.n_candidates
            runs[kernel] = (sim.particles, colls, cands, diag)
        p_cnt, colls_cnt, cands_cnt, d_cnt = runs["counting"]
        p_inc, colls_inc, cands_inc, d_inc = runs["incremental"]

        # Population size: same freestream flux, within sqrt-N noise.
        assert abs(p_cnt.n - p_inc.n) < 6 * np.sqrt(p_cnt.n)
        # Reflection pairing is same-cell by construction, so it never
        # loses candidates to cell-boundary straddle the way even/odd
        # pairing does -- the incremental path sees *more* candidates
        # (that is the documented pairing-efficiency gap, not a bug).
        assert cands_inc >= cands_cnt
        # The physics contract is the *per-candidate* acceptance rate:
        # both kernels apply the same selection rule to the same
        # density field, so collisions-per-candidate must agree.
        rate_cnt = colls_cnt / cands_cnt
        rate_inc = colls_inc / cands_inc
        assert abs(rate_inc - rate_cnt) / rate_cnt < 0.03
        m_cnt, m_inc = _moments(p_cnt), _moments(p_inc)
        assert abs(m_cnt["mean_u"] - m_inc["mean_u"]) / m_cnt["mean_u"] < 0.03
        for key in ("var_u", "var_v", "var_w", "rot_e"):
            assert abs(m_cnt[key] - m_inc[key]) / m_cnt[key] < 0.08, key
        # Specific energy agrees too (global conservation + same flux).
        e_cnt = d_cnt.total_energy / p_cnt.n
        e_inc = d_inc.total_energy / p_inc.n
        assert abs(e_cnt - e_inc) / e_cnt < 0.03

    def test_incremental_reaches_same_wedge_shock_structure(self):
        """Time-averaged density field agrees as well as two counting
        runs at different seeds agree -- the incremental kernel is just
        another realization of the same flow, not a different flow."""

        def averaged_field(kernel, seed, steps=30, avg_from=15):
            cfg = dataclasses.replace(
                _config(seed=seed), sort_kernel=kernel
            )
            sim = Simulation(cfg, hotpath=True)
            fld = np.zeros(cfg.domain.n_cells)
            for i in range(steps):
                sim.step()
                if i >= avg_from:
                    parts = sim.particles
                    fld += np.bincount(
                        parts.cell[: parts.n], minlength=cfg.domain.n_cells
                    )
            return fld / (steps - avg_from)

        cnt_a = averaged_field("counting", 5)
        cnt_b = averaged_field("counting", 6)
        inc = averaged_field("incremental", 5)

        def corr(a, b):
            mask = (a + b) > 2
            return float(np.corrcoef(a[mask], b[mask])[0, 1])

        noise_floor = corr(cnt_a, cnt_b)  # seed-to-seed scatter
        cross = corr(cnt_a, inc)
        assert cross > 0.8
        assert cross > noise_floor - 0.05


@pytest.mark.sharded
class TestShardedConsistency:
    def test_inline_sharded_matches_serial(self):
        cfg = _config()
        serial = Simulation(cfg, hotpath=True)
        sharded = Simulation(
            cfg, hotpath=True, backend=ShardedBackend(4, processes=False)
        )
        for _ in range(6):
            ds = serial.step()
            dh = sharded.step()
        # Migration reshuffles the global particle order, so compare
        # population-level observables, not rows.
        assert abs(ds.n_flow - dh.n_flow) < 6 * np.sqrt(ds.n_flow)
        assert dh.sort_moved_fraction is not None
        assert dh.sort_rebuilds is not None
        sharded.close()

    def test_auditor_validates_cached_order_across_migration(self):
        """Every shard's cached order stays canonical while particles
        migrate between shards (the listener-surgery pathway)."""
        sim = Simulation(
            _config(), hotpath=True, backend=ShardedBackend(4, processes=False)
        )
        auditor = InvariantAuditor()
        auditor.rebase(sim)
        assert auditor.config.check_order
        for _ in range(8):
            auditor.observe(sim.step())
            report = auditor.audit(sim)
        assert report is not None and "order" in report["checks"]
        states = sim.backend.sort_states()
        assert states is not None and len(states) == 4
        assert all(s is not None and s._valid for s in states)
        sim.close()

    def test_order_audit_skipped_in_process_mode(self):
        sim = Simulation(
            _config(), hotpath=True, backend=ShardedBackend(2, processes=True)
        )
        try:
            sim.run(2)
            # Worker-private sorters are unreachable across the fork;
            # the audit degrades gracefully rather than guessing.
            assert sim.backend.sort_states() is None
            auditor = InvariantAuditor()
            auditor.rebase(sim)
            auditor.audit(sim)  # must not raise
        finally:
            sim.close()


class TestSnapshotContinuation:
    def test_restore_continues_bitwise(self, tmp_path):
        cfg = _config()
        sim = Simulation(cfg, hotpath=True)
        sim.run(6)
        path = tmp_path / "snap.npz"
        save_simulation(sim, path)
        restored = load_simulation(path)
        assert restored.config.sort_kernel == "incremental"
        for _ in range(3):
            da = sim.step()
            db = restored.step()
        assert da.n_flow == db.n_flow
        assert da.n_collisions == db.n_collisions
        assert da.total_energy == db.total_energy
        a, b = sim.particles, restored.particles
        assert np.array_equal(a.u[: a.n], b.u[: b.n])
        assert np.array_equal(a.cell[: a.n], b.cell[: b.n])

    def test_legacy_snapshot_defaults_to_counting(self, tmp_path):
        # Archives written before the field existed were counting runs;
        # the default must preserve their bitwise continuation.
        import json

        from repro.io import snapshots as snap_mod

        cfg = dataclasses.replace(_config(), sort_kernel="counting")
        sim = Simulation(cfg, hotpath=True)
        sim.run(2)
        path = tmp_path / "snap.npz"
        save_simulation(sim, path)
        # Strip the sort_kernel field to emulate a pre-field archive.
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["config_json"]))
        meta.pop("sort_kernel")
        data["config_json"] = np.array(json.dumps(meta))
        np.savez(path, **data)
        restored = snap_mod.load_simulation(path)
        assert restored.config.sort_kernel == "counting"
