"""Convergence utilities: steady-state detection and sampling noise.

The paper's run schedule -- "1200 time steps to reach steady state and
then time averaged for a further 2000 timesteps" -- encodes two
statistical facts about DSMC:

1. the transient must be *detected* (averaging too early biases the
   solution; averaging too late wastes the machine), and
2. the averaged fields' noise falls as ``1 / sqrt(samples per cell)``
   (samples = particles/cell x averaging steps), which fixes how long
   the averaging phase must be for a target accuracy.

:class:`SteadyStateDetector` implements the standard windowed-slope
criterion on any scalar monitor (flow population, total energy, a probe
density); :func:`expected_noise` and :func:`measured_field_noise` back
the 1/sqrt(N) law the tests verify.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.errors import ConfigurationError


class SteadyStateDetector:
    """Windowed steady-state detection on a scalar time series.

    Feed one monitor value per step; the run is declared steady when
    the relative drift of the windowed mean over one full window is
    below ``tolerance`` for ``patience`` consecutive steps.

    Parameters
    ----------
    window:
        Number of steps per averaging window (should exceed the
        monitor's correlation time; ~50 works for tunnel populations).
    tolerance:
        Relative change of the windowed mean over a window below which
        the signal counts as flat.
    patience:
        Consecutive flat verdicts required (guards against a monitor
        pausing at an inflection).
    """

    def __init__(
        self, window: int = 50, tolerance: float = 0.002, patience: int = 10
    ) -> None:
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.window = window
        self.tolerance = tolerance
        self.patience = patience
        self._values: Deque[float] = deque(maxlen=2 * window)
        self._flat_streak = 0
        self._steps = 0
        self.steady_at: Optional[int] = None

    def update(self, value: float) -> bool:
        """Record one monitor value; returns True once steady."""
        self._steps += 1
        self._values.append(float(value))
        if len(self._values) < 2 * self.window:
            return False
        vals = np.asarray(self._values)
        old = vals[: self.window].mean()
        new = vals[self.window :].mean()
        scale = max(abs(old), abs(new), 1e-300)
        drift = abs(new - old) / scale
        if drift < self.tolerance:
            self._flat_streak += 1
        else:
            self._flat_streak = 0
        if self._flat_streak >= self.patience and self.steady_at is None:
            self.steady_at = self._steps
        return self.steady_at is not None

    @property
    def is_steady(self) -> bool:
        return self.steady_at is not None


def expected_noise(
    particles_per_cell: float, averaging_steps: int, decorrelation: float = 1.0
) -> float:
    """Predicted relative density noise of a time-averaged cell.

    sigma(rho)/rho ~ 1 / sqrt(N_ppc * steps / tau): Poisson counting
    over the effective number of independent samples.  ``decorrelation``
    (tau) accounts for consecutive snapshots of slow particles being
    correlated; ~2-4 for the paper's velocity scale.
    """
    if particles_per_cell <= 0 or averaging_steps <= 0:
        raise ConfigurationError("need positive samples")
    if decorrelation < 1.0:
        raise ConfigurationError("decorrelation must be >= 1")
    n_eff = particles_per_cell * averaging_steps / decorrelation
    return 1.0 / math.sqrt(n_eff)


def measured_field_noise(field: np.ndarray, region: tuple) -> float:
    """Relative RMS fluctuation of a (supposedly uniform) field region.

    ``region`` is an index tuple, e.g. ``(slice(3, 15), slice(20, 30))``
    selecting a freestream patch; returns std/mean over it.
    """
    patch = np.asarray(field)[region]
    if patch.size < 4:
        raise ConfigurationError("region too small for a noise estimate")
    mean = patch.mean()
    if mean == 0:
        raise ConfigurationError("empty region")
    return float(patch.std() / mean)
