"""Streamline tracing: flow turning through the shock and the fan."""

import numpy as np
import pytest

from repro.analysis.streamlines import (
    Streamline,
    shock_deflection_from_streamline,
    trace_streamline,
)
from repro.core.cells import assign_cells
from repro.core.particles import ParticleArrays
from repro.core.sampling import CellSampler
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.rng import make_rng


pytestmark = pytest.mark.slow


def uniform_sampler(domain, angle_deg=0.0, n=40_000, seed=3):
    """A sampler filled with a uniform stream at the given direction."""
    rng = make_rng(seed)
    fs = Freestream(mach=4.0, c_mp=0.05, lambda_mfp=2.0, density=8.0)
    pop = ParticleArrays.from_freestream(
        rng, n, fs, (0, domain.width), (0, domain.height)
    )
    a = np.radians(angle_deg)
    speed = np.hypot(pop.u, pop.v)
    pop.u = speed * np.cos(a)
    pop.v = speed * np.sin(a)
    assign_cells(pop, domain)
    s = CellSampler(domain)
    s.accumulate(pop)
    return s


class TestTracerMechanics:
    def test_straight_stream_goes_straight(self):
        d = Domain(30, 20)
        s = uniform_sampler(d, angle_deg=0.0)
        line = trace_streamline(s, d, (2.0, 10.0))
        assert line.x[-1] > 25.0
        assert abs(line.y[-1] - 10.0) < 0.5
        assert np.abs(line.flow_angles_deg()).mean() < 2.0

    def test_inclined_stream_follows_angle(self):
        d = Domain(30, 20)
        s = uniform_sampler(d, angle_deg=20.0)
        line = trace_streamline(s, d, (2.0, 2.0))
        angles = line.flow_angles_deg()
        assert angles.mean() == pytest.approx(20.0, abs=2.0)

    def test_stops_at_boundary(self):
        d = Domain(30, 20)
        s = uniform_sampler(d, angle_deg=0.0)
        line = trace_streamline(s, d, (28.0, 10.0))
        assert line.x[-1] < 30.0

    def test_validation(self):
        d = Domain(30, 20)
        s = uniform_sampler(d)
        with pytest.raises(ConfigurationError):
            trace_streamline(s, d, (40.0, 5.0))
        with pytest.raises(ConfigurationError):
            trace_streamline(s, d, (2.0, 5.0), step=0.0)


class TestWedgeDeflection:
    @pytest.fixture(scope="class")
    def wedge_run(self):
        cfg = SimulationConfig(
            domain=Domain(49, 32),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=14.0
            ),
            wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
            seed=12,
        )
        sim = Simulation(cfg)
        sim.run(220)
        sim.run(220, sample=True)
        return sim

    def test_streamline_deflects_by_wedge_angle(self, wedge_run):
        # The inviscid anchor: crossing the attached shock turns the
        # flow by exactly the wedge angle (30 degrees).
        sim = wedge_run
        deflection = shock_deflection_from_streamline(
            sim.sampler, sim.config.domain, start_y=3.0
        )
        assert deflection == pytest.approx(30.0, abs=3.5)

    def test_high_streamline_stays_undisturbed_longer(self, wedge_run):
        # A streamline starting high crosses the shock late (or not at
        # all inside the domain): its mean angle stays small.
        sim = wedge_run
        line = trace_streamline(sim.sampler, sim.config.domain, (2.0, 26.0))
        assert np.abs(line.flow_angles_deg()).mean() < 8.0

    def test_expansion_turns_flow_back(self, wedge_run):
        # Past the corner the streamline's angle falls back toward (and
        # below) horizontal.
        sim = wedge_run
        line = trace_streamline(sim.sampler, sim.config.domain, (2.0, 3.0))
        angles = line.flow_angles_deg()
        # Smooth and look at the tail (downstream of the corner).
        k = np.ones(8) / 8
        sm = np.convolve(angles, k, mode="valid")
        assert sm[-1] < sm.max() - 10.0