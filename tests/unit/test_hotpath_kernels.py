"""Unit tests for the hot-path step-loop kernels.

Pins the equivalences the overhaul relies on:

* the adjacent-pair collision kernel is bit-identical to the generic
  gather/scatter kernel on the same pairs;
* the fused sort's histogram equals a separate ``cell_populations``
  bincount, and the scratch-enabled path orders exactly like the
  allocation-per-call path under the same rng stream;
* reservoir deposit/withdraw round-trips the population (no particle
  duplicated or lost), with and without scratch buffers;
* seeding refuses to return a population embedded in the wedge.
"""

import numpy as np
import pytest

import repro.core.simulation as simulation_mod
from repro.core.cells import assign_cells, cell_populations
from repro.core.collision import collide_adjacent_pairs, collide_pairs
from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sortstep import counting_sort_order, sort_by_cell
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=8.0)


@pytest.fixture
def pop(rng, fs):
    return ParticleArrays.from_freestream(rng, 400, fs, (0, 10), (0, 10))


def _clone(parts):
    return parts.select(np.arange(parts.n))


class TestAdjacentPairEquivalence:
    def test_all_pairs_match_generic_kernel(self, pop, rng):
        m = pop.n // 2
        k = 3 + pop.rotational_dof
        signs = np.where(rng.random((m, k)) < 0.5, -1.0, 1.0)
        trans = rng.integers(0, k, size=2 * m)
        ref = _clone(pop)
        s_ref = collide_pairs(
            ref,
            np.arange(0, pop.n, 2),
            np.arange(1, pop.n, 2),
            signs=signs,
            transpositions=trans,
        )
        s_adj = collide_adjacent_pairs(pop, signs=signs, transpositions=trans)
        for name in ("u", "v", "w", "rot", "perm"):
            assert np.array_equal(getattr(pop, name), getattr(ref, name)), name
        assert s_adj.n_collisions == s_ref.n_collisions == m
        assert s_adj.energy_exchanged == pytest.approx(s_ref.energy_exchanged)

    def test_subset_matches_generic_kernel(self, pop, rng):
        accepted = np.sort(rng.choice(pop.n // 2, size=60, replace=False))
        k = 3 + pop.rotational_dof
        signs = np.where(rng.random((60, k)) < 0.5, -1.0, 1.0)
        trans = rng.integers(0, k, size=120)
        ref = _clone(pop)
        collide_pairs(
            ref, 2 * accepted, 2 * accepted + 1,
            signs=signs, transpositions=trans,
        )
        collide_adjacent_pairs(
            pop, accepted, signs=signs, transpositions=trans
        )
        for name in ("u", "v", "w", "rot", "perm"):
            assert np.array_equal(getattr(pop, name), getattr(ref, name)), name

    def test_partial_internal_exchange_matches(self, pop, rng):
        # The frozen-pair branch draws from rng; identical streams must
        # yield identical outcomes through either kernel.
        accepted = np.arange(pop.n // 2)
        k = 3 + pop.rotational_dof
        signs = np.ones((accepted.size, k))
        trans = np.zeros(2 * accepted.size, dtype=np.int64)
        ref = _clone(pop)
        collide_pairs(
            ref, 2 * accepted, 2 * accepted + 1,
            rng=np.random.default_rng(5), signs=signs,
            transpositions=trans, internal_exchange_probability=0.5,
        )
        collide_adjacent_pairs(
            pop, accepted, rng=np.random.default_rng(5), signs=signs,
            transpositions=trans, internal_exchange_probability=0.5,
        )
        for name in ("u", "v", "w", "rot", "perm"):
            assert np.array_equal(getattr(pop, name), getattr(ref, name)), name

    def test_empty_selection(self, pop):
        stats = collide_adjacent_pairs(pop, np.empty(0, dtype=np.intp))
        assert stats.n_collisions == 0


class TestFusedSort:
    def test_counts_equal_cell_populations(self, pop, rng):
        domain = Domain(10, 10)
        assign_cells(pop, domain)
        res = sort_by_cell(pop, rng, scale=8, n_cells=domain.n_cells)
        assert res.counts is not None
        assert np.array_equal(
            res.counts, cell_populations(pop.cell, domain.n_cells)
        )
        assert int(res.counts.sum()) == pop.n

    def test_scratch_path_orders_identically(self, fs):
        # Same rng stream, with and without pooled buffers: the sort
        # permutation (and thus the physics) must be bit-identical.
        rng_a = np.random.default_rng(31)
        a = ParticleArrays.from_freestream(rng_a, 500, fs, (0, 10), (0, 10))
        b = _clone(a)
        b.enable_scratch()
        domain = Domain(10, 10)
        assign_cells(a, domain)
        assign_cells(b, domain)
        res_a = sort_by_cell(a, np.random.default_rng(7), scale=8,
                             n_cells=domain.n_cells)
        res_b = sort_by_cell(b, np.random.default_rng(7), scale=8,
                             n_cells=domain.n_cells)
        assert np.array_equal(np.asarray(res_a.order), np.asarray(res_b.order))
        for name in ("x", "y", "u", "cell"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name
        assert np.array_equal(res_a.counts, res_b.counts)

    def test_validation_still_raises_without_rng(self, pop):
        with pytest.raises(ConfigurationError):
            sort_by_cell(pop, rng=None, scale=8)
        with pytest.raises(ConfigurationError):
            counting_sort_order(np.array([-1, 0]), shuffle=False)

    def test_empty_population(self):
        assert counting_sort_order(np.empty(0, dtype=np.int64)).size == 0


class TestReservoirRoundTrip:
    def _roundtrip(self, fs, scratch):
        res = Reservoir(fs, rotational_dof=2)
        if scratch:
            res.particles.enable_scratch()
        rng = np.random.default_rng(11)
        res.deposit(rng, 100)
        before = np.sort(res.particles.u.copy())
        out = res.withdraw(rng, 30)
        assert out.n == 30
        assert res.size == 70
        assert out.rotational_dof == 2
        # No particle duplicated or lost: the withdrawn and remaining
        # velocity multisets partition the deposited one.
        after = np.sort(np.concatenate([out.u, res.particles.u]))
        assert np.array_equal(after, before)

    def test_plain(self, fs):
        self._roundtrip(fs, scratch=False)

    def test_scratch(self, fs):
        self._roundtrip(fs, scratch=True)

    def test_withdraw_all(self, fs):
        res = Reservoir(fs, rotational_dof=2)
        rng = np.random.default_rng(3)
        res.deposit(rng, 40)
        out = res.withdraw(rng, 40)
        assert out.n == 40 and res.size == 0

    def test_withdraw_is_unbiased_sample(self, fs):
        # Drawing without replacement must not favour low addresses:
        # the mean withdrawn index should sit near the middle.
        res = Reservoir(fs, rotational_dof=2)
        rng = np.random.default_rng(17)
        res.deposit(rng, 1000)
        res.particles.x[:] = np.arange(1000)  # tag by original address
        means = []
        for _ in range(50):
            out = res.withdraw(rng, 100)
            means.append(out.x.mean())
            res.deposit(rng, 100)
            res.particles.x[:] = np.arange(res.size)
        assert abs(np.mean(means) - 499.5) < 30


class TestSeedRejection:
    def test_embedded_seed_raises(self, monkeypatch, small_config):
        # With zero rejection passes the initial draw necessarily
        # leaves particles inside the wedge; seeding must refuse to
        # hand that population back instead of silently continuing.
        monkeypatch.setattr(simulation_mod, "SEED_REJECTION_PASSES", 0)
        with pytest.raises(ConfigurationError, match="failed to converge"):
            Simulation(small_config)

    def test_normal_seed_has_no_embedded_particles(self, small_config):
        sim = Simulation(small_config)
        assert not np.any(
            small_config.wedge.inside(sim.particles.x, sim.particles.y)
        )
