"""Unit tests for the legacy-VTK field writer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.vtk import read_vtk_scalars, write_vtk_fields


class TestWriter:
    def test_roundtrip_2d(self, tmp_path, rng):
        rho = rng.random((6, 4))
        path = tmp_path / "f.vtk"
        write_vtk_fields(path, density=rho)
        back = read_vtk_scalars(path)
        assert back["_dimensions"] == (7, 5, 2)
        # VTK order: x fastest.
        assert np.allclose(back["density"], rho.T.reshape(-1), atol=1e-5)

    def test_roundtrip_3d(self, tmp_path, rng):
        f = rng.random((3, 4, 2))
        path = tmp_path / "g.vtk"
        write_vtk_fields(path, t=f)
        back = read_vtk_scalars(path)
        assert back["_dimensions"] == (4, 5, 3)
        assert np.allclose(
            back["t"], np.transpose(f, (2, 1, 0)).reshape(-1), atol=1e-5
        )

    def test_multiple_fields(self, tmp_path, rng):
        a = rng.random((5, 5))
        b = rng.random((5, 5))
        path = tmp_path / "m.vtk"
        write_vtk_fields(path, density=a, mach_number=b)
        back = read_vtk_scalars(path)
        assert set(back) == {"density", "mach_number", "_dimensions"}
        assert back["density"].size == 25

    def test_header_is_valid_legacy_vtk(self, tmp_path):
        path = tmp_path / "h.vtk"
        write_vtk_fields(path, rho=np.ones((2, 2)))
        text = path.read_text().splitlines()
        assert text[0].startswith("# vtk DataFile")
        assert "ASCII" in text
        assert "DATASET STRUCTURED_POINTS" in text
        assert any(line.startswith("CELL_DATA 4") for line in text)

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_vtk_fields(tmp_path / "x.vtk")
        with pytest.raises(ConfigurationError):
            write_vtk_fields(
                tmp_path / "x.vtk", a=np.ones((2, 2)), b=np.ones((3, 2))
            )
        with pytest.raises(ConfigurationError):
            write_vtk_fields(tmp_path / "x.vtk", **{"bad name": np.ones((2, 2))})
        with pytest.raises(ConfigurationError):
            write_vtk_fields(tmp_path / "x.vtk", a=np.ones(5))

    def test_origin_spacing_written(self, tmp_path):
        path = tmp_path / "o.vtk"
        write_vtk_fields(
            path, rho=np.ones((2, 2)), origin=(1, 2, 0), spacing=(0.5, 0.5, 1)
        )
        text = path.read_text()
        assert "ORIGIN 1 2 0" in text
        assert "SPACING 0.5 0.5 1" in text
