"""The CM-substrate program must agree exactly with the reference path.

Runs one sort-select-collide step through
:func:`repro.cm.program.collision_step_program` (fields + scans + sort
+ pair exchange) and through the core modules
(sort_by_cell/even_odd_pairs/select_collisions/collide_pairs) with the
*same pre-drawn random inputs*, and demands bitwise-identical particle
state -- proving the emulated machine hosts the entire algorithm.
"""

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.cm.program import ProgramInputs, collision_step_program
from repro.cm.timing import PHASES, CostLedger
from repro.core.cells import cell_populations, randomized_sort_keys
from repro.core.collision import collide_pairs
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.selection import select_collisions
from repro.errors import MachineError
from repro.physics.freestream import Freestream
from repro.physics.molecules import hard_sphere, maxwell_molecule
from repro.rng import make_rng


N_CELLS = 12


def make_bath(seed, n, fs):
    rng = make_rng(seed)
    pop = ParticleArrays.from_freestream(rng, n, fs, (0, 1), (0, 1))
    pop.cell = rng.integers(0, N_CELLS, size=n).astype(np.int64)
    return pop, rng


def draw_inputs(rng, n, k=5, scale=8):
    return ProgramInputs(
        mix=rng.integers(0, scale, size=n),
        draws=rng.random(n // 2),
        signs=(rng.integers(0, 2, size=(n // 2, k)) * 2 - 1).astype(np.int8),
        transpositions=rng.integers(0, k, size=n),
    )


def reference_step(pop, fs, model, inputs, scale=8):
    """The same step through the core modules with identical inputs."""
    keys = randomized_sort_keys(pop.cell, scale=scale, mix_bits=inputs.mix)
    order = np.argsort(keys, kind="stable")
    pop.reorder_inplace(order)
    pairs = even_odd_pairs(pop.cell)
    counts = cell_populations(pop.cell, N_CELLS)
    sel = select_collisions(
        pop, pairs, fs, model, counts, draws=inputs.draws[: pairs.n_pairs]
    )
    a = pairs.first[sel.accept]
    b = pairs.second[sel.accept]
    collide_pairs(
        pop, a, b,
        signs=inputs.signs[sel.accept],
        transpositions=np.concatenate(
            (inputs.transpositions[a], inputs.transpositions[b])
        ),
    )
    return sel.n_collisions


@pytest.mark.parametrize("model_factory", [maxwell_molecule, hard_sphere])
@pytest.mark.parametrize("lambda_mfp", [0.0, 1.0])
def test_program_matches_reference_bitwise(model_factory, lambda_mfp):
    fs = Freestream(
        mach=4.0, c_mp=0.14, lambda_mfp=lambda_mfp, density=500 / N_CELLS
    )
    model = model_factory()
    pop_a, rng = make_bath(3, 500, fs)
    pop_b = pop_a.copy()
    inputs = draw_inputs(rng, 500)

    geom = CM2(n_processors=64).geometry(500)
    n_cm = collision_step_program(
        pop_a, fs, model, N_CELLS, geom, inputs
    )
    n_ref = reference_step(pop_b, fs, model, inputs)

    assert n_cm == n_ref
    assert np.array_equal(pop_a.u, pop_b.u)
    assert np.array_equal(pop_a.v, pop_b.v)
    assert np.array_equal(pop_a.w, pop_b.w)
    assert np.array_equal(pop_a.rot, pop_b.rot)
    assert np.array_equal(pop_a.perm, pop_b.perm)
    assert np.array_equal(pop_a.cell, pop_b.cell)


def test_program_charges_all_phases():
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=1.0, density=50.0)
    pop, rng = make_bath(5, 400, fs)
    inputs = draw_inputs(rng, 400)
    geom = CM2(n_processors=64).geometry(400)
    ledger = CostLedger()
    collision_step_program(
        pop, fs, maxwell_molecule(), N_CELLS, geom, inputs, ledger=ledger
    )
    for phase in ("sort", "selection", "collision"):
        assert ledger.phase_total(phase) > 0
    assert ledger.phase_total("motion") == 0  # motionless step


def test_program_geometry_must_match():
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=1.0, density=50.0)
    pop, rng = make_bath(6, 100, fs)
    inputs = draw_inputs(rng, 100)
    geom = CM2(n_processors=64).geometry(99)
    with pytest.raises(MachineError):
        collision_step_program(
            pop, fs, maxwell_molecule(), N_CELLS, geom, inputs
        )


def test_program_tiny_population():
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=1.0, density=50.0)
    pop, rng = make_bath(7, 1, fs)
    inputs = draw_inputs(rng, 1)
    geom = CM2(n_processors=4).geometry(1)
    assert collision_step_program(
        pop, fs, maxwell_molecule(), N_CELLS, geom, inputs
    ) == 0
