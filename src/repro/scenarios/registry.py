"""The scenario registry: name -> :class:`ScenarioSpec`.

One process-global table, populated by :mod:`repro.scenarios.library`
at import time.  Lookups of unknown names raise
:class:`~repro.errors.ConfigurationError` listing every registered
name, so a CLI typo is a one-line fix instead of a stack trace.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (duplicate names are a bug)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(names())}"
        ) from None


def names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def all_specs() -> List[ScenarioSpec]:
    """Every registered spec, in registration order."""
    return list(_REGISTRY.values())
