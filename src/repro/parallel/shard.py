"""Slab decomposition of the cell grid for sharded execution.

The tunnel is cut into ``n_workers`` contiguous x-slabs; boundaries
sit on integer cell columns, so every grid cell -- and therefore every
particle after boundary enforcement -- belongs to exactly one shard,
and the selection rule's per-cell machinery runs unchanged inside each
shard.  :meth:`ShardSlabs.split` produces the (nearly) equal-width
static decomposition; slabs need not stay uniform -- any edge tuple
respecting :data:`MIN_SLAB_WIDTH` is a valid decomposition, and
:meth:`ShardSlabs.rebalance` plans a new one from measured loads.

This mirrors the paper's processor decomposition: where the CM-2
assigns one virtual processor per particle and lets the sort migrate
particle state between physical processors, the shard decomposition
assigns one worker per slab and migrates the few boundary-crossing
particles explicitly each step (see :mod:`repro.parallel.exchange`).
X-slabs (rather than 2-D tiles) keep every shard's migration pattern a
two-neighbour exchange and match the wind tunnel's streamwise flow:
the mean drift crosses slab faces, the transverse motion never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Minimum slab width, cells.  A particle must never out-run its
#: neighbouring slab in one step (the exchange only wires adjacent
#: shards); molecular speeds in the validation regime are O(1) cell
#: per step, so two cells of slab width is already a 2x guard band.
MIN_SLAB_WIDTH = 2

#: Default damping clamp of :meth:`ShardSlabs.rebalance`: no edge
#: moves more than this many columns per rebalance event.  Small moves
#: keep each repartition's migration traffic bounded (and well inside
#: the exchange-channel capacity) at the cost of converging over a few
#: events instead of one -- the cadenced analogue of the paper's
#: every-sort re-homing.
DEFAULT_MAX_SHIFT = 4


@dataclass(frozen=True)
class ShardSlabs:
    """Contiguous x-slab decomposition of an ``nx``-column grid.

    Attributes
    ----------
    nx:
        Total grid columns being decomposed.
    edges:
        Integer cell-column boundaries, length ``n_workers + 1``:
        shard ``k`` owns columns (and x positions) in
        ``[edges[k], edges[k+1])``.
    """

    nx: int
    edges: Tuple[int, ...]

    @classmethod
    def split(cls, nx: int, n_workers: int) -> "ShardSlabs":
        """Evenly decompose ``nx`` columns into ``n_workers`` slabs."""
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if nx < n_workers * MIN_SLAB_WIDTH:
            raise ConfigurationError(
                f"{nx} columns cannot host {n_workers} shards of at least "
                f"{MIN_SLAB_WIDTH} cells each"
            )
        edges = tuple(
            int(round(k * nx / n_workers)) for k in range(n_workers + 1)
        )
        return cls(nx=nx, edges=edges)

    @classmethod
    def from_edges(cls, nx: int, edges: Sequence[int]) -> "ShardSlabs":
        """Decomposition with explicit (possibly non-uniform) edges."""
        return cls(nx=int(nx), edges=tuple(int(e) for e in edges))

    def __post_init__(self) -> None:
        if len(self.edges) < 2 or self.edges[0] != 0 or self.edges[-1] != self.nx:
            raise ConfigurationError("edges must span [0, nx]")
        widths = np.diff(self.edges)
        if (widths < MIN_SLAB_WIDTH).any():
            raise ConfigurationError(
                f"every slab needs >= {MIN_SLAB_WIDTH} cell columns, got "
                f"widths {widths.tolist()}"
            )

    @property
    def n_workers(self) -> int:
        return len(self.edges) - 1

    def bounds(self, shard_id: int) -> Tuple[float, float]:
        """``[x_lo, x_hi)`` extent of one slab, in cell widths."""
        return float(self.edges[shard_id]), float(self.edges[shard_id + 1])

    def shard_of(self, x: np.ndarray) -> np.ndarray:
        """Owning shard of each x position (clipped into the grid)."""
        # searchsorted('right') maps x in [edges[k], edges[k+1]) to k+1;
        # the clip folds upstream/downstream stragglers (x < 0 or
        # x >= nx, which only boundary enforcement may later remove)
        # into the first/last shard.
        idx = np.searchsorted(np.asarray(self.edges), x, side="right") - 1
        return np.clip(idx, 0, self.n_workers - 1)

    def partition_order(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Stable partition of positions into shard-contiguous order.

        Returns ``(order, splits)``: applying ``order`` groups the
        particles by shard (relative order within a shard preserved --
        this is what makes a gather/re-partition round-trip exact), and
        ``splits[k]`` is the first index of shard ``k``'s run in the
        ordered arrays (length ``n_workers + 1``).
        """
        shard = self.shard_of(x)
        order = np.argsort(shard, kind="stable")
        splits = np.searchsorted(shard, np.arange(self.n_workers + 1),
                                 sorter=order)
        return order, splits

    # -- adaptive load balancing ----------------------------------------

    def column_loads(self, loads: Sequence[float]) -> np.ndarray:
        """Per-column load vector from per-column or per-shard loads.

        ``loads`` of length ``nx`` is taken as measured per-column
        counts; length ``n_workers`` is spread uniformly over each
        slab's columns (the coarse fallback when only shard totals are
        known).  ``MIN_SLAB_WIDTH >= 2`` guarantees ``nx > n_workers``,
        so the two cases never collide.
        """
        arr = np.asarray(loads, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("loads must be a 1-D vector")
        if (arr < 0).any() or not np.isfinite(arr).all():
            raise ConfigurationError("loads must be finite and non-negative")
        if arr.shape[0] == self.nx:
            return arr
        if arr.shape[0] == self.n_workers:
            col = np.empty(self.nx, dtype=np.float64)
            for k in range(self.n_workers):
                lo, hi = self.edges[k], self.edges[k + 1]
                col[lo:hi] = arr[k] / (hi - lo)
            return col
        raise ConfigurationError(
            f"loads must have length nx={self.nx} (per column) or "
            f"n_workers={self.n_workers} (per shard), got {arr.shape[0]}"
        )

    def slab_sums(self, column_loads: np.ndarray,
                  edges: Tuple[int, ...]) -> np.ndarray:
        """Per-slab load totals of ``column_loads`` under ``edges``."""
        cum = np.concatenate(([0.0], np.cumsum(column_loads)))
        e = np.asarray(edges)
        return cum[e[1:]] - cum[e[:-1]]

    def rebalance(
        self,
        loads: Sequence[float],
        max_shift: int = DEFAULT_MAX_SHIFT,
    ) -> "ShardSlabs":
        """Plan new edges that equalize the predicted per-slab load.

        Pure arithmetic on the load vector (per-column counts, or
        per-shard totals spread uniformly -- see :meth:`column_loads`),
        so the plan is deterministic: the same loads always produce the
        same edges, which is what keeps W-worker runs bitwise
        reproducible when the rebalancer is driven from particle counts
        rather than wall-clock timings.

        Each new edge is the load-quantile column (slab ``k`` targets
        ``k/W`` of the total), subject to three clamps:

        * **damping** -- no edge moves more than ``max_shift`` columns
          per event (bounds the repartition's migration traffic);
        * **adjacency** -- an edge stays within its old neighbours'
          slabs, so every ceded column transfers between *adjacent*
          shards and the existing two-neighbour exchange channels can
          carry the repartition;
        * **width** -- every new slab keeps >= :data:`MIN_SLAB_WIDTH`
          columns (the one-step-crossing guard band).

        Returns ``self`` when the plan moves nothing.
        """
        if max_shift < MIN_SLAB_WIDTH:
            # The min-width repair below can move an edge by up to
            # MIN_SLAB_WIDTH columns, so a tighter clamp could not be
            # honored.
            raise ConfigurationError(
                f"max_shift must be >= MIN_SLAB_WIDTH ({MIN_SLAB_WIDTH})"
            )
        W = self.n_workers
        if W == 1:
            return self
        col = self.column_loads(loads)
        total = float(col.sum())
        if total <= 0.0:
            return self
        cum = np.concatenate(([0.0], np.cumsum(col)))
        new = list(self.edges)
        for k in range(1, W):
            target = total * k / W
            ideal = int(np.searchsorted(cum, target, side="left"))
            old = self.edges[k]
            e = min(max(ideal, old - max_shift), old + max_shift)
            e = min(max(e, self.edges[k - 1]), self.edges[k + 1])
            e = min(max(e, k * MIN_SLAB_WIDTH),
                    self.nx - (W - k) * MIN_SLAB_WIDTH)
            new[k] = e
        # Left-to-right min-width repair.  Every edge sits at most at
        # nx - (W - k) * MIN_SLAB_WIDTH (clamped above), so raising
        # edge k to edge k-1 + MIN_SLAB_WIDTH never exceeds its own
        # ceiling, and raises it by at most MIN_SLAB_WIDTH past its old
        # neighbour's position -- which keeps both the damping and the
        # adjacency bounds intact (old slabs are >= MIN_SLAB_WIDTH wide).
        for k in range(1, W):
            new[k] = max(new[k], new[k - 1] + MIN_SLAB_WIDTH)
        edges = tuple(int(e) for e in new)
        if edges == self.edges:
            return self
        return ShardSlabs(nx=self.nx, edges=edges)
