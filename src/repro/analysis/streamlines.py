"""Streamline tracing through the time-averaged velocity field.

The oblique-shock picture the paper validates is fundamentally about
*flow turning*: the stream deflects by exactly the wedge angle as it
crosses the shock, then turns back through the corner fan.  Tracing
streamlines through the sampled bulk-velocity field measures that
deflection directly -- an independent check of figure 1 that uses the
velocity moments instead of the density.

Integration is midpoint (RK2) with bilinear interpolation of the
cell-centered velocity field; step size a fraction of a cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.sampling import CellSampler
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain


def _bilinear(field: np.ndarray, x: float, y: float) -> float:
    """Bilinear interpolation of a cell-centered field at (x, y)."""
    nx, ny = field.shape
    fx = min(max(x - 0.5, 0.0), nx - 1.0 - 1e-9)
    fy = min(max(y - 0.5, 0.0), ny - 1.0 - 1e-9)
    i, j = int(fx), int(fy)
    tx, ty = fx - i, fy - j
    return float(
        field[i, j] * (1 - tx) * (1 - ty)
        + field[i + 1, j] * tx * (1 - ty)
        + field[i, j + 1] * (1 - tx) * ty
        + field[i + 1, j + 1] * tx * ty
    )


@dataclass(frozen=True)
class Streamline:
    """A traced streamline: points and local flow angles."""

    points: np.ndarray  # (n, 2)

    @property
    def x(self) -> np.ndarray:
        """Streamwise coordinates of the trace."""
        return self.points[:, 0]

    @property
    def y(self) -> np.ndarray:
        """Transverse coordinates of the trace."""
        return self.points[:, 1]

    def flow_angles_deg(self) -> np.ndarray:
        """Local flow direction (degrees above horizontal) per segment."""
        d = np.diff(self.points, axis=0)
        return np.degrees(np.arctan2(d[:, 1], d[:, 0]))

    def max_deflection_deg(self) -> float:
        """Largest flow angle reached along the trace.

        For a streamline crossing the wedge's oblique shock this is the
        post-shock flow direction: the wedge angle.
        """
        return float(self.flow_angles_deg().max())


def trace_streamline(
    sampler: CellSampler,
    domain: Domain,
    start: Tuple[float, float],
    step: float = 0.25,
    max_steps: int = 5000,
) -> Streamline:
    """Trace one streamline from ``start`` through the averaged field.

    Stops at the domain boundary, in empty cells (zero velocity), or
    after ``max_steps``.
    """
    if not (0 <= start[0] < domain.width and 0 <= start[1] < domain.height):
        raise ConfigurationError("start point outside the domain")
    if step <= 0:
        raise ConfigurationError("step must be positive")
    u, v, _w = sampler.mean_velocity()
    pts: List[Tuple[float, float]] = [start]
    x, y = start
    for _ in range(max_steps):
        u0 = _bilinear(u, x, y)
        v0 = _bilinear(v, x, y)
        speed = np.hypot(u0, v0)
        if speed < 1e-9:
            break
        # Midpoint step, normalized to arc length `step`.
        xm = x + 0.5 * step * u0 / speed
        ym = y + 0.5 * step * v0 / speed
        if not (0 <= xm < domain.width and 0 <= ym < domain.height):
            break
        u1 = _bilinear(u, xm, ym)
        v1 = _bilinear(v, xm, ym)
        s1 = np.hypot(u1, v1)
        if s1 < 1e-9:
            break
        x += step * u1 / s1
        y += step * v1 / s1
        if not (0 <= x < domain.width and 0 <= y < domain.height):
            break
        pts.append((x, y))
    if len(pts) < 2:
        raise ConfigurationError("streamline could not advance from start")
    return Streamline(points=np.asarray(pts))


def shock_deflection_from_streamline(
    sampler: CellSampler,
    domain: Domain,
    start_y: float,
    start_x: float = 2.0,
    smoothing: int = 8,
) -> float:
    """Measured flow deflection (degrees) of one wedge streamline.

    Traces from an upstream point and reports the maximum *smoothed*
    flow angle -- the post-shock direction, which inviscid theory pins
    at the wedge angle.  ``smoothing`` segments are boxcar-averaged to
    suppress cell-level interpolation noise.
    """
    line = trace_streamline(sampler, domain, (start_x, start_y))
    angles = line.flow_angles_deg()
    if angles.size < smoothing:
        raise ConfigurationError("streamline too short to measure")
    kernel = np.ones(smoothing) / smoothing
    smoothed = np.convolve(angles, kernel, mode="valid")
    return float(smoothed.max())
