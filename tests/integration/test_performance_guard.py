"""Performance regression guards (generous bounds, CI-safe).

The hpc-parallel guides' core demand is that the hot paths stay
vectorized: a Python-level per-particle loop sneaking into motion,
selection or collision shows up as a 10-100x throughput cliff.  These
guards use deliberately loose thresholds (5-10x headroom over measured)
so they only fire on structural regressions, not on machine noise.
"""

import time

import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


class TestThroughput:
    def test_reference_engine_stays_vectorized(self):
        # Measured ~0.3 us/particle/step on a laptop; 3 us is a 10x
        # cushion that a per-particle Python loop (typically 30+ us)
        # cannot hide under.
        cfg = SimulationConfig(
            domain=Domain(98, 64),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0
            ),
            wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
            seed=1,
        )
        sim = Simulation(cfg)
        sim.run(5)  # warm up
        n = sim.particles.n
        steps = 20
        t0 = time.perf_counter()
        sim.run(steps)
        per_particle_us = (time.perf_counter() - t0) / steps / n * 1e6
        assert per_particle_us < 3.0, (
            f"{per_particle_us:.2f} us/particle/step: a hot path has "
            "likely devectorized"
        )

    def test_seeding_is_fast(self):
        # Rejection seeding must not loop per particle either.
        cfg = SimulationConfig(
            domain=Domain(98, 64),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=20.0
            ),
            wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
            seed=2,
        )
        t0 = time.perf_counter()
        sim = Simulation(cfg)
        assert time.perf_counter() - t0 < 5.0
        assert sim.particles.n > 100_000
