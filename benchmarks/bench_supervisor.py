"""SUPERVISOR -- overhead of supervised execution (audits + checkpoints).

Steps two identical simulations of the hot-path benchmark
configuration in *alternating blocks* within one process: one bare
(``Simulation.step``), one wrapped in
:class:`repro.resilience.supervisor.SupervisedRun` with the invariant
auditor at cadence ``--audit-every`` (default 50) and uncompressed
checkpoints at ``--checkpoint-every`` (default 100).  Interleaving the
blocks makes the comparison paired -- slow host drift hits both modes
equally -- which matters because the signal is a few percent.

The figure of merit is ``overhead_fraction``, the supervised slowdown
over the bare run; the robustness milestone requires < 5% at the
default cadences.  The budget: an audit is a few milliseconds of O(N)
checks every 50th step, and an uncompressed checkpoint is a ~20 MB
write every 100th.

Standalone: ``PYTHONPATH=src python benchmarks/bench_supervisor.py``
writes ``BENCH_supervisor.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from bench_step_hotpath import default_config
from repro.core.simulation import Simulation
from repro.resilience import SupervisedRun

WARMUP_STEPS = 5
TIMED_STEPS = 100
BLOCK_STEPS = 25
AUDIT_EVERY = 50
CHECKPOINT_EVERY = 100
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_benchmark(
    steps: int = TIMED_STEPS,
    audit_every: int = AUDIT_EVERY,
    checkpoint_every: int = CHECKPOINT_EVERY,
    block: int = BLOCK_STEPS,
) -> dict:
    bare_sim = Simulation(default_config())
    supervised_sim = Simulation(default_config())
    bare_seconds = 0.0
    supervised_seconds = 0.0
    with tempfile.TemporaryDirectory(prefix="bench_supervisor_") as run_dir:
        run = SupervisedRun(
            supervised_sim,
            run_dir,
            checkpoint_every=checkpoint_every,
            audit_every=audit_every,
        )
        try:
            for _ in range(WARMUP_STEPS):
                bare_sim.step()
                run.step()
            done = 0
            rnd = 0
            while done < steps:
                n = min(block, steps - done)
                # Alternate which mode goes first so a slow spell never
                # lands systematically on the same mode.
                order = ("bare", "sup") if rnd % 2 == 0 else ("sup", "bare")
                for mode in order:
                    t0 = time.perf_counter()
                    if mode == "bare":
                        for _ in range(n):
                            bare_sim.step()
                        bare_seconds += time.perf_counter() - t0
                    else:
                        for _ in range(n):
                            run.step()
                        supervised_seconds += time.perf_counter() - t0
                done += n
                rnd += 1
            audits = run.auditor.audits_run
            n_particles = run.sim.particles.n
        finally:
            run.close()
            bare_sim.close()
    overhead = supervised_seconds / bare_seconds - 1.0
    return {
        "bench": "supervisor",
        "timed_steps": steps,
        "block_steps": block,
        "overhead_fraction": overhead,
        "target_overhead_fraction": 0.05,
        "note": (
            "overhead_fraction is the supervised slowdown over a bare "
            "run stepped in alternating blocks of the same process: "
            f"invariant audits every {audit_every} steps plus "
            f"uncompressed checkpoints every {checkpoint_every}; the "
            "robustness milestone requires < 5% at these cadences"
        ),
        "runs": [
            {
                "mode": "bare",
                "steps_per_sec": steps / bare_seconds,
                "seconds": bare_seconds,
                "n_particles": n_particles,
            },
            {
                "mode": "supervised",
                "steps_per_sec": steps / supervised_seconds,
                "seconds": supervised_seconds,
                "n_particles": n_particles,
                "audit_every": audit_every,
                "checkpoint_every": checkpoint_every,
                "audits_run": audits,
            },
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=TIMED_STEPS)
    parser.add_argument("--audit-every", type=int, default=AUDIT_EVERY)
    parser.add_argument(
        "--checkpoint-every", type=int, default=CHECKPOINT_EVERY
    )
    parser.add_argument("--block", type=int, default=BLOCK_STEPS)
    args = parser.parse_args(argv)

    result = run_benchmark(
        steps=args.steps,
        audit_every=args.audit_every,
        checkpoint_every=args.checkpoint_every,
        block=args.block,
    )
    out = REPO_ROOT / "BENCH_supervisor.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    for r in result["runs"]:
        print(f"{r['mode']:>10s}: {r['steps_per_sec']:7.2f} steps/s")
    print(f"overhead: {100 * result['overhead_fraction']:.2f}% "
          f"(target < {100 * result['target_overhead_fraction']:.0f}%)")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
