"""The declarative scenario spec: dict/TOML in, simulation out.

A :class:`ScenarioSpec` is a plain-data description of one wind-tunnel
experiment -- geometry, freestream, grid, schedule, boundary set and
validation contract -- from which the CLI, examples, benchmarks and the
CI validation matrix all build their runs.  Specs round-trip losslessly
through :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`
(and TOML via :meth:`ScenarioSpec.from_toml`), so a committed config
file and a registered library entry can be diffed for equality by the
tests.

Sections (all dicts of plain scalars/lists):

``geometry``
    ``kind`` selects the body (``wedge``/``cylinder``/``step``/
    ``none``) plus that body's constructor parameters.  The wedge
    additionally accepts ``placement = "paper"``: the body is then
    *derived from the grid* exactly as the legacy CLI did
    (``x_leading = nx/4.9``, ``base = nx/3.92``), which is what keeps
    the ``wedge`` scenario bitwise identical to the pre-registry CLI at
    every ``--nx``.
``freestream``
    ``mach``, ``c_mp``, ``lambda_mfp``, ``density`` (and optional
    ``gamma``).
``grid``
    ``nx``, ``ny`` and, for the z-periodic slab driver, ``nz``.
``schedule``
    ``transient`` and ``average`` step counts of the default run.
``boundaries``
    Optional: ``plunger_trigger``, ``wall_model``, ``accommodation``.
``unsteady``
    Optional: ``windows`` x ``window_steps`` time-resolved sampling
    windows (each window gets a fresh accumulator; the golden harness
    validates the *evolution* across windows).
``validation``
    The scenario's acceptance contract -- see
    :mod:`repro.scenarios.golden`.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.bodies import BODY_KINDS, body_from_dict
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

#: Keys accepted by :func:`build_config`-style overrides (CLI flags and
#: reduced-scale validation runs).  Anything else is a typo and raises.
OVERRIDE_KEYS = (
    "nx",
    "ny",
    "nz",
    "mach",
    "c_mp",
    "density",
    "lambda_mfp",
    "angle",
    "seed",
    "transient",
    "average",
)

_SECTIONS = {
    "name": True,
    "title": True,
    "description": True,
    "geometry": True,
    "freestream": True,
    "grid": True,
    "schedule": True,
    "seed": True,
    "boundaries": False,
    "unsteady": False,
    "validation": True,
    "tags": False,
}

_GEOMETRY_KINDS = tuple(BODY_KINDS) + ("none",)


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"scenario spec section {where!r} must be a table/dict, "
            f"got {type(value).__name__}"
        )
    return dict(value)


def _require_int(value: Any, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"scenario spec field {where!r} must be an integer, "
            f"got {value!r}"
        )
    return value


def _require_number(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"scenario spec field {where!r} must be a number, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario (see module docstring for the schema)."""

    name: str
    title: str
    description: str
    geometry: Dict[str, Any]
    freestream: Dict[str, Any]
    grid: Dict[str, Any]
    schedule: Dict[str, Any]
    seed: int
    validation: Dict[str, Any]
    boundaries: Dict[str, Any] = field(default_factory=dict)
    unsteady: Optional[Dict[str, Any]] = None
    tags: Tuple[str, ...] = ()

    # -- construction -----------------------------------------------------

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("scenario name must be a non-empty string")
        geom = _require_mapping(self.geometry, "geometry")
        kind = geom.get("kind")
        if kind not in _GEOMETRY_KINDS:
            raise ConfigurationError(
                f"scenario {self.name!r}: geometry.kind must be one of "
                f"{_GEOMETRY_KINDS}, got {kind!r}"
            )
        if geom.get("placement") is not None:
            if kind != "wedge" or geom["placement"] != "paper":
                raise ConfigurationError(
                    f"scenario {self.name!r}: geometry.placement is only "
                    "supported as 'paper' on kind 'wedge'"
                )
        grid = _require_mapping(self.grid, "grid")
        for k in ("nx", "ny"):
            if k not in grid:
                raise ConfigurationError(
                    f"scenario {self.name!r}: grid.{k} is required"
                )
            _require_int(grid[k], f"grid.{k}")
        extra = set(grid) - {"nx", "ny", "nz"}
        if extra:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown grid keys {sorted(extra)}"
            )
        fs = _require_mapping(self.freestream, "freestream")
        for k in ("mach", "c_mp", "lambda_mfp", "density"):
            if k not in fs:
                raise ConfigurationError(
                    f"scenario {self.name!r}: freestream.{k} is required"
                )
            _require_number(fs[k], f"freestream.{k}")
        extra = set(fs) - {"mach", "c_mp", "lambda_mfp", "density", "gamma"}
        if extra:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown freestream keys "
                f"{sorted(extra)}"
            )
        sched = _require_mapping(self.schedule, "schedule")
        for k in ("transient", "average"):
            if k not in sched:
                raise ConfigurationError(
                    f"scenario {self.name!r}: schedule.{k} is required"
                )
            _require_int(sched[k], f"schedule.{k}")
        bnd = _require_mapping(self.boundaries, "boundaries")
        extra = set(bnd) - {"plunger_trigger", "wall_model", "accommodation"}
        if extra:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown boundaries keys "
                f"{sorted(extra)}"
            )
        if self.unsteady is not None:
            uns = _require_mapping(self.unsteady, "unsteady")
            for k in ("windows", "window_steps"):
                if _require_int(uns.get(k, 0), f"unsteady.{k}") <= 0:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: unsteady.{k} must be a "
                        "positive integer"
                    )
            extra = set(uns) - {"windows", "window_steps"}
            if extra:
                raise ConfigurationError(
                    f"scenario {self.name!r}: unknown unsteady keys "
                    f"{sorted(extra)}"
                )
        _require_int(self.seed, "seed")
        val = _require_mapping(self.validation, "validation")
        extra = set(val) - {"checks", "golden", "overrides"}
        if extra:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown validation keys "
                f"{sorted(extra)}"
            )
        checks = val.get("checks")
        if not isinstance(checks, (list, tuple)) or not checks:
            raise ConfigurationError(
                f"scenario {self.name!r}: validation.checks must be a "
                "non-empty list (every scenario ships its acceptance "
                "contract)"
            )
        for check in checks:
            c = _require_mapping(check, "validation.checks[]")
            for k in ("name", "kind", "expect"):
                if not isinstance(c.get(k), str) or not c[k]:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: every validation check "
                        f"needs a non-empty string {k!r}, got {c.get(k)!r}"
                    )
        if "overrides" in val:
            _check_override_keys(val["overrides"], self.name)
        # Dry-construct the body so malformed geometry parameters fail
        # at spec definition, not first use.
        self.build_body()

    @property
    def is_3d(self) -> bool:
        """True when the grid carries a span (``nz``) dimension."""
        return "nz" in self.grid

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from a plain nested dict."""
        d = _require_mapping(data, "<spec>")
        unknown = set(d) - set(_SECTIONS)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec keys {sorted(unknown)}; expected "
                f"a subset of {sorted(_SECTIONS)}"
            )
        missing = [k for k, req in _SECTIONS.items() if req and k not in d]
        if missing:
            raise ConfigurationError(
                f"scenario spec is missing required keys {missing}"
            )
        return cls(
            name=d["name"],
            title=d["title"],
            description=d["description"],
            geometry=dict(_require_mapping(d["geometry"], "geometry")),
            freestream=dict(_require_mapping(d["freestream"], "freestream")),
            grid=dict(_require_mapping(d["grid"], "grid")),
            schedule=dict(_require_mapping(d["schedule"], "schedule")),
            seed=d["seed"],
            validation=dict(_require_mapping(d["validation"], "validation")),
            boundaries=dict(
                _require_mapping(d.get("boundaries", {}), "boundaries")
            ),
            unsteady=(
                dict(_require_mapping(d["unsteady"], "unsteady"))
                if d.get("unsteady") is not None
                else None
            ),
            tags=tuple(d.get("tags", ())),
        )

    @classmethod
    def from_toml(cls, path: Union[str, pathlib.Path]) -> "ScenarioSpec":
        """Parse a TOML scenario file (stdlib ``tomllib``, Python 3.11+).

        The repo supports 3.9+ without third-party TOML parsers, so on
        older interpreters this raises a clear :class:`ConfigurationError`
        instead of importing anything new; the dict path
        (:meth:`from_dict`) is always available.
        """
        try:
            import tomllib
        except ModuleNotFoundError:
            raise ConfigurationError(
                "TOML scenario files need Python 3.11+ (stdlib tomllib); "
                "use ScenarioSpec.from_dict on this interpreter"
            ) from None
        with open(path, "rb") as fh:
            return cls.from_dict(tomllib.load(fh))

    def to_dict(self) -> Dict[str, Any]:
        """Plain nested dict (JSON/TOML-serializable) round-tripping
        through :meth:`from_dict` to an equal spec."""
        out: Dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "seed": self.seed,
            "geometry": dict(self.geometry),
            "freestream": dict(self.freestream),
            "grid": dict(self.grid),
            "schedule": dict(self.schedule),
            "validation": _deep_copy_jsonish(self.validation),
        }
        if self.boundaries:
            out["boundaries"] = dict(self.boundaries)
        if self.unsteady is not None:
            out["unsteady"] = dict(self.unsteady)
        if self.tags:
            out["tags"] = list(self.tags)
        return out

    def canonical_json(self) -> str:
        """Canonical serialization: :meth:`to_dict` as minified JSON
        with sorted keys, so two equal specs -- however their dicts
        were ordered -- serialize byte-identically."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """Stable content digest (sha256 hex of :meth:`canonical_json`).

        Equal specs (including :meth:`from_dict`/:meth:`to_dict`
        round-trips) share a digest; any semantic change -- a grid
        size, a freestream number, a validation check -- changes it.
        The service layer keys its result cache on it, and snapshots or
        telemetry can stamp runs with it.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def to_toml(self) -> str:
        """TOML text parsing back through :meth:`from_toml` to an
        equal spec (the committed ``examples/scenarios/*.toml`` files
        are generated from this, so spec and file never drift)."""
        d = self.to_dict()
        lines = []
        for key in ("name", "title", "description", "seed"):
            lines.append(f"{key} = {_toml_value(d[key])}")
        if "tags" in d:
            lines.append(f"tags = {_toml_value(d['tags'])}")
        for section in ("geometry", "freestream", "grid", "schedule",
                        "boundaries", "unsteady"):
            if section in d:
                lines += ["", f"[{section}]"]
                lines += [
                    f"{k} = {_toml_value(v)}" for k, v in d[section].items()
                ]
        val = d["validation"]
        lines += ["", "[validation]"]
        if "golden" in val:
            lines.append(f"golden = {_toml_value(val['golden'])}")
        if "overrides" in val:
            lines += ["", "[validation.overrides]"]
            lines += [
                f"{k} = {_toml_value(v)}"
                for k, v in val["overrides"].items()
            ]
        for check in val.get("checks", ()):
            lines += ["", "[[validation.checks]]"]
            lines += [f"{k} = {_toml_value(v)}" for k, v in check.items()]
        return "\n".join(lines) + "\n"

    # -- building ---------------------------------------------------------

    def build_body(self, nx: Optional[int] = None, angle=None):
        """Construct the body for a grid of ``nx`` columns (None = spec's)."""
        geom = dict(self.geometry)
        kind = geom.pop("kind")
        if kind == "none":
            return None
        nx = int(self.grid["nx"]) if nx is None else int(nx)
        placement = geom.pop("placement", None)
        if angle is not None:
            if kind != "wedge":
                raise ConfigurationError(
                    f"scenario {self.name!r}: the angle override only "
                    f"applies to wedge geometry, not {kind!r}"
                )
            geom["angle_deg"] = float(angle)
        if placement == "paper":
            # The legacy CLI's grid-derived placement, expression for
            # expression -- the bitwise-identity contract of the wedge
            # scenario.
            extra = set(geom) - {"angle_deg"}
            if extra:
                raise ConfigurationError(
                    f"scenario {self.name!r}: paper placement derives "
                    f"the wedge from the grid; unexpected keys "
                    f"{sorted(extra)}"
                )
            return Wedge(
                x_leading=nx / 4.9,
                base=nx / 3.92,
                angle_deg=float(geom["angle_deg"]),
            )
        try:
            return body_from_dict({**geom, "kind": kind})
        except TypeError as exc:
            raise ConfigurationError(
                f"scenario {self.name!r}: bad geometry parameters for "
                f"kind {kind!r}: {exc}"
            ) from None

    def build_config(self, **overrides) -> SimulationConfig:
        """A :class:`SimulationConfig` for this scenario (2-D only).

        ``overrides`` accepts the :data:`OVERRIDE_KEYS` subset used by
        CLI flags and reduced-scale validation runs; unknown keys raise.
        """
        _check_override_keys(overrides, self.name)
        if self.is_3d:
            raise ConfigurationError(
                f"scenario {self.name!r} is three-dimensional; use "
                "build_simulation (SimulationConfig is the 2-D engine's)"
            )
        ov = dict(overrides)
        ov.pop("transient", None)
        ov.pop("average", None)
        nx = int(ov.pop("nx", self.grid["nx"]))
        ny = int(ov.pop("ny", self.grid["ny"]))
        ov.pop("nz", None)
        fs = dict(self.freestream)
        for k in ("mach", "c_mp", "density", "lambda_mfp"):
            if k in ov:
                fs[k] = float(ov.pop(k))
        seed = ov.pop("seed", self.seed)
        body = self.build_body(nx=nx, angle=ov.pop("angle", None))
        bnd = dict(self.boundaries)
        kwargs: Dict[str, Any] = {}
        if "plunger_trigger" in bnd:
            kwargs["plunger_trigger"] = float(bnd["plunger_trigger"])
        if "wall_model" in bnd:
            kwargs["wall_model"] = bnd["wall_model"]
        if "accommodation" in bnd:
            kwargs["accommodation"] = float(bnd["accommodation"])
        return SimulationConfig(
            domain=Domain(nx, ny),
            freestream=Freestream(**fs),
            wedge=body,
            seed=seed,
            scenario=self.name,
            **kwargs,
        )

    def build_simulation(self, overrides: Optional[Mapping] = None, **kwargs):
        """Construct the ready-to-run simulation object.

        Returns a :class:`~repro.core.simulation.Simulation` (2-D) or a
        :class:`~repro.core.simulation3d.Simulation3D` (``nz`` grids);
        ``kwargs`` (``backend=``, ``telemetry=``, ``hotpath=``) pass
        through to the 2-D engine and are rejected for 3-D scenarios,
        whose driver has no backend/telemetry seam yet.
        """
        overrides = dict(overrides or {})
        _check_override_keys(overrides, self.name)
        if not self.is_3d:
            config = self.build_config(**overrides)
            return Simulation(config, **kwargs)
        if kwargs:
            raise ConfigurationError(
                f"scenario {self.name!r} runs on the 3-D driver, which "
                f"does not support {sorted(kwargs)} yet"
            )
        from repro.core.simulation3d import Simulation3D, Simulation3DConfig
        from repro.geometry.domain3d import Domain3D

        overrides.pop("transient", None)
        overrides.pop("average", None)
        nx = int(overrides.pop("nx", self.grid["nx"]))
        ny = int(overrides.pop("ny", self.grid["ny"]))
        nz = int(overrides.pop("nz", self.grid["nz"]))
        fs = dict(self.freestream)
        for k in ("mach", "c_mp", "density", "lambda_mfp"):
            if k in overrides:
                fs[k] = float(overrides.pop(k))
        seed = overrides.pop("seed", self.seed)
        body = self.build_body(nx=nx, angle=overrides.pop("angle", None))
        if body is not None and not isinstance(body, Wedge):
            raise ConfigurationError(
                f"scenario {self.name!r}: the 3-D driver extrudes wedge "
                "prisms only"
            )
        bnd = dict(self.boundaries)
        kwargs3: Dict[str, Any] = {}
        if "plunger_trigger" in bnd:
            kwargs3["plunger_trigger"] = float(bnd["plunger_trigger"])
        config = Simulation3DConfig(
            domain=Domain3D(nx, ny, nz),
            freestream=Freestream(**fs),
            wedge=body,
            seed=seed,
            **kwargs3,
        )
        return Simulation3D(config)

    def resolve_schedule(self, overrides: Optional[Mapping] = None):
        """``(transient, average)`` step counts after overrides."""
        overrides = overrides or {}
        transient = int(overrides.get("transient", self.schedule["transient"]))
        average = int(overrides.get("average", self.schedule["average"]))
        return transient, average


def _check_override_keys(overrides: Mapping, name: str) -> None:
    unknown = set(overrides) - set(OVERRIDE_KEYS)
    if unknown:
        raise ConfigurationError(
            f"scenario {name!r}: unknown override keys {sorted(unknown)}; "
            f"expected a subset of {OVERRIDE_KEYS}"
        )


def _toml_value(value) -> str:
    """Serialize one scalar/list as a TOML literal.

    JSON string quoting is a valid TOML basic string for the ASCII
    content specs carry; ints/floats round-trip through ``repr``.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TypeError(f"cannot serialize {type(value).__name__} to TOML")


def _deep_copy_jsonish(value):
    if isinstance(value, Mapping):
        return {k: _deep_copy_jsonish(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_deep_copy_jsonish(v) for v in value]
    return value
