"""ABL5 -- Future Work: dynamic virtual-processor configuration.

"The newer software allows dynamic modification of the virtual
processor configuration, this can be used to speed up the computational
time spent to reach steady state."

Under C* 4.3 the VP set is sized once, for the *largest* population the
run will reach (the post-shock density build-up grows the flow by tens
of percent), so early steps burn idle VP slots.  The ablation runs the
same transient with the static and the dynamic policy and compares the
total raw machine cost.
"""

from repro.analysis.report import ExperimentRecord
from repro.cm.machine import CM2
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

MACHINE = CM2(n_processors=64)
STEPS = 25


def _config():
    return SimulationConfig(
        domain=Domain(40, 26),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=6.0),
        wedge=Wedge(x_leading=8.0, base=10.0, angle_deg=30.0),
        seed=31,
    )


def test_abl_dynamic_vp(benchmark, emit):
    static = CMSimulation(
        _config(), machine=MACHINE, dynamic_vp=False
    )
    static.run(STEPS)
    static_cost = static.ledger.total()

    def run_dynamic():
        sim = CMSimulation(_config(), machine=MACHINE, dynamic_vp=True)
        sim.run(STEPS)
        return sim

    dynamic = benchmark.pedantic(run_dynamic, rounds=1, iterations=1)
    dynamic_cost = dynamic.ledger.total()

    rec = ExperimentRecord("ABL5", "dynamic VP configuration (Future Work)")
    rec.add("transient raw cost, static VP set", None, static_cost)
    rec.add("transient raw cost, dynamic VP set", None, dynamic_cost)
    rec.add(
        "transient savings fraction",
        None,
        1.0 - dynamic_cost / static_cost,
        note="idle VP slots reclaimed during the build-up",
    )
    rec.add(
        "static VP capacity (particles)",
        None,
        float(static.vp_capacity),
        note="sized 1.3x the initial population",
    )
    rec.add(
        "final population (both engines)",
        None,
        float(dynamic.state.n),
    )
    emit(rec)

    # Physics identical; accounting cheaper.
    assert dynamic_cost < static_cost
    assert dynamic.state.n == static.state.n
