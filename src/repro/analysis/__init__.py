"""Analysis of simulation fields: the numbers the paper reads off figures.

* :mod:`~repro.analysis.fields` -- field extraction (wake and stagnation
  windows, profiles);
* :mod:`~repro.analysis.shock` -- shock angle, post-shock density ratio,
  shock thickness, Prandtl-Meyer expansion check, wake-shock detector;
* :mod:`~repro.analysis.contour` -- ASCII contour rendering and level
  crossings (the stand-in for the paper's plotting package);
* :mod:`~repro.analysis.report` -- paper-vs-measured experiment records
  and markdown table emission for EXPERIMENTS.md.
"""

from repro.analysis import (
    contour,
    convergence,
    fields,
    report,
    shock,
    streamlines,
    thermo,
    vdf,
)

__all__ = [
    "contour",
    "convergence",
    "fields",
    "report",
    "shock",
    "streamlines",
    "thermo",
    "vdf",
]
