"""Unit tests for the reservoir and the wind-tunnel boundaries."""

import numpy as np
import pytest

from repro.core.boundary import PlungerState, WindTunnelBoundaries
from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.distributions import excess_kurtosis
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)


class TestReservoir:
    def test_deposit_withdraw_counts(self, fs, rng):
        res = Reservoir(fs)
        res.deposit(rng, 100)
        assert res.size == 100
        out = res.withdraw(rng, 30)
        assert out.n == 30 and res.size == 70

    def test_deposit_velocities_rectangular_at_freestream(self, fs, rng):
        res = Reservoir(fs)
        res.deposit(rng, 50_000)
        p = res.particles
        assert p.u.mean() == pytest.approx(fs.speed, abs=0.01)
        assert p.u.var() == pytest.approx(fs.c_mp**2 / 2, rel=0.05)
        # Rectangular: strongly negative excess kurtosis.
        assert excess_kurtosis(p.u[:, None])[0] < -1.0

    def test_mix_relaxes_to_gaussian(self, fs, rng):
        # The paper's claim: "after a few time steps collisions with
        # other reservoir particles relaxes these to the correct
        # Gaussian distributions."
        res = Reservoir(fs)
        res.deposit(rng, 20_000)
        res.mix(rng, rounds=8)
        k = excess_kurtosis(
            np.column_stack((res.particles.u, res.particles.v, res.particles.w))
        )
        assert np.all(np.abs(k) < 0.15)

    def test_mix_conserves_energy_momentum(self, fs, rng):
        res = Reservoir(fs)
        res.deposit(rng, 5000)
        e0 = res.particles.total_energy()
        p0 = res.particles.momentum()
        res.mix(rng, rounds=5)
        assert res.particles.total_energy() == pytest.approx(e0, rel=1e-12)
        assert np.allclose(res.particles.momentum(), p0, atol=1e-9)

    def test_overdraw_tops_up(self, fs, rng):
        res = Reservoir(fs)
        res.deposit(rng, 10)
        out = res.withdraw(rng, 50)
        assert out.n == 50
        assert res.size == 0

    def test_mix_empty_reservoir(self, fs, rng):
        assert Reservoir(fs).mix(rng) == 0

    def test_negative_counts_rejected(self, fs, rng):
        res = Reservoir(fs)
        with pytest.raises(ConfigurationError):
            res.deposit(rng, -1)
        with pytest.raises(ConfigurationError):
            res.withdraw(rng, -1)


class TestPlungerState:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlungerState(position=0.0, trigger=0.0, speed=0.1)
        with pytest.raises(ConfigurationError):
            PlungerState(position=0.0, trigger=1.0, speed=0.0)
        with pytest.raises(ConfigurationError):
            PlungerState(position=2.0, trigger=1.0, speed=0.1)


class TestBoundaries:
    def make_pop(self, rng, fs, n=200, domain=None):
        domain = domain or Domain(30, 20)
        return ParticleArrays.from_freestream(
            rng, n, fs, (1, domain.width - 1), (1, domain.height - 1)
        )

    def test_floor_ceiling_reflection(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs)
        pop = self.make_pop(rng, fs)
        pop.y[0] = -0.5
        pop.v[0] = -0.2
        pop.y[1] = 20.4
        pop.v[1] = 0.3
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert pop.y[0] == pytest.approx(0.5)
        assert pop.v[0] == pytest.approx(0.2)
        assert pop.y[1] == pytest.approx(19.6)
        assert pop.v[1] == pytest.approx(-0.3)
        assert stats.n_reflected_walls >= 2

    def test_downstream_removal_to_reservoir(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs)
        res = Reservoir(fs)
        pop = self.make_pop(rng, fs)
        pop.x[:5] = 30.2
        n0 = pop.n
        pop, stats = b.apply_rebuilding(pop, res, rng)
        assert stats.n_removed_downstream == 5
        assert pop.n == n0 - 5
        assert res.size == 5

    def test_plunger_reflects_in_moving_frame(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs, plunger_trigger=5.0)
        b.plunger.position = 2.0
        pop = self.make_pop(rng, fs)
        pop.x[0] = 1.5
        pop.u[0] = 0.0
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert pop.x[0] == pytest.approx(2.5)
        assert pop.u[0] == pytest.approx(2.0 * fs.speed)

    def test_plunger_advances_each_step(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs, plunger_trigger=50.0)
        pop = self.make_pop(rng, fs)
        x0 = b.plunger.position
        pop, _ = b.apply_rebuilding(pop, None, rng)
        assert b.plunger.position == pytest.approx(x0 + fs.speed)

    def test_plunger_withdraw_and_refill(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs, plunger_trigger=1.0)
        b.plunger.position = 0.9
        res = Reservoir(fs)
        res.deposit(rng, 2000)
        pop = self.make_pop(rng, fs)
        n0 = pop.n
        pop, stats = b.apply_rebuilding(pop, res, rng)
        assert stats.plunger_reset
        assert b.plunger.position == 0.0
        # Refill count ~ density * void area.
        void = (0.9 + fs.speed) * d.height
        assert stats.n_injected_upstream == pytest.approx(
            fs.density * void, rel=0.01
        )
        assert pop.n == n0 + stats.n_injected_upstream
        # Injected particles occupy the void.
        injected = pop.x[n0:]
        assert injected.max() <= 0.9 + fs.speed + 1e-9

    def test_refill_without_reservoir_samples_fresh(self, fs, rng):
        d = Domain(30, 20)
        b = WindTunnelBoundaries(d, fs, plunger_trigger=1.0)
        b.plunger.position = 0.99
        pop = self.make_pop(rng, fs)
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert stats.n_injected_upstream > 0

    def test_wedge_reflection_counted(self, fs, rng):
        d = Domain(30, 20)
        w = Wedge(x_leading=8, base=10, angle_deg=30)
        b = WindTunnelBoundaries(d, fs, wedge=w)
        pop = self.make_pop(rng, fs)
        pop.x[0], pop.y[0] = 12.0, 0.5  # inside the wedge
        pop.u[0], pop.v[0] = 0.3, -0.1
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert stats.n_reflected_wedge >= 1
        assert not w.inside(pop.x, pop.y).any()

    def test_no_particle_left_in_any_solid(self, fs, rng):
        # Stress: a blob of fast particles aimed at the wedge corner.
        d = Domain(30, 20)
        w = Wedge(x_leading=8, base=10, angle_deg=30)
        b = WindTunnelBoundaries(d, fs, wedge=w)
        pop = self.make_pop(rng, fs, n=2000)
        pop.x[:] = rng.uniform(7, 19, pop.n)
        pop.y[:] = rng.uniform(0, 7, pop.n)
        pop.u[:] = rng.normal(0.4, 0.3, pop.n)
        pop.v[:] = rng.normal(-0.3, 0.3, pop.n)
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert not w.inside(pop.x, pop.y).any()
        assert pop.y.min() >= 0.0
        assert pop.y.max() <= d.height
        # The clamp fallback should be rare.
        assert stats.n_clamped <= pop.n * 0.01

    def test_wedge_must_fit_domain(self, fs):
        with pytest.raises(Exception):
            WindTunnelBoundaries(
                Domain(20, 10), fs, wedge=Wedge(x_leading=15, base=10)
            )
