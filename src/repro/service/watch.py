"""``repro watch``: a live terminal dashboard over the service API.

Two views, both plain stdlib over the streaming routes:

* **job view** (``repro watch <job_id>``) -- long-polls
  ``/jobs/<id>/events`` and renders step progress, particle count, a
  us/particle sparkline built from the heartbeat-to-heartbeat deltas
  of the worker's step-time histogram, retry/attempt state and (when
  sharded) the load imbalance.  Exits 0 when the job lands DONE, 1 on
  any other terminal state.
* **fleet view** (``repro watch --fleet``) -- polls ``/fleet`` and
  renders one row per job; exits once every job is terminal.

On a TTY the panel redraws in place (ANSI cursor-up); redirected
output degrades to one status line per refresh, so a CI log of a
watch session stays readable.
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional

from repro.service import store as st
from repro.service.client import ServiceClient

#: Eighth-block ramp for sparklines (space = no data).
SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 32) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    out = []
    for v in vals:
        frac = 1.0 if span <= 0 else (v - lo) / span
        out.append(SPARK_CHARS[1 + int(frac * (len(SPARK_CHARS) - 2))])
    return "".join(out)


def progress_bar(step: Optional[float], total: Optional[float],
                 width: int = 24) -> str:
    """``[#####....] 42%`` (empty when totals are unknown)."""
    if not total or step is None:
        return "[" + " " * width + "]   ?%"
    frac = min(1.0, max(0.0, float(step) / float(total)))
    filled = int(round(frac * width))
    return (
        "[" + "#" * filled + "." * (width - filled)
        + f"] {int(frac * 100):3d}%"
    )


class JobView:
    """Accumulates one job's live events into a renderable panel."""

    def __init__(self, job_id: str, spark_width: int = 32) -> None:
        self.job_id = job_id
        self.spark_width = spark_width
        self.step: Optional[int] = None
        self.total: Optional[int] = None
        self.n_flow: Optional[int] = None
        self.attempt: Optional[int] = None
        self.state: str = "?"
        self.load_imbalance: Optional[float] = None
        self.us_series: List[float] = []
        self.kinds: dict = {}

    def feed(self, rec: dict) -> None:
        """Fold one streamed record into the view."""
        kind = rec.get("kind")
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        if kind == "heartbeat":
            self.step = rec.get("step", self.step)
            self.total = rec.get("total", self.total)
            self.n_flow = rec.get("n_flow", self.n_flow)
            self.attempt = rec.get("attempt", self.attempt)
            if rec.get("us_per_particle") is not None:
                self.us_series.append(float(rec["us_per_particle"]))
        elif kind == "metrics":
            if rec.get("load_imbalance") is not None:
                self.load_imbalance = float(rec["load_imbalance"])
            if rec.get("n_flow") is not None:
                self.n_flow = rec["n_flow"]
        elif kind == "started":
            self.attempt = rec.get("attempt", self.attempt)
            self.total = rec.get("total", self.total)

    def lines(self) -> List[str]:
        """The dashboard panel, one string per terminal row."""
        retries = max(0, (self.attempt or 1) - 1)
        us = self.us_series[-1] if self.us_series else None
        rows = [
            f"job {self.job_id}  [{self.state}]  attempt "
            f"{self.attempt or '?'}  retries {retries}",
            f"  steps {progress_bar(self.step, self.total)}  "
            f"{self.step if self.step is not None else '?'}"
            f"/{self.total if self.total is not None else '?'}",
            f"  particles {self.n_flow if self.n_flow is not None else '?':>8}"
            + (
                f"   imbalance {self.load_imbalance:.3f}"
                if self.load_imbalance is not None
                else ""
            ),
        ]
        if self.us_series:
            rows.append(
                f"  us/particle {us:7.3f}  "
                f"{sparkline(self.us_series, self.spark_width)}"
            )
        counts = "  ".join(
            f"{k}:{n}"
            for k, n in sorted(self.kinds.items())
            if k in ("heartbeat", "checkpoint", "recovery", "failed")
        )
        if counts:
            rows.append(f"  events {counts}")
        return rows


class _Panel:
    """Redraw-in-place writer (plain appends when not a TTY)."""

    def __init__(self, out: IO[str]) -> None:
        self.out = out
        self.tty = bool(getattr(out, "isatty", lambda: False)())
        self._last = 0

    def draw(self, lines: List[str]) -> None:
        if self.tty and self._last:
            self.out.write(f"\x1b[{self._last}F\x1b[J")
        for line in lines:
            self.out.write(line + "\n")
        self.out.flush()
        self._last = len(lines)


def watch_job(
    client: ServiceClient,
    job_id: str,
    out: IO[str] = sys.stdout,
    poll_timeout: float = 2.0,
    max_rounds: Optional[int] = None,
) -> int:
    """Follow one job live until terminal; returns the exit code."""
    view = JobView(job_id)
    panel = _Panel(out)
    cursor: Optional[str] = None
    rounds = 0
    while True:
        batch = client.events(job_id, cursor=cursor, timeout=poll_timeout)
        cursor = batch["cursor"]
        view.state = batch["state"]
        for rec in batch["events"]:
            view.feed(rec)
        panel.draw(view.lines())
        rounds += 1
        if batch["terminal"]:
            return 0 if batch["state"] == st.DONE else 1
        if max_rounds is not None and rounds >= max_rounds:
            return 0


def fleet_lines(fleet: dict) -> List[str]:
    """Render the ``/fleet`` summary as a table, one row per job."""
    health = fleet.get("health", {})
    rows = [
        f"fleet: {health.get('running', 0)} running, queue depth "
        f"{health.get('queue_depth', 0)}, {health.get('jobs', 0)} jobs"
        + ("" if health.get("ok", True) else "  [SERVICE DEAD]")
    ]
    header = (
        f"{'job':<34} {'state':<9} {'step':>10} {'part.':>8} "
        f"{'us/part':>8} {'hb age':>7} {'retry':>5}"
    )
    rows.append(header)
    for job in fleet.get("jobs", []):
        step = job.get("step")
        total = job.get("total")
        steps = (
            f"{step}/{total}" if step is not None and total else
            (str(step) if step is not None else "-")
        )
        us = job.get("us_per_particle")
        age = job.get("heartbeat_age")
        rows.append(
            f"{job.get('job_id', '?'):<34} {job.get('state', '?'):<9} "
            f"{steps:>10} "
            f"{job.get('n_flow') if job.get('n_flow') is not None else '-':>8} "
            f"{f'{us:.3f}' if us is not None else '-':>8} "
            f"{f'{age:.1f}s' if age is not None else '-':>7} "
            f"{max(0, (job.get('attempt') or 1) - 1):>5}"
        )
    return rows


def watch_fleet(
    client: ServiceClient,
    out: IO[str] = sys.stdout,
    interval: float = 1.0,
    max_rounds: Optional[int] = None,
) -> int:
    """Follow the whole fleet until every job is terminal."""
    panel = _Panel(out)
    rounds = 0
    while True:
        fleet = client.fleet()
        panel.draw(fleet_lines(fleet))
        rounds += 1
        jobs = fleet.get("jobs", [])
        live = [j for j in jobs if j.get("state") not in st.TERMINAL_STATES]
        if jobs and not live:
            return 0
        if max_rounds is not None and rounds >= max_rounds:
            return 0
        time.sleep(interval)
