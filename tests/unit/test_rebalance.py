"""Unit tests of the rebalance planner plumbing and two falsy-value
bugfix regressions.

* :class:`RebalanceConfig` parsing/validation and the transfer-plan
  arithmetic (`planned_transfers`, `validate_plan`) that re-validates
  channel and buffer capacity before a repartition executes.
* Exchange fault keying: ``MigrationChannels.ship`` used to key faults
  with ``self._step or 0``, conflating an unpublished step (``None``)
  with a genuine step 0.  A fault armed for step 0 must fire *at* step
  0, and shipping with a plan armed but no step published must fail
  loudly instead of silently aliasing to step 0.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError, ExchangeOverflowError
from repro.parallel.exchange import RIGHT, MigrationChannels
from repro.parallel.rebalance import (
    DEFAULT_THRESHOLD,
    RebalanceConfig,
    planned_transfers,
    validate_plan,
)
from repro.parallel.shard import DEFAULT_MAX_SHIFT, ShardSlabs
from repro.resilience.faults import FaultPlan, FaultSpec


class TestRebalanceConfig:
    def test_parse_disabled(self):
        assert RebalanceConfig.parse(None) is None
        assert RebalanceConfig.parse("") is None
        assert RebalanceConfig.parse("off") is None

    def test_parse_cadence(self):
        cfg = RebalanceConfig.parse("every:25")
        assert cfg.every == 25
        assert cfg.threshold == DEFAULT_THRESHOLD
        assert cfg.max_shift == DEFAULT_MAX_SHIFT

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            RebalanceConfig.parse("every:two")
        with pytest.raises(ConfigurationError):
            RebalanceConfig.parse("sometimes")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RebalanceConfig(every=0)
        with pytest.raises(ConfigurationError):
            RebalanceConfig(every=5, threshold=0.9)


class TestPlannedTransfers:
    def test_edge_moving_left_ships_rows_right(self):
        old = ShardSlabs.split(10, 2)   # edges (0, 5, 10)
        new = ShardSlabs.from_edges(10, (0, 3, 10))
        counts = np.arange(10)  # column k holds k particles
        to_left, to_right = planned_transfers(old, new, counts)
        # Columns [3, 5) move from shard 0 to shard 1: 3 + 4 rows.
        assert to_right[1] == 7
        assert to_left.sum() == 0

    def test_edge_moving_right_ships_rows_left(self):
        old = ShardSlabs.split(10, 2)
        new = ShardSlabs.from_edges(10, (0, 7, 10))
        counts = np.ones(10, dtype=np.int64)
        to_left, to_right = planned_transfers(old, new, counts)
        assert to_left[1] == 2  # columns [5, 7) from shard 1 to shard 0
        assert to_right.sum() == 0

    def test_unchanged_edges_ship_nothing(self):
        slabs = ShardSlabs.split(10, 2)
        to_left, to_right = planned_transfers(
            slabs, slabs, np.ones(10, dtype=np.int64)
        )
        assert to_left.sum() == 0 and to_right.sum() == 0


class TestValidatePlan:
    def test_fitting_plan_passes(self):
        old = ShardSlabs.split(10, 2)
        new = ShardSlabs.from_edges(10, (0, 3, 10))
        counts = np.full(10, 5, dtype=np.int64)
        assert validate_plan(old, new, counts, 64, np.array([100, 100])) is None

    def test_channel_overflow_named(self):
        old = ShardSlabs.split(10, 2)
        new = ShardSlabs.from_edges(10, (0, 3, 10))
        counts = np.full(10, 50, dtype=np.int64)
        reason = validate_plan(old, new, counts, 8, np.array([1000, 1000]))
        assert reason is not None and "channel" in reason

    def test_shard_capacity_named(self):
        old = ShardSlabs.split(10, 2)
        new = ShardSlabs.from_edges(10, (0, 3, 10))
        counts = np.full(10, 50, dtype=np.int64)
        reason = validate_plan(old, new, counts, 1000, np.array([1000, 300]))
        assert reason is not None and "capacity" in reason


def _heap_alloc(shape, dtype):
    return np.zeros(shape, dtype=dtype)


def _tiny_population(n: int, dof: int = 2) -> ParticleArrays:
    rng = np.random.default_rng(11)
    k = 3 + dof
    perm = np.stack(
        [rng.permutation(k).astype(np.int8) for _ in range(n)]
    )
    parts = ParticleArrays(
        x=rng.uniform(0.0, 10.0, n),
        y=rng.uniform(0.0, 10.0, n),
        u=rng.normal(size=n),
        v=rng.normal(size=n),
        w=rng.normal(size=n),
        rot=rng.normal(size=(n, dof)),
        perm=perm,
        cell=np.zeros(n, dtype=np.int64),
    )
    parts.enable_scratch()
    return parts


class TestShipFaultKeying:
    def test_step_zero_overflow_fault_fires_at_step_zero(self):
        # Regression: with the old ``self._step or 0`` keying this
        # passed only by accident of the falsy conflation; with an
        # explicitly published step 0 the fault must still fire.
        plan = FaultPlan(
            [FaultSpec(kind="overflow", step=0, shard=0, capacity=1)]
        )
        chans = MigrationChannels(2, 2, 64, _heap_alloc, fault_plan=plan)
        parts = _tiny_population(8)
        chans._step = 0
        with pytest.raises(ExchangeOverflowError) as err:
            chans.ship(parts, np.arange(4), 0, RIGHT)
        assert err.value.context["injected"] is True
        assert err.value.context["step"] == 0

    def test_unpublished_step_with_armed_plan_raises(self):
        # The publish-before-ship contract is load-bearing; silently
        # aliasing None to step 0 hid exactly the bug above.
        plan = FaultPlan(
            [FaultSpec(kind="overflow", step=5, shard=0, capacity=1)]
        )
        chans = MigrationChannels(2, 2, 64, _heap_alloc, fault_plan=plan)
        parts = _tiny_population(8)
        assert chans._step is None
        with pytest.raises(ConfigurationError):
            chans.ship(parts, np.arange(4), 0, RIGHT)

    def test_no_plan_needs_no_step(self):
        chans = MigrationChannels(2, 2, 64, _heap_alloc)
        parts = _tiny_population(8)
        assert chans.ship(parts, np.arange(4), 0, RIGHT) == 4
