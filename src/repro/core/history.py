"""Per-step time-series recording for simulation runs.

Captures the scalar diagnostics of every step (population, collisions,
energy, boundary traffic) into growable arrays so transients can be
inspected, steady state detected
(:class:`repro.analysis.convergence.SteadyStateDetector` plugs in
directly), and runs compared quantitatively -- the observability layer a
production solver needs around the paper's bare time loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.convergence import SteadyStateDetector
from repro.core.simulation import Simulation, StepDiagnostics
from repro.errors import ConfigurationError

#: Scalar channels extracted from each step's diagnostics.
CHANNELS = (
    "n_flow",
    "n_reservoir",
    "n_candidates",
    "n_collisions",
    "pairing_efficiency",
    "mean_collision_probability",
    "total_energy",
    "momentum_x",
    "n_removed_downstream",
    "n_injected_upstream",
)


class RunHistory:
    """Accumulates per-step scalars from :class:`StepDiagnostics`."""

    def __init__(self) -> None:
        self._data: Dict[str, List[float]] = {c: [] for c in CHANNELS}

    def record(self, diag: StepDiagnostics) -> None:
        """Append one step's scalars to every channel."""
        d = self._data
        d["n_flow"].append(diag.n_flow)
        d["n_reservoir"].append(diag.n_reservoir)
        d["n_candidates"].append(diag.n_candidates)
        d["n_collisions"].append(diag.n_collisions)
        d["pairing_efficiency"].append(diag.pairing_efficiency)
        d["mean_collision_probability"].append(
            diag.mean_collision_probability
        )
        d["total_energy"].append(diag.total_energy)
        d["momentum_x"].append(diag.momentum_x)
        d["n_removed_downstream"].append(diag.boundary.n_removed_downstream)
        d["n_injected_upstream"].append(diag.boundary.n_injected_upstream)

    def __len__(self) -> int:
        return len(self._data["n_flow"])

    def series(self, channel: str) -> np.ndarray:
        """The recorded time series of one channel."""
        if channel not in self._data:
            raise ConfigurationError(
                f"unknown channel {channel!r}; have {sorted(self._data)}"
            )
        return np.asarray(self._data[channel], dtype=np.float64)

    def mass_balance_residual(self) -> float:
        """Net particle flux imbalance over the recorded window.

        (injected - removed - population change) / mean population:
        a closed-bookkeeping check that no particles are silently lost
        or duplicated by the boundary machinery.
        """
        if len(self) < 2:
            raise ConfigurationError("need at least 2 recorded steps")
        # n_flow[k] is the population *after* step k, so the window's
        # population change is driven by the fluxes of steps 1..end
        # (step 0's fluxes are already inside n_flow[0]).
        injected = self.series("n_injected_upstream")[1:].sum()
        removed = self.series("n_removed_downstream")[1:].sum()
        n = self.series("n_flow")
        change = n[-1] - n[0]
        return float((injected - removed - change) / max(n.mean(), 1.0))

    def save(self, path) -> None:
        """Dump all channels to a compressed .npz file."""
        np.savez_compressed(
            path, **{c: self.series(c) for c in CHANNELS}
        )


def run_with_history(
    sim: Simulation,
    n_steps: int,
    sample: bool = False,
    detector: Optional[SteadyStateDetector] = None,
    monitor_channel: str = "n_flow",
    stop_when_steady: bool = False,
) -> RunHistory:
    """Run ``sim`` while recording history; optionally stop at steady state.

    With a detector and ``stop_when_steady=True``, the loop ends as soon
    as the monitored channel settles -- the automated version of the
    paper's hand-chosen "1200 time steps to reach steady state".
    """
    if n_steps <= 0:
        raise ConfigurationError("n_steps must be positive")
    history = RunHistory()
    for _ in range(n_steps):
        diag = sim.step(sample=sample)
        history.record(diag)
        if detector is not None:
            value = getattr(diag, monitor_channel, None)
            if value is None:
                raise ConfigurationError(
                    f"diagnostics have no channel {monitor_channel!r}"
                )
            if detector.update(float(value)) and stop_when_steady:
                break
    return history
