"""Unit tests for the McDonald-Baganoff selection rule."""

import numpy as np
import pytest

from repro.core.cells import cell_populations
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.selection import (
    collision_probabilities,
    pair_relative_speed,
    select_collisions,
)
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream
from repro.physics.molecules import hard_sphere, maxwell_molecule
from repro.rng import random_permutation_table


def make_population(rng, n, cells, fs):
    pop = ParticleArrays.from_freestream(rng, n, fs, (0, 1), (0, 1))
    pop.cell = np.sort(np.asarray(cells)).astype(np.int64)
    return pop


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)


class TestRelativeSpeed:
    def test_hand_computed(self, rng, fs):
        pop = make_population(rng, 2, [0, 0], fs)
        pop.u[:] = [1.0, 0.0]
        pop.v[:] = [0.0, 0.0]
        pop.w[:] = [0.0, 1.0]
        pairs = even_odd_pairs(pop.cell)
        g = pair_relative_speed(pop, pairs)
        assert g[0] == pytest.approx(np.sqrt(2.0))


class TestProbabilities:
    def test_maxwell_density_scaling_eq8(self, rng, fs):
        # Double the cell population -> double the probability.
        pop = make_population(rng, 40, [0] * 20 + [1] * 20, fs)
        pop.cell = np.sort(np.concatenate((np.zeros(30), np.ones(10)))).astype(np.int64)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 2)
        prob, _ = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts
        )
        p_dense = prob[pairs.same_cell & (pop.cell[pairs.first] == 0)]
        p_sparse = prob[pairs.same_cell & (pop.cell[pairs.first] == 1)]
        assert p_dense[0] == pytest.approx(3.0 * p_sparse[0])

    def test_freestream_anchor(self, rng, fs):
        # At exactly freestream density the probability equals P_c,inf.
        n = int(fs.density)
        pop = make_population(rng, n, [0] * n, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        prob, _ = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts
        )
        assert prob[pairs.same_cell] == pytest.approx(fs.collision_probability)

    def test_near_continuum_all_ones(self, rng):
        fs0 = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=10.0)
        pop = make_population(np.random.default_rng(0), 20, [0] * 20, fs0)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        prob, _ = collision_probabilities(
            pop, pairs, fs0, maxwell_molecule(), counts
        )
        assert np.all(prob[pairs.same_cell] == 1.0)

    def test_probability_clamped_to_one(self, rng, fs):
        # Very dense cell: p would exceed 1; must clamp.
        pop = make_population(rng, 200, [0] * 200, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        prob, _ = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts
        )
        assert prob.max() <= 1.0

    def test_hard_sphere_speed_dependence_eq7(self, rng, fs):
        pop = make_population(rng, 4, [0, 0, 1, 1], fs)
        pop.u[:] = [0.5, -0.5, 0.1, -0.1]
        pop.v[:] = 0.0
        pop.w[:] = 0.0
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 2)
        prob, g = collision_probabilities(
            pop, pairs, fs, hard_sphere(), counts
        )
        # Same densities; probability ratio equals speed ratio (exp 1).
        assert prob[0] / prob[1] == pytest.approx(g[0] / g[1])

    def test_cut_cell_density_boost(self, rng, fs):
        # Same count in a half-volume cell -> double density -> double p
        # (counts kept small so neither probability clamps at 1).
        pop = make_population(rng, 12, [0] * 6 + [1] * 6, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 2)
        vf = np.array([1.0, 0.5])
        prob, _ = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts, volume_fractions=vf
        )
        full = prob[pairs.same_cell & (pop.cell[pairs.first] == 0)][0]
        cut = prob[pairs.same_cell & (pop.cell[pairs.first] == 1)][0]
        assert cut == pytest.approx(2.0 * full)

    def test_non_candidates_zero(self, rng, fs):
        pop = make_population(rng, 4, [0, 0, 0, 1], fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 2)
        prob, g = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), counts
        )
        assert prob[~pairs.same_cell].sum() == 0.0

    def test_empty_population(self, fs):
        pop = ParticleArrays.empty()
        pairs = even_odd_pairs(pop.cell)
        prob, g = collision_probabilities(
            pop, pairs, fs, maxwell_molecule(), np.zeros(1)
        )
        assert prob.size == 0


class TestSelect:
    def test_acceptance_rate_matches_probability(self, rng, fs):
        n = 20_000
        pop = make_population(rng, n, [0] * n, fs)
        # Force density to the freestream anchor so p = P_c,inf.
        counts = np.array([fs.density])
        pairs = even_odd_pairs(pop.cell)
        sel = select_collisions(
            pop, pairs, fs, maxwell_molecule(), counts, rng=rng
        )
        expected = fs.collision_probability
        rate = sel.n_collisions / pairs.n_pairs
        assert rate == pytest.approx(expected, rel=0.05)

    def test_explicit_draws(self, rng, fs):
        pop = make_population(rng, 10, [0] * 10, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        sel = select_collisions(
            pop, pairs, fs, maxwell_molecule(), counts,
            draws=np.zeros(pairs.n_pairs),
        )
        assert sel.accept.all()

    def test_draws_shape_checked(self, rng, fs):
        pop = make_population(rng, 10, [0] * 10, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        with pytest.raises(ConfigurationError):
            select_collisions(
                pop, pairs, fs, maxwell_molecule(), counts,
                draws=np.zeros(3),
            )

    def test_needs_rng_or_draws(self, rng, fs):
        pop = make_population(rng, 10, [0] * 10, fs)
        pairs = even_odd_pairs(pop.cell)
        counts = cell_populations(pop.cell, 1)
        with pytest.raises(ConfigurationError):
            select_collisions(pop, pairs, fs, maxwell_molecule(), counts)
