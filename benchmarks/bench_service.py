"""SERVICE -- orchestration overhead over a bare supervised run.

Times the same 400-step wedge job two ways:

* **bare**: a :class:`repro.resilience.supervisor.SupervisedRun`
  stepped in-process at the service's checkpoint cadence -- the floor
  the orchestrator is judged against;
* **service**: submitted to a one-worker
  :class:`repro.service.Orchestrator` and polled to ``DONE`` -- the
  same supervised run plus dispatch, fork, heartbeats, journaling and
  reaping.

The figure of merit is ``overhead_fraction``, the service's
submission-to-completion slowdown over the bare run; the service
milestone requires < 5%.  The second number is
``cached_resubmit_seconds``: a duplicate submission of the completed
(digest, seed) pair must come back from the result cache in
milliseconds, without stepping the engine.

Standalone: ``PYTHONPATH=src python benchmarks/bench_service.py``
writes ``BENCH_service.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

from repro.resilience import SupervisedRun
from repro.scenarios import get

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

STEPS = 400
CHUNK = 10  # heartbeat/checkpoint cadence, both modes

#: The CI smoke job's shape: the paper geometry at reduced density.
OVERRIDES = {
    "nx": 98, "ny": 64, "density": 12.0,
    "transient": 0, "average": STEPS,
}
SEED = 2026


def bare_seconds(steps: int) -> float:
    spec = get("wedge")
    overrides = {k: v for k, v in OVERRIDES.items()
                 if k not in ("transient", "average")}
    overrides["seed"] = SEED
    sim = spec.build_simulation(overrides)
    with tempfile.TemporaryDirectory(prefix="bench_service_bare_") as d:
        run = SupervisedRun(
            sim, d, checkpoint_every=CHUNK, audit_every=0,
            backoff_base=0.0,
        )
        t0 = time.perf_counter()
        with run:
            run.run_schedule([{"steps": steps, "sample": True}])
            run.sim.gather()
        return time.perf_counter() - t0


#: Runs in a fresh interpreter: the orchestrator must fork from a lean
#: server-like parent (as `repro serve` does), not from a bench process
#: whose heap is littered with earlier in-process runs -- fork-time
#: copy-on-write of a fat parent heap would bill the bench, not the
#: service.  Timing starts after imports.
_SERVICE_SCRIPT = """
import json, sys, time
from repro.service import DONE, Orchestrator, OrchestratorConfig

steps, data_dir = int(sys.argv[1]), sys.argv[2]
overrides = json.loads(sys.argv[3])
overrides["average"] = steps
orch = Orchestrator(
    data_dir,
    OrchestratorConfig(
        workers=1,
        heartbeat_every={chunk},
        # Dispatch and reap are event-driven; the tick only paces the
        # watchdog, so a coarse interval keeps the scheduler thread
        # off the worker's core.
        poll_interval=0.25,
        audit_every=0,
    ),
)
t0 = time.perf_counter()
out = orch.submit(scenario="wedge", seed={seed}, overrides=overrides)
while True:
    status = orch.status(out["job_id"])
    if status["state"] == DONE:
        break
    if status["terminal"]:
        raise SystemExit("job ended {{}}".format(status["state"]))
    time.sleep(0.02)
elapsed = time.perf_counter() - t0

t1 = time.perf_counter()
again = orch.submit(scenario="wedge", seed={seed}, overrides=overrides)
cached = time.perf_counter() - t1
assert again["cached"] is True, "resubmission missed the cache"
orch.shutdown()
print(json.dumps({{"elapsed": elapsed, "cached": cached}}))
"""


def service_seconds(steps: int) -> tuple:
    with tempfile.TemporaryDirectory(prefix="bench_service_svc_") as d:
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SERVICE_SCRIPT.format(chunk=CHUNK, seed=SEED),
                str(steps),
                d,
                json.dumps(OVERRIDES),
            ],
            capture_output=True,
            text=True,
        )
    if proc.returncode != 0:
        raise RuntimeError(f"service run failed:\n{proc.stderr}")
    out = json.loads(proc.stdout.splitlines()[-1])
    return out["elapsed"], out["cached"]


def run_benchmark(steps: int = STEPS, repeats: int = 3) -> dict:
    # Warm both paths once (imports, allocator) before timing, then
    # alternate bare/service pairs and keep each mode's best: the true
    # cost is the fastest observed run, everything above it is CPU
    # steal on the shared bench host.
    bare_warm = bare_seconds(10)
    bares, services, cached_hits = [], [], []
    for _ in range(repeats):
        bares.append(bare_seconds(steps))
        svc, hit = service_seconds(steps)
        services.append(svc)
        cached_hits.append(hit)
    bare, service, cached = min(bares), min(services), min(cached_hits)
    overhead = service / bare - 1.0
    return {
        "bench": "service",
        "steps": steps,
        "repeats": repeats,
        "overhead_fraction": overhead,
        "target_overhead_fraction": 0.05,
        "cached_resubmit_seconds": cached,
        "note": (
            "overhead_fraction is the submission-to-completion slowdown "
            "of a one-worker orchestrator over a bare SupervisedRun of "
            f"the same {steps}-step wedge job at checkpoint cadence "
            f"{CHUNK}, best of {repeats} alternating pairs (the "
            "1-core bench host sees double-digit CPU-steal noise); "
            "the service milestone requires < 5%.  400 steps is the "
            "scale of a real job (the paper schedule is 350+350).  "
            "Dispatch and reap are event-driven (wake pipe + process "
            "sentinels), leaving ~0.2 s of fixed per-job cost (fork, "
            "result write, client poll granularity) that this length "
            "amortizes; the 50-step CI smoke job (~1 s) drowns in "
            "host noise.  "
            "cached_resubmit_seconds is a duplicate submission served "
            "from the result cache without stepping the engine."
        ),
        "runs": [
            {"mode": "bare", "seconds": bare, "samples": bares,
             "warmup_seconds": bare_warm},
            {"mode": "service", "seconds": service,
             "samples": services,
             "cached_resubmit_seconds": cached},
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    result = run_benchmark(steps=args.steps, repeats=args.repeats)
    out = REPO_ROOT / "BENCH_service.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"bare      : {result['runs'][0]['seconds']:.2f} s\n"
        f"service   : {result['runs'][1]['seconds']:.2f} s\n"
        f"overhead  : {100 * result['overhead_fraction']:+.1f}% "
        f"(target < {100 * result['target_overhead_fraction']:.0f}%)\n"
        f"cached hit: {1000 * result['cached_resubmit_seconds']:.1f} ms"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
