"""FIG3 -- Figure 3: density surface in the stagnation region (continuum).

The figure "is useful for studying the approach that the simulation
takes to the theoretical rise in density behind the shock", and its
jagged wedge edge exists because the paper's plotting package could not
honour fractional cell volumes.  The bench regenerates the stagnation
window both with and without the volume correction (reproducing the
jagged-edge artifact quantitatively) and checks the rise approaches the
Rankine-Hugoniot plateau.
"""

import numpy as np

from repro.analysis.contour import save_field_npz
from repro.analysis.fields import stagnation_rise_profile, stagnation_window
from repro.analysis.report import ExperimentRecord
from repro.constants import PAPER_DENSITY_RATIO

from benchmarks.common import DOMAIN, OUT_DIR, WEDGE


def test_fig3_stagnation_surface(benchmark, continuum_solution, emit):
    sim = continuum_solution
    rho = sim.density_ratio_field()
    rho_jagged = sim.density_ratio_field(correct_volumes=False)

    def regenerate():
        win = stagnation_window(WEDGE, DOMAIN)
        return win.extract(rho), win.extract(rho_jagged)

    corrected, jagged = benchmark(regenerate)

    profile = stagnation_rise_profile(rho, WEDGE, offsets=(1.5, 3.0, 4.5))

    # Quantify the jagged edge: cut cells along the ramp read low
    # without the fractional-volume correction.
    vf = sim.volume_fractions
    cut = (vf > 0.05) & (vf < 0.95)
    edge_error = float(
        np.abs(rho_jagged[cut] - rho[cut]).mean() / max(rho[cut].mean(), 1e-9)
    )

    rec = ExperimentRecord("FIG3", "stagnation-region density surface")
    rec.add(
        "density at 4.5 cells off the ramp",
        PAPER_DENSITY_RATIO,
        float(profile[2]),
        rel_tol=0.15,
        note="approach to the theoretical rise behind the shock",
    )
    rec.add(
        "rise monotone toward plateau",
        None,
        float(profile[1] - profile[0]) if profile[0] < profile[1] else 0.0,
        note="density grows away from the cut-cell band",
    )
    rec.add(
        "jagged-edge relative error (uncorrected volumes)",
        None,
        edge_error,
        note="the artifact the paper's plotting package produced",
    )
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(
        str(OUT_DIR / "fig3_stagnation.npz"),
        corrected=corrected,
        jagged=jagged,
    )
    # The artifact must be real and material on cut cells.
    assert edge_error > 0.1
    # And the corrected field must rise to the R-H plateau.
    assert float(profile[-1]) > 0.8 * PAPER_DENSITY_RATIO
