"""The built-in scenario library.

Six registered scenarios: the paper's seed wedge plus five beyond it --
a collisionless flat plate, a blunt body (cylinder), a channel
constriction with sudden expansion (forward step), an unsteady
impulsive start (per Bogdanov et al.'s time-resolved DSMC runs), and
the z-periodic 3-D wedge prism.  Each carries an acceptance contract:
closed-form comparisons against :mod:`repro.physics.theory` where one
exists, committed golden observables (``scenarios/golden/*.json``)
otherwise.

Band coordinates in checks index the *validation-scale* field (the
grid after ``validation.overrides``); the golden regenerator and the
validator always run at that scale.
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec

#: The seed experiment: Mach 4 over the paper's 30-degree wedge.  The
#: geometry is grid-derived ("paper" placement: x_leading = nx/4.9,
#: base = nx/3.92) exactly as the legacy ``wedge`` CLI wired it, which
#: is what keeps ``repro run wedge`` bitwise identical to the pre-
#: registry ``repro wedge`` at every grid size.  Validation runs the
#: half-scale grid (the full 98x64 is the CLI default, not the CI
#: fixture).
WEDGE = register(
    ScenarioSpec(
        name="wedge",
        title="Mach 4 / 30 deg wedge (the paper's validation case)",
        description=(
            "Near-continuum Mach 4 flow over the 30-degree wedge: "
            "attached oblique shock, Prandtl-Meyer corner expansion, "
            "wake recompression (figures 1-6 of the paper)."
        ),
        geometry={"kind": "wedge", "placement": "paper", "angle_deg": 30.0},
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.0,
            "density": 12.0,
        },
        grid={"nx": 98, "ny": 64},
        schedule={"transient": 350, "average": 350},
        seed=1989,
        tags=("seed", "steady", "closed-form"),
        validation={
            "overrides": {
                "nx": 49,
                "ny": 32,
                "density": 10.0,
                "transient": 180,
                "average": 200,
            },
            "checks": [
                {
                    "name": "shock_angle_deg",
                    "kind": "shock_angle",
                    "expect": "theory:shock_angle",
                    "rel_tol": 0.08,
                },
                {
                    "name": "plateau_density_ratio",
                    "kind": "plateau_density_ratio",
                    "expect": "theory:density_ratio",
                    "rel_tol": 0.12,
                },
                {
                    # The plunger refill cadence leaves the inlet band
                    # a few percent under freestream (measured ~0.95);
                    # the check guards against gross inflow breakage,
                    # not that bias.
                    "name": "upstream_unity",
                    "kind": "band_mean",
                    "x": [2, 8],
                    "y": [2, 28],
                    "expect": "const",
                    "value": 1.0,
                    "abs_tol": 0.10,
                },
            ],
        },
    )
)

#: The free-molecular bracket: an inclined flat plate with collisions
#: switched off (lambda >> domain).  The exact kinetic-theory pressure
#: on a specular plate validates motion + boundary machinery without
#: the collision operator (the opposite limit from the seed wedge).
FLAT_PLATE = register(
    ScenarioSpec(
        name="flat_plate",
        title="Free-molecular inclined flat plate (collisionless)",
        description=(
            "Kn -> infinity flow over the 30-degree inclined plate: no "
            "shock forms, the region over the ramp is a two-stream "
            "overlap, and the exact collisionless specular-plate "
            "pressure formula pins the surface load."
        ),
        geometry={
            "kind": "wedge",
            "x_leading": 10.0,
            "base": 12.5,
            "angle_deg": 30.0,
        },
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 1.0e9,
            "density": 14.0,
        },
        grid={"nx": 49, "ny": 32},
        schedule={"transient": 180, "average": 220},
        seed=8,
        tags=("steady", "free-molecular", "closed-form"),
        validation={
            "checks": [
                {
                    "name": "ramp_pressure_ratio",
                    "kind": "ramp_pressure_ratio",
                    "expect": "theory:free_molecular_pressure",
                    "rel_tol": 0.10,
                },
                {
                    "name": "upstream_unity",
                    "kind": "band_mean",
                    "x": [2, 8],
                    "y": [2, 28],
                    "expect": "const",
                    "value": 1.0,
                    "abs_tol": 0.08,
                },
                {
                    "name": "two_stream_overlap",
                    "kind": "band_mean",
                    "x": [14, 22],
                    "y": [6, 12],
                    "expect": "const",
                    "value": 2.0,
                    "abs_tol": 0.5,
                },
            ],
        },
    )
)

#: Blunt body: Mach 4 past a circular cylinder.  The shock detaches
#: into a bow shock -- the regime the theta-beta-M metrology cannot
#: reach -- so validation is against committed golden observables
#: (stagnation compression, wake expansion, upstream cleanliness).
CYLINDER = register(
    ScenarioSpec(
        name="cylinder",
        title="Mach 4 blunt body (cylinder, detached bow shock)",
        description=(
            "Rarefied Mach 4 flow past a circular cylinder at mid "
            "height: detached bow shock ahead of the body, stagnation "
            "compression, low-density expansion wake behind."
        ),
        geometry={"kind": "cylinder", "cx": 20.0, "cy": 16.0, "radius": 6.0},
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.5,
            "density": 10.0,
        },
        grid={"nx": 60, "ny": 32},
        schedule={"transient": 200, "average": 200},
        seed=11,
        tags=("steady", "blunt-body", "golden"),
        validation={
            "golden": "cylinder.json",
            "checks": [
                {
                    "name": "stagnation_band",
                    "kind": "band_mean",
                    "x": [11, 14],
                    "y": [13, 19],
                    "expect": "golden",
                },
                {
                    "name": "wake_band",
                    "kind": "band_mean",
                    "x": [30, 44],
                    "y": [12, 20],
                    "expect": "golden",
                },
                {
                    "name": "peak_compression",
                    "kind": "field_max",
                    "expect": "golden",
                },
                {
                    "name": "upstream_unity",
                    "kind": "band_mean",
                    "x": [2, 8],
                    "y": [4, 28],
                    "expect": "const",
                    "value": 1.0,
                    "abs_tol": 0.10,
                },
            ],
        },
    )
)

#: Channel constriction + sudden expansion: a forward-facing step on
#: the tunnel floor.  The cross-section contracts over the block (a
#: detached shock stands ahead of the vertical face) and re-expands off
#: the top-back corner into a low-density wake -- the channel/nozzle-
#: expansion flow of the scenario roadmap.
CHANNEL = register(
    ScenarioSpec(
        name="channel",
        title="Channel constriction with sudden expansion (forward step)",
        description=(
            "Mach 4 flow into a forward-facing step: compression ahead "
            "of the face, accelerated flow through the constriction "
            "above the block, expansion into the wake behind it."
        ),
        geometry={"kind": "step", "x_leading": 18.0, "height": 10.0,
                  "length": 14.0},
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.5,
            "density": 10.0,
        },
        grid={"nx": 64, "ny": 32},
        schedule={"transient": 200, "average": 200},
        seed=23,
        tags=("steady", "channel", "golden"),
        validation={
            "golden": "channel.json",
            "checks": [
                {
                    "name": "compression_band",
                    "kind": "band_mean",
                    "x": [12, 17],
                    "y": [0, 10],
                    "expect": "golden",
                },
                {
                    "name": "throat_band",
                    "kind": "band_mean",
                    "x": [20, 30],
                    "y": [14, 28],
                    "expect": "golden",
                },
                {
                    "name": "wake_band",
                    "kind": "band_mean",
                    "x": [36, 52],
                    "y": [0, 10],
                    "expect": "golden",
                },
                {
                    "name": "upstream_unity",
                    "kind": "band_mean",
                    "x": [2, 6],
                    "y": [2, 30],
                    "expect": "const",
                    "value": 1.0,
                    "abs_tol": 0.10,
                },
            ],
        },
    )
)

#: Unsteady impulsive start (per Bogdanov et al.): the freestream
#: switches on at t = 0 over the quickstart wedge and the run samples
#: consecutive time windows, each a fresh average.  The golden
#: observables pin the shock layer *establishing itself* (early windows
#: below the steady compression, late windows at it) and the wake
#: draining from freestream toward its steady deficit.
IMPULSIVE_START = register(
    ScenarioSpec(
        name="impulsive_start",
        title="Impulsive start over the wedge (unsteady windows)",
        description=(
            "Time-resolved startup: uniform freestream at t = 0, then "
            "four consecutive 45-step sampling windows watch the "
            "oblique shock and corner expansion establish themselves."
        ),
        geometry={
            "kind": "wedge",
            "x_leading": 10.0,
            "base": 12.5,
            "angle_deg": 30.0,
        },
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.0,
            "density": 12.0,
        },
        grid={"nx": 49, "ny": 32},
        schedule={"transient": 60, "average": 120},
        seed=31,
        unsteady={"windows": 4, "window_steps": 45},
        tags=("unsteady", "golden"),
        validation={
            "golden": "impulsive_start.json",
            "checks": [
                {
                    "name": "layer_window0",
                    "kind": "band_mean",
                    "x": [10, 22],
                    "y": [6, 14],
                    "window": 0,
                    "expect": "golden",
                },
                {
                    "name": "layer_window3",
                    "kind": "band_mean",
                    "x": [10, 22],
                    "y": [6, 14],
                    "window": 3,
                    "expect": "golden",
                },
                {
                    "name": "wake_window0",
                    "kind": "band_mean",
                    "x": [30, 45],
                    "y": [0, 8],
                    "window": 0,
                    "expect": "golden",
                },
                {
                    "name": "wake_window3",
                    "kind": "band_mean",
                    "x": [30, 45],
                    "y": [0, 8],
                    "window": 3,
                    "expect": "golden",
                },
            ],
        },
    )
)

#: The z-periodic 3-D slab (Future Work driver): the wedge extruded to
#: a prism.  Span-collapsing the 3-D field must reproduce the 2-D
#: oblique-shock solution, so the closed-form checks apply -- with
#: wider tolerances, as the per-cell population is thinner in 3-D.
WEDGE3D = register(
    ScenarioSpec(
        name="wedge3d",
        title="3-D wedge prism (z-periodic slab)",
        description=(
            "Mach 4 over the wedge extruded spanwise with periodic z: "
            "the span-collapsed density field reproduces the 2-D "
            "oblique shock (the built-in 3-D validation)."
        ),
        geometry={
            "kind": "wedge",
            "x_leading": 8.0,
            "base": 10.0,
            "angle_deg": 30.0,
        },
        freestream={
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.0,
            "density": 3.0,
        },
        grid={"nx": 40, "ny": 26, "nz": 4},
        schedule={"transient": 150, "average": 150},
        seed=9,
        tags=("steady", "3d", "closed-form"),
        validation={
            "checks": [
                {
                    "name": "shock_angle_deg",
                    "kind": "shock_angle",
                    "expect": "theory:shock_angle",
                    "rel_tol": 0.12,
                },
                {
                    # ~3 particles/cell under-resolves the thin shock
                    # layer (measured 3.1-3.4 vs 3.7 across seeds); the
                    # 2-D/3-D consistency test pins the tighter bound.
                    "name": "plateau_density_ratio",
                    "kind": "plateau_density_ratio",
                    "expect": "theory:density_ratio",
                    "rel_tol": 0.22,
                },
            ],
        },
    )
)
