"""Session fixtures for the figure/table benchmarks.

The expensive part of every figure bench is the converged wind-tunnel
solution; it is computed once per session and shared.  Each bench prints
an :class:`repro.analysis.report.ExperimentRecord` (paper vs measured)
and appends it to ``benchmarks/out/records.md``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import MARKDOWN_HEADER, ExperimentRecord

from benchmarks.common import OUT_DIR, run_solution


@pytest.fixture(scope="session")
def continuum_solution():
    """Figures 1-3: near-continuum (lambda = 0) Mach 4 wedge solution."""
    return run_solution(lambda_mfp=0.0)


@pytest.fixture(scope="session")
def rarefied_solution():
    """Figures 4-6: rarefied (lambda = 0.5, Kn = 0.02) solution."""
    return run_solution(lambda_mfp=0.5)


@pytest.fixture(scope="session")
def record_sink():
    """Collects experiment records and writes them at session end."""
    records: list = []
    yield records
    if records:
        OUT_DIR.mkdir(exist_ok=True)
        lines = [MARKDOWN_HEADER]
        lines += [r.to_markdown_rows() for r in records]
        (OUT_DIR / "records.md").write_text("\n".join(lines) + "\n")


@pytest.fixture
def emit(record_sink):
    """Print a record and queue it for the session markdown dump."""

    def _emit(record: ExperimentRecord) -> ExperimentRecord:
        print("\n" + record.to_text())
        record_sink.append(record)
        return record

    return _emit
