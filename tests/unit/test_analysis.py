"""Unit tests for shock metrology, field windows, contours and reports."""

import math

import numpy as np
import pytest

from repro.analysis.contour import level_crossings_y, render_ascii, save_field_npz
from repro.analysis.fields import (
    SurfaceSummary,
    centerline_profile,
    stagnation_rise_profile,
    stagnation_window,
    wake_window,
)
from repro.analysis.report import (
    ExperimentRecord,
    Metric,
    records_to_markdown,
)
from repro.analysis.shock import (
    expansion_density_drop,
    fit_shock_angle,
    post_shock_plateau,
    shock_crossings,
    shock_thickness,
    wake_floor_ridge,
    wake_recompression_factor,
)
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge


def synthetic_shock_field(
    domain: Domain,
    wedge: Wedge,
    beta_deg: float = 45.0,
    ratio: float = 3.7,
    width: float = 1.5,
    noise: float = 0.0,
    rng=None,
) -> np.ndarray:
    """An analytic oblique-shock density field for testing the metrology.

    Density ``ratio`` below the shock line (above the wedge surface),
    1 above, smoothed over ``width`` cells via a tanh profile.
    """
    slope = math.tan(math.radians(beta_deg))
    x = np.arange(domain.nx) + 0.5
    y = np.arange(domain.ny) + 0.5
    xx, yy = np.meshgrid(x, y, indexing="ij")
    y_shock = (xx - wedge.x_leading) * slope
    signed = yy - y_shock
    rho = 1.0 + 0.5 * (ratio - 1.0) * (1.0 - np.tanh(signed / width))
    rho[xx < wedge.x_leading] = 1.0
    rho[wedge.inside(xx, yy)] = 0.0
    if noise and rng is not None:
        rho += rng.normal(0.0, noise, size=rho.shape)
    return rho


@pytest.fixture
def geometry():
    return Domain(60, 40), Wedge(x_leading=15, base=20, angle_deg=30)


class TestShockFit:
    def test_recovers_known_angle(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w, beta_deg=45.0)
        fit = fit_shock_angle(rho, w)
        assert fit.angle_deg == pytest.approx(45.0, abs=1.0)

    def test_recovers_other_angles(self, geometry):
        # Angles chosen to keep the shock layer measurably above the
        # 30-degree ramp surface.
        d, w = geometry
        for beta in (40.0, 55.0):
            rho = synthetic_shock_field(d, w, beta_deg=beta)
            assert fit_shock_angle(rho, w).angle_deg == pytest.approx(
                beta, abs=1.5
            )

    def test_robust_to_noise(self, geometry, rng):
        d, w = geometry
        rho = synthetic_shock_field(d, w, noise=0.05, rng=rng)
        assert fit_shock_angle(rho, w).angle_deg == pytest.approx(45.0, abs=2.0)

    def test_crossings_have_margin(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        xs, ys = shock_crossings(rho, w, x_margin=3.0)
        assert xs.min() >= w.x_leading + 3.0
        assert xs.max() <= w.x_trailing - 3.0 + 1.0

    def test_unconverged_field_raises(self, geometry):
        d, w = geometry
        rho = np.ones(d.shape)
        with pytest.raises(ConfigurationError):
            fit_shock_angle(rho, w)


class TestPlateauThickness:
    def test_plateau_recovered(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w, ratio=3.7)
        assert post_shock_plateau(rho, w) == pytest.approx(3.7, rel=0.05)

    def test_thickness_tracks_width(self, geometry):
        d, w = geometry
        thin = shock_thickness(synthetic_shock_field(d, w, width=0.8), w)
        thick = shock_thickness(synthetic_shock_field(d, w, width=2.0), w)
        assert thick > thin

    def test_thickness_positive_and_reasonable(self, geometry):
        d, w = geometry
        t = shock_thickness(synthetic_shock_field(d, w, width=1.2), w)
        assert 0.5 < t < 8.0


class TestWakeAndExpansion:
    def test_wake_metric_distinguishes_recompression(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        # Paint a wake trough + recompression peak behind the wedge.
        i0 = int(w.x_trailing) + 4
        rho[i0 : i0 + 4, 0:3] = 0.3
        rho[i0 + 6 : i0 + 10, 0:3] = 1.5
        strong = wake_recompression_factor(rho, w, d)
        rho_flat = synthetic_shock_field(d, w)
        rho_flat[int(w.x_trailing) + 3 :, 0:3] = 0.5
        weak = wake_recompression_factor(rho_flat, w, d)
        assert strong > 3.0
        assert weak == pytest.approx(1.0, abs=0.2)

    def test_floor_ridge_detects_attached_layer(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        i0 = int(w.x_trailing)
        # Floor-attached recompression layer in the far wake.
        rho[i0:, :] = 0.3
        rho[i0:, 0:3] = 0.6
        attached = wake_floor_ridge(rho, w, d)
        # Smeared wake: uniform with height.
        rho[i0:, :] = 0.3
        smeared = wake_floor_ridge(rho, w, d)
        assert attached > 1.5
        assert smeared == pytest.approx(1.0)

    def test_floor_ridge_needs_room(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        with pytest.raises(ConfigurationError):
            wake_floor_ridge(rho, w, d, x_offset=100.0)

    def test_expansion_drop_below_one(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        cx, cy = w.corner
        rho[int(cx) + 1 : int(cx) + 5, int(cy) - 4 : int(cy) - 1] = 0.4
        drop = expansion_density_drop(rho, w, d)
        assert drop < 0.5


class TestWindows:
    def test_stagnation_window_bounds(self, geometry):
        d, w = geometry
        win = stagnation_window(w, d)
        assert win.i_lo < w.x_leading
        assert win.j_lo == 0
        f = win.extract(np.ones(d.shape))
        assert f.shape == (win.i_hi - win.i_lo, win.j_hi)

    def test_wake_window_behind_wedge(self, geometry):
        d, w = geometry
        win = wake_window(w, d)
        assert win.i_lo >= w.x_trailing
        assert win.i_hi == d.nx

    def test_surface_summary(self, rng):
        f = rng.random((10, 10))
        s = SurfaceSummary.of(f)
        assert s.minimum <= s.mean <= s.maximum
        assert s.roughness > 0

    def test_surface_summary_empty(self):
        with pytest.raises(ConfigurationError):
            SurfaceSummary.of(np.zeros((0, 3)))

    def test_stagnation_rise_profile(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        prof = stagnation_rise_profile(rho, w)
        assert prof.shape == (4,)
        assert np.all(prof > 1.0)  # inside the shock layer

    def test_centerline_profile(self, geometry):
        d, _ = geometry
        rho = np.ones(d.shape)
        assert centerline_profile(rho, 5).shape == (d.nx,)
        with pytest.raises(ConfigurationError):
            centerline_profile(rho, d.ny)


class TestContour:
    def test_render_shapes(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        text = render_ascii(rho)
        lines = text.split("\n")
        assert len(lines) == d.ny
        assert all(len(line) == d.nx for line in lines)

    def test_render_decimates_wide_fields(self):
        f = np.ones((300, 5))
        lines = render_ascii(f, max_width=100).split("\n")
        assert len(lines[0]) <= 100

    def test_levels_validation(self):
        with pytest.raises(ConfigurationError):
            render_ascii(np.ones((4, 4)), levels=[1.0, 2.0])

    def test_level_crossings(self, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        ys = level_crossings_y(rho, 2.0)
        # Columns over the ramp cross; upstream freestream columns don't.
        assert np.isnan(ys[2])
        assert not np.isnan(ys[int(w.x_leading) + 8])

    def test_save_npz_roundtrip(self, tmp_path, geometry):
        d, w = geometry
        rho = synthetic_shock_field(d, w)
        path = tmp_path / "f.npz"
        save_field_npz(str(path), rho=rho)
        loaded = np.load(path)["rho"]
        assert np.allclose(loaded, rho)

    def test_save_npz_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_field_npz(str(tmp_path / "x.npz"))


class TestReport:
    def test_metric_agreement(self):
        assert Metric("x", 10.0, 10.5, rel_tol=0.1).agrees()
        assert not Metric("x", 10.0, 12.0, rel_tol=0.1).agrees()
        assert Metric("x", None, 1.0).agrees() is None
        assert Metric("x", 0.0, 0.05, rel_tol=0.1).agrees()

    def test_record_all_agree(self):
        rec = ExperimentRecord("FIG1", "test")
        rec.add("a", 1.0, 1.01)
        rec.add("b", None, 5.0)
        assert rec.all_agree()
        rec.add("c", 1.0, 2.0)
        assert not rec.all_agree()

    def test_text_rendering(self):
        rec = ExperimentRecord("FIG1", "density contours")
        rec.add("shock angle (deg)", 45.0, 45.6)
        text = rec.to_text()
        assert "FIG1" in text and "45.6" in text and "OK" in text

    def test_markdown_table(self):
        rec = ExperimentRecord("TAB1", "phases")
        rec.add("sort fraction", 0.27, 0.28)
        md = records_to_markdown([rec])
        assert md.startswith("| Exp |")
        assert "TAB1" in md

    def test_markdown_requires_records(self):
        with pytest.raises(ConfigurationError):
            records_to_markdown([])
