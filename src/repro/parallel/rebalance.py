"""Cadenced adaptive load balancing for the sharded backend.

The paper's CM-2 re-homes particles every sort, so physical processors
stay evenly loaded no matter where the shock piles the flow.  The
process-parallel port froze the decomposition as static equal-width
x-slabs -- and telemetry has been *measuring* the resulting
max-over-mean shard imbalance every run without anyone acting on it.
This module closes that measure -> decide -> act loop:

* **measure** -- per-shard particle counts (``shared["n_parts"]``) and
  the per-column occupancy histogram, both deterministic functions of
  the simulation state (never wall-clock timings, which would break
  bitwise reproducibility);
* **decide** -- at a fixed step cadence, when the measured imbalance
  exceeds a threshold, :meth:`repro.parallel.shard.ShardSlabs.rebalance`
  plans new integer slab edges (load-quantile columns under a
  max-columns-moved damping clamp);
* **act** -- the backend executes the repartition as a *widened
  exchange epoch* through the existing migration channels: each worker
  ships the rows in its ceded columns to the adjacent neighbour,
  refreshes its slab bounds and guard bands, and publishes the new
  layout (see ``ShardWorker.rebalance_a``/``rebalance_b``).

Binder et al. (arXiv:1811.04742) evaluate exactly this cadenced
rebalance-from-measured-load scheme for hypersonic DSMC; the
within-slab kernels stay cell-blocked and untouched (Bogdanov et al.,
cs/9902024) -- only the slab boundaries move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.shard import DEFAULT_MAX_SHIFT, ShardSlabs

#: Default decision threshold: rebalance only when the measured
#: max-over-mean shard load exceeds this.  Wall-clock efficiency is
#: ~1/imbalance, so 1.02 means "act on anything worse than a 2% loss"
#: while leaving a perfectly balanced flow untouched (no-op events
#: consume no RNG and move no particles, but skipping them keeps the
#: exchange epoch off the steady-state step entirely).
DEFAULT_THRESHOLD = 1.02


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs of the cadenced rebalancer.

    Parameters
    ----------
    every:
        Step cadence: the decision rule runs when
        ``step_count % every == 0``.  Must be positive -- a disabled
        rebalancer is represented by ``None``, not by a config.
    threshold:
        Minimum measured max-over-mean imbalance that triggers a
        repartition (see :data:`DEFAULT_THRESHOLD`).
    max_shift:
        Damping clamp: maximum columns any slab edge moves per event
        (:data:`repro.parallel.shard.DEFAULT_MAX_SHIFT`).
    """

    every: int
    threshold: float = DEFAULT_THRESHOLD
    max_shift: int = DEFAULT_MAX_SHIFT

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigurationError("rebalance cadence must be >= 1 step")
        if self.threshold < 1.0:
            raise ConfigurationError("rebalance threshold must be >= 1.0")

    @classmethod
    def parse(cls, spec: Union[str, None]) -> Optional["RebalanceConfig"]:
        """Build a config from a CLI spec: ``off`` or ``every:N``.

        ``None``, ``""`` and ``"off"`` all disable the rebalancer
        (return ``None``); ``"every:N"`` enables it at an N-step
        cadence with the default threshold and damping clamp.
        """
        if spec is None or spec == "" or spec == "off":
            return None
        if spec.startswith("every:"):
            try:
                every = int(spec[len("every:"):])
            except ValueError:
                raise ConfigurationError(
                    f"bad rebalance cadence in {spec!r}: expected every:N"
                ) from None
            return cls(every=every)
        raise ConfigurationError(
            f"bad rebalance spec {spec!r}: expected 'off' or 'every:N'"
        )


def planned_transfers(
    old: ShardSlabs,
    new: ShardSlabs,
    column_counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Migration rows each interior edge move will ship, per direction.

    Returns ``(to_left, to_right)``, each of length ``n_workers + 1``
    and indexed by edge: edge ``k`` moving *right* cedes columns
    ``[old_k, new_k)`` from shard ``k`` to shard ``k-1`` (rows counted
    in ``to_left[k]``); moving *left* cedes ``[new_k, old_k)`` from
    shard ``k-1`` to shard ``k`` (``to_right[k]``).  After a completed
    step every particle sits inside its own slab, so the global
    per-column histogram attributes each ceded row to the ceding shard
    exactly.
    """
    cum = np.concatenate(([0], np.cumsum(np.asarray(column_counts,
                                                    dtype=np.int64))))
    W = old.n_workers
    to_left = np.zeros(W + 1, dtype=np.int64)
    to_right = np.zeros(W + 1, dtype=np.int64)
    for k in range(1, W):
        o, n = old.edges[k], new.edges[k]
        if n > o:
            to_left[k] = cum[n] - cum[o]
        elif n < o:
            to_right[k] = cum[o] - cum[n]
    return to_left, to_right


def validate_plan(
    old: ShardSlabs,
    new: ShardSlabs,
    column_counts: np.ndarray,
    channel_capacity: int,
    shard_capacities: np.ndarray,
) -> Optional[str]:
    """Re-validate exchange and buffer capacity for a planned move.

    The migration channels and the per-shard ping-pong column buffers
    were sized at bind time for the *uniform* split; a repartition must
    fit the rows it ships into the channels and the post-rebalance
    populations into the (narrowest) destination buffers.  Returns a
    human-readable reason to skip the event, or ``None`` when the plan
    is executable.  Deterministic, so every worker-count-W run skips or
    executes identically.
    """
    to_left, to_right = planned_transfers(old, new, column_counts)
    worst = int(max(to_left.max(), to_right.max()))
    if worst > channel_capacity:
        return (
            f"planned repartition ships {worst} rows through a channel of "
            f"capacity {channel_capacity}; raise ShardedBackend("
            "channel_capacity=...) or lower max_shift"
        )
    predicted = new.slab_sums(np.asarray(column_counts, dtype=np.float64),
                              new.edges)
    caps = np.asarray(shard_capacities, dtype=np.int64)
    if (predicted > caps).any():
        k = int(np.argmax(predicted - caps))
        return (
            f"shard {k} would hold {int(predicted[k])} particles, over its "
            f"fixed buffer capacity {int(caps[k])}; rebuild with a larger "
            "capacity_factor"
        )
    return None
