"""CM-2 machine description and virtual-processor geometry.

The Connection Machine model 2 is a SIMD array of bit-serial processors
(16 per chip, chips wired as a boolean hypercube).  Two facts about the
machine shape everything in the paper:

* **Virtual processors.**  The system software time-slices each physical
  processor over ``VPR`` virtual processors.  The paper maps one
  *particle* per virtual processor, so problem size is limited only by
  memory.  All per-element work therefore costs ``O(VPR)`` physical
  cycles, and *communication between VPs on the same physical processor
  is memory traffic, not router traffic* -- the source of the big
  performance step between VPR 1 and 2 in Figure 7.

* **Bit-serial ALUs.**  A b-bit integer operation costs O(b) cycles,
  which is why the paper chose a 32-bit fixed-point representation over
  floating point.

The emulation keeps these structural facts (block VP mapping, per-bit
costs, on-chip vs off-chip traffic) and calibrates the remaining
constants against the paper's reported timings (see
:mod:`repro.cm.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, MachineError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CM2:
    """Static description of a Connection Machine model 2 configuration.

    Parameters
    ----------
    n_processors:
        Number of physical processors (the paper uses 32768; a full
        machine has 65536).  Must be a power of two (hypercube).
    memory_bits:
        Bits of memory per physical processor.  The CM-2 shipped with
        64 Kbit/processor; the paper notes 25% was reserved for
        back-compatibility by the system software of the day.
    backcompat_reserved:
        Fraction of memory unavailable to the application (0.25 in the
        paper; C* 5.0 was expected to reclaim it and allow 1M-particle
        runs).
    clock_hz:
        Nominal processor clock (7 MHz for the CM-2); only used for
        sanity-scaling of the timing model, which is calibrated against
        the paper's end-to-end numbers anyway.
    """

    n_processors: int = 32 * 1024
    memory_bits: int = 64 * 1024
    backcompat_reserved: float = 0.25
    clock_hz: float = 7.0e6

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n_processors):
            raise ConfigurationError(
                f"n_processors must be a power of two, got {self.n_processors}"
            )
        if not 0.0 <= self.backcompat_reserved < 1.0:
            raise ConfigurationError(
                "backcompat_reserved must be in [0, 1), got "
                f"{self.backcompat_reserved}"
            )
        if self.memory_bits <= 0:
            raise ConfigurationError("memory_bits must be positive")

    @property
    def usable_memory_bits(self) -> int:
        """Memory bits per processor after the back-compat reservation."""
        return int(self.memory_bits * (1.0 - self.backcompat_reserved))

    @property
    def hypercube_dimension(self) -> int:
        """log2 of the physical processor count."""
        return int(self.n_processors).bit_length() - 1

    def max_virtual_processors(self, bits_per_vp: int) -> int:
        """Largest VP set whose state fits in usable memory.

        ``bits_per_vp`` is the per-particle state footprint (the paper's
        computational state: 7 fixed-point words + cell index +
        permutation vector, plus scratch).
        """
        if bits_per_vp <= 0:
            raise ConfigurationError("bits_per_vp must be positive")
        per_proc = self.usable_memory_bits // bits_per_vp
        return per_proc * self.n_processors

    def geometry(self, n_virtual: int) -> "VPGeometry":
        """Create a VP geometry of ``n_virtual`` virtual processors."""
        return VPGeometry(machine=self, n_virtual=n_virtual)


@dataclass(frozen=True)
class VPGeometry:
    """A virtual-processor set laid out block-wise over the machine.

    VP ``v`` lives on physical processor ``v // vpr`` ("send-order" /
    block layout, the CM system software default for 1D VP sets).  The
    block layout is what makes even/odd neighbour pairs co-resident for
    VPR >= 2 -- the property the paper's collision routine exploits.

    ``n_virtual`` need not be a multiple of ``n_processors``; the VP
    ratio is rounded up, as the real system software did (idle VP slots
    on the last processors still cost their time slice).
    """

    machine: CM2
    n_virtual: int

    def __post_init__(self) -> None:
        if self.n_virtual <= 0:
            raise ConfigurationError(
                f"n_virtual must be positive, got {self.n_virtual}"
            )

    @property
    def vpr(self) -> int:
        """Virtual processor ratio (rounded up to at least 1)."""
        return -(-self.n_virtual // self.machine.n_processors)

    def physical_processor(self, vp: np.ndarray) -> np.ndarray:
        """Map VP indices to their physical processor (block layout)."""
        vp = np.asarray(vp)
        if vp.size and (vp.min() < 0 or vp.max() >= self.n_virtual):
            raise MachineError(
                f"VP index out of range [0, {self.n_virtual})"
            )
        return vp // self.vpr

    def offchip_fraction(
        self, src_vp: np.ndarray, dst_vp: np.ndarray
    ) -> float:
        """Fraction of a send pattern that crosses physical processors.

        This is the quantity the paper calls "general communication":
        router traffic that leaves the chip.  It is *measured from the
        actual permutation* rather than assumed, which is what lets the
        emulation reproduce the shape of Figure 7.
        """
        src_vp = np.asarray(src_vp)
        dst_vp = np.asarray(dst_vp)
        if src_vp.shape != dst_vp.shape:
            raise MachineError("src/dst VP arrays must have equal shape")
        if src_vp.size == 0:
            return 0.0
        off = self.physical_processor(src_vp) != self.physical_processor(dst_vp)
        return float(np.count_nonzero(off)) / src_vp.size

    def pair_offchip_fraction(self) -> float:
        """Off-chip fraction for the even/odd neighbour exchange.

        VP ``2i`` exchanges with VP ``2i+1``.  In block layout this pair
        straddles a processor boundary only when the VPR is 1 (every
        pair) or odd (pairs at block seams); for even VPR >= 2 the
        exchange is entirely on-chip.  This single number explains the
        Figure 7 drop from VPR 1 to 2.
        """
        n_pairs = self.n_virtual // 2
        if n_pairs == 0:
            return 0.0
        even = np.arange(n_pairs, dtype=np.int64) * 2
        return self.offchip_fraction(even, even + 1)
