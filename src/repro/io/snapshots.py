"""Exact checkpoint/restore of a running simulation.

A snapshot captures everything needed to continue a run bit-for-bit:

* the particle population (physical + computational state),
* the reservoir population,
* the plunger phase,
* the RNG state (NumPy bit-generator state),
* the sampler's accumulated moments and step counters,
* the configuration (so a restore can verify compatibility).

Snapshots are single ``.npz`` files; the configuration is stored as a
small JSON blob inside the archive.  ``load_simulation`` reconstructs a
:class:`~repro.core.simulation.Simulation` whose subsequent steps are
identical to the original run's (tested).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel

#: Snapshot format version; bumped on layout changes.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def _config_to_json(config: SimulationConfig) -> str:
    blob = {
        "domain": {"nx": config.domain.nx, "ny": config.domain.ny},
        "freestream": {
            "mach": config.freestream.mach,
            "c_mp": config.freestream.c_mp,
            "lambda_mfp": config.freestream.lambda_mfp,
            "density": config.freestream.density,
            "gamma": config.freestream.gamma,
        },
        "wedge": None
        if config.wedge is None
        else {
            "x_leading": config.wedge.x_leading,
            "base": config.wedge.base,
            "angle_deg": config.wedge.angle_deg,
        },
        "model": {
            "alpha": config.model.alpha
            if np.isfinite(config.model.alpha)
            else "inf",
            "rotational_dof": config.model.rotational_dof,
            "mass": config.model.mass,
            "name": config.model.name,
        },
        "sort_scale": config.sort_scale,
        "plunger_trigger": config.plunger_trigger,
        "reservoir_fraction": config.reservoir_fraction,
        "reservoir_mix_rounds": config.reservoir_mix_rounds,
    }
    return json.dumps(blob)


def _config_from_json(blob: str) -> SimulationConfig:
    d = json.loads(blob)
    alpha = d["model"]["alpha"]
    model = MolecularModel(
        alpha=float("inf") if alpha == "inf" else float(alpha),
        rotational_dof=int(d["model"]["rotational_dof"]),
        mass=float(d["model"]["mass"]),
        name=d["model"]["name"],
    )
    return SimulationConfig(
        domain=Domain(**d["domain"]),
        freestream=Freestream(**d["freestream"]),
        wedge=None if d["wedge"] is None else Wedge(**d["wedge"]),
        model=model,
        sort_scale=int(d["sort_scale"]),
        plunger_trigger=float(d["plunger_trigger"]),
        reservoir_fraction=float(d["reservoir_fraction"]),
        reservoir_mix_rounds=int(d["reservoir_mix_rounds"]),
        seed=0,  # the live RNG state below supersedes the seed
    )


def _pack_particles(prefix: str, parts: ParticleArrays) -> dict:
    return {
        f"{prefix}_x": parts.x,
        f"{prefix}_y": parts.y,
        f"{prefix}_u": parts.u,
        f"{prefix}_v": parts.v,
        f"{prefix}_w": parts.w,
        f"{prefix}_rot": parts.rot,
        f"{prefix}_perm": parts.perm,
        f"{prefix}_cell": parts.cell,
    }


def _unpack_particles(prefix: str, data) -> ParticleArrays:
    return ParticleArrays(
        x=data[f"{prefix}_x"].copy(),
        y=data[f"{prefix}_y"].copy(),
        u=data[f"{prefix}_u"].copy(),
        v=data[f"{prefix}_v"].copy(),
        w=data[f"{prefix}_w"].copy(),
        rot=data[f"{prefix}_rot"].copy(),
        perm=data[f"{prefix}_perm"].copy(),
        cell=data[f"{prefix}_cell"].copy(),
    )


def save_simulation(sim: Simulation, path: PathLike) -> None:
    """Write an exact checkpoint of ``sim`` to ``path`` (.npz)."""
    rng_state = json.dumps(sim.rng.bit_generator.state)
    arrays = {
        "format_version": np.array(FORMAT_VERSION),
        "config_json": np.array(_config_to_json(sim.config)),
        "rng_state_json": np.array(rng_state),
        "step_count": np.array(sim.step_count),
        "plunger_position": np.array(sim.boundaries.plunger.position),
        "sampler_steps": np.array(sim.sampler.steps),
        "sampler_count": sim.sampler._count,
        "sampler_mu": sim.sampler._mu,
        "sampler_mv": sim.sampler._mv,
        "sampler_mw": sim.sampler._mw,
        "sampler_e_trans": sim.sampler._e_trans,
        "sampler_e_rot": sim.sampler._e_rot,
    }
    arrays.update(_pack_particles("flow", sim.particles))
    arrays.update(_pack_particles("res", sim.reservoir.particles))
    np.savez_compressed(path, **arrays)


def load_simulation(path: PathLike) -> Simulation:
    """Reconstruct a simulation from a checkpoint.

    The returned simulation continues exactly where the saved one
    stopped: same particles, same reservoir, same plunger phase, same
    RNG stream, same accumulated averages.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"snapshot format {version} != supported {FORMAT_VERSION}"
            )
        config = _config_from_json(str(data["config_json"]))
        sim = Simulation(config)
        sim.particles = _unpack_particles("flow", data)
        sim.reservoir.particles = _unpack_particles("res", data)
        if sim.hotpath:
            # The restored populations must take the same kernels as the
            # saved run (scratch-enabled hot path vs legacy differ in
            # memory order after in-place reorders), or continuation
            # would not be bitwise identical.
            sim.particles.enable_scratch()
            sim.reservoir.particles.enable_scratch()
        sim.step_count = int(data["step_count"])
        sim.boundaries.plunger.position = float(data["plunger_position"])
        sim.rng.bit_generator.state = json.loads(str(data["rng_state_json"]))
        sim.sampler._steps = int(data["sampler_steps"])
        sim.sampler._count[:] = data["sampler_count"]
        sim.sampler._mu[:] = data["sampler_mu"]
        sim.sampler._mv[:] = data["sampler_mv"]
        sim.sampler._mw[:] = data["sampler_mw"]
        sim.sampler._e_trans[:] = data["sampler_e_trans"]
        sim.sampler._e_rot[:] = data["sampler_e_rot"]
    return sim
