"""Paper-vs-measured experiment records.

Every benchmark produces one or more :class:`Metric` rows; the records
render as aligned text (for bench logs) and markdown (for
EXPERIMENTS.md).  Keeping the comparison machinery in the library (not
the benches) lets tests pin the tolerance semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Metric:
    """One paper-vs-measured comparison row.

    Parameters
    ----------
    name:
        What is being compared ("shock angle (deg)").
    paper:
        The paper's value (None when the paper gives only a direction,
        e.g. "wake shock washed out").
    measured:
        Our value.
    rel_tol:
        Relative tolerance for :meth:`agrees` (ignored when ``paper`` is
        None).
    note:
        Free-text qualification.
    """

    name: str
    paper: Optional[float]
    measured: float
    rel_tol: float = 0.15
    note: str = ""

    def agrees(self) -> Optional[bool]:
        """Whether measured matches paper within tolerance (None if n/a)."""
        if self.paper is None:
            return None
        if self.paper == 0:
            return abs(self.measured) <= self.rel_tol
        return abs(self.measured - self.paper) <= self.rel_tol * abs(self.paper)


@dataclass
class ExperimentRecord:
    """All comparison rows of one experiment (one figure/table)."""

    experiment_id: str
    title: str
    metrics: List[Metric] = field(default_factory=list)

    def add(
        self,
        name: str,
        paper: Optional[float],
        measured: float,
        rel_tol: float = 0.15,
        note: str = "",
    ) -> Metric:
        """Append and return one comparison row."""
        m = Metric(name=name, paper=paper, measured=measured, rel_tol=rel_tol, note=note)
        self.metrics.append(m)
        return m

    def all_agree(self) -> bool:
        """True when every comparable metric is within tolerance."""
        return all(m.agrees() in (True, None) for m in self.metrics)

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        """Aligned plain-text rendering (bench log format)."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        for m in self.metrics:
            paper = "--" if m.paper is None else f"{m.paper:.4g}"
            verdict = {True: "OK", False: "MISS", None: "info"}[m.agrees()]
            note = f"  ({m.note})" if m.note else ""
            lines.append(
                f"  {m.name:<40s} paper={paper:>8s}  measured="
                f"{m.measured:>10.4g}  [{verdict}]{note}"
            )
        return "\n".join(lines)

    def to_markdown_rows(self) -> str:
        """Markdown table rows (without the header)."""
        rows = []
        for m in self.metrics:
            paper = "—" if m.paper is None else f"{m.paper:.4g}"
            verdict = {True: "✓", False: "✗", None: "·"}[m.agrees()]
            rows.append(
                f"| {self.experiment_id} | {m.name} | {paper} | "
                f"{m.measured:.4g} | {verdict} | {m.note} |"
            )
        return "\n".join(rows)


MARKDOWN_HEADER = (
    "| Exp | Metric | Paper | Measured | Agree | Note |\n"
    "|---|---|---|---|---|---|"
)


def records_to_markdown(records: List[ExperimentRecord]) -> str:
    """A full markdown table for a list of experiment records."""
    if not records:
        raise ConfigurationError("no records")
    body = "\n".join(r.to_markdown_rows() for r in records)
    return f"{MARKDOWN_HEADER}\n{body}"
