"""Boundary-condition enforcement (sub-step 2).

The wind-tunnel boundaries of the paper:

* **Hard boundaries** -- solid impermeable barriers: the tunnel floor
  and ceiling and the wedge in the test section, implemented inviscid
  (specular reflection) so results compare directly with 2-D inviscid
  theory.
* **Soft downstream boundary** -- a sink: "all particles exiting
  downstream are removed from the simulation" (into the reservoir).
  "For physical consistency this constrains the downstream boundary to
  be supersonic."
* **Upstream plunger** -- on parallel architectures the upstream
  boundary is a hard wall "moving with the freestream until it crosses a
  predefined trigger point which causes the plunger to be withdrawn and
  enough new particles to be introduced to fill the void.  In this
  manner the introduction of new particles can be delayed an arbitrary
  number of time steps."

Reflections are resolved iteratively: a particle bounced off the ramp
can land below the floor (and vice versa at the wedge's leading-edge
corner), so the wall/wedge passes repeat until no particle remains
inside any solid, with a positional clamp as the (counted) last resort
for pathological corner cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.reflect import (
    reflect_adiabatic_axis,
    reflect_diffuse_axis,
    reflect_specular_axis,
)
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

#: Supported tunnel-wall models.  "specular" is the paper's inviscid
#: boundary; "diffuse" (isothermal) and "adiabatic" are the no-slip
#: walls its Future Work calls for; "maxwell" blends specular and
#: diffuse with an accommodation coefficient (Maxwell's classical
#: gas-surface model, the standard DSMC wall).
WALL_MODELS = ("specular", "diffuse", "adiabatic", "maxwell")

#: Maximum wall/wedge reflection passes before clamping.
MAX_REFLECTION_PASSES = 6


@dataclass
class PlungerState:
    """The moving upstream piston.

    Attributes
    ----------
    position:
        Current x of the plunger face (starts at 0).
    trigger:
        When the face passes this x, the plunger withdraws to 0 and the
        vacated slab refills from the reservoir.
    speed:
        Face speed, = freestream bulk speed ("moving with the
        freestream").
    """

    position: float
    trigger: float
    speed: float

    def __post_init__(self) -> None:
        if not 0.0 < self.trigger:
            raise ConfigurationError("trigger must be positive")
        if self.speed <= 0.0:
            raise ConfigurationError("plunger speed must be positive")
        if not 0.0 <= self.position <= self.trigger:
            raise ConfigurationError("plunger position outside [0, trigger]")


@dataclass(frozen=True)
class BoundaryStats:
    """Diagnostics from one boundary-enforcement sub-step."""

    n_reflected_walls: int
    n_reflected_wedge: int
    n_removed_downstream: int
    n_injected_upstream: int
    n_clamped: int
    plunger_reset: bool


class WindTunnelBoundaries:
    """Enforces all wind-tunnel boundary conditions on a population.

    Parameters
    ----------
    domain:
        The tunnel grid.
    freestream:
        Sets the plunger speed and the refill density.
    wedge:
        Optional body in the test section.
    plunger_trigger:
        x position (cell widths) at which the plunger withdraws;
        defaults to 4 cells, giving refills every ~trigger/U steps ("the
        introduction of new particles can be delayed an arbitrary number
        of time steps").
    """

    def __init__(
        self,
        domain: Domain,
        freestream: Freestream,
        wedge: Optional[Wedge] = None,
        plunger_trigger: float = 4.0,
        wall_model: str = "specular",
        wall_c_mp: Optional[float] = None,
        accommodation: float = 1.0,
        span_depth: float = 1.0,
        has_inlet: bool = True,
        has_outlet: bool = True,
    ) -> None:
        if wedge is not None:
            wedge.validate_in(domain)
        if wall_model not in WALL_MODELS:
            raise ConfigurationError(
                f"wall_model must be one of {WALL_MODELS}, got {wall_model!r}"
            )
        self.domain = domain
        self.freestream = freestream
        self.wedge = wedge
        self.wall_model = wall_model
        #: Wall temperature handle for the isothermal diffuse model
        #: (defaults to the freestream temperature).  The wedge surface
        #: remains specular in all models -- the inviscid-body
        #: comparison is the validation anchor; no-slip walls apply to
        #: the tunnel floor and ceiling.
        self.wall_c_mp = wall_c_mp if wall_c_mp is not None else freestream.c_mp
        if self.wall_c_mp <= 0:
            raise ConfigurationError("wall_c_mp must be positive")
        #: Maxwell-model accommodation coefficient: the fraction of
        #: wall encounters re-emitted diffusely at the wall temperature
        #: (the rest reflect specularly).  0 degenerates to "specular",
        #: 1 to "diffuse"; only the "maxwell" model reads it.
        if not 0.0 <= accommodation <= 1.0:
            raise ConfigurationError("accommodation must be in [0, 1]")
        self.accommodation = accommodation
        #: z extent of the tunnel: 1 for the 2-D configuration; the 3-D
        #: slab passes its depth so the plunger refill fills the right
        #: *volume* at the freestream density.
        if span_depth <= 0:
            raise ConfigurationError("span_depth must be positive")
        self.span_depth = span_depth
        #: Optional surface-load sampler; when set, wedge reflections
        #: deposit their impulses into it (armed per step by the driver
        #: so surface averages align with the field-sampling phase).
        self.surface_sampler = None
        #: Domain-sharded runs split the streamwise boundaries across
        #: workers: only the first shard owns the upstream plunger
        #: (``has_inlet``) and only the last shard owns the downstream
        #: sink (``has_outlet``).  Interior shards run with both False;
        #: their x-crossings are migrations handled by the exchange
        #: machinery, not boundary conditions.  Serial runs keep both.
        self.has_inlet = has_inlet
        self.has_outlet = has_outlet
        self.plunger = PlungerState(
            position=0.0, trigger=plunger_trigger, speed=freestream.speed
        )

    # -- main entry point ----------------------------------------------------

    def apply_rebuilding(
        self,
        particles: ParticleArrays,
        reservoir: Optional[Reservoir],
        rng: np.random.Generator,
    ) -> tuple:
        """Enforce all boundaries; returns ``(particles, stats)``.

        Order of enforcement follows the causal order within the step:
        moving-piston reflection, solid-surface reflections (iterated),
        downstream removal, then the plunger advance/withdraw-refill.

        Populations with scratch buffers enabled and specular walls take
        the subset-based fast path (:meth:`_apply_rebuilding_fast`);
        results are statistically identical, and the legacy full-array
        path remains for the other wall models and plain populations.
        """
        if self.wall_model == "specular" and particles.scratch is not None:
            return self._apply_rebuilding_fast(particles, reservoir, rng)
        n_walls = 0
        n_wedge = 0
        n_clamped = 0

        # 1) Upstream plunger face: specular in the moving frame.
        #    u' = 2 U_p - u, x' = 2 x_p - x for particles behind the face.
        if self.has_inlet:
            xp = self.plunger.position
            behind = particles.x < xp
            if np.any(behind):
                particles.x[behind] = 2.0 * xp - particles.x[behind]
                particles.u[behind] = (
                    2.0 * self.plunger.speed - particles.u[behind]
                )
                n_walls += int(np.count_nonzero(behind))

        # 2) Solid surfaces, iterated to a fixed point.
        for _ in range(MAX_REFLECTION_PASSES):
            dirty = False
            below = particles.y < 0.0
            above = particles.y > self.domain.height
            if np.any(below) or np.any(above):
                self._wall_pass(particles, rng)
                n_walls += int(np.count_nonzero(below) + np.count_nonzero(above))
                dirty = True
            if self.wedge is not None:
                inside = self.wedge.inside(particles.x, particles.y)
                if np.any(inside):
                    u0 = particles.u
                    v0 = particles.v
                    (
                        particles.x,
                        particles.y,
                        particles.u,
                        particles.v,
                        back,
                        ramp,
                    ) = self.wedge.reflect_specular_report(
                        particles.x, particles.y, particles.u, particles.v
                    )
                    if self.surface_sampler is not None:
                        hit = back | ramp
                        self.surface_sampler.record(
                            particles.x[hit],
                            particles.u[hit] - u0[hit],
                            particles.v[hit] - v0[hit],
                            back[hit],
                        )
                    n_wedge += int(np.count_nonzero(inside))
                    dirty = True
            if not dirty:
                break
        n_clamped += self._clamp_stragglers(particles)

        # 3) Soft downstream boundary: remove into the reservoir.
        n_removed = 0
        if self.has_outlet:
            exited = self.domain.exited_downstream(particles.x)
            n_removed = int(np.count_nonzero(exited))
            if n_removed:
                particles = particles.select(~exited)
                if reservoir is not None:
                    reservoir.deposit(rng, n_removed)

        # 4) Advance the plunger; withdraw and refill past the trigger.
        n_injected = 0
        reset = False
        if self.has_inlet:
            self.plunger.position += self.plunger.speed
            if self.plunger.position >= self.plunger.trigger:
                n_injected, particles = self._refill_void(
                    particles, reservoir, rng
                )
                self.plunger.position = 0.0
                reset = True

        return particles, BoundaryStats(
            n_reflected_walls=n_walls,
            n_reflected_wedge=n_wedge,
            n_removed_downstream=n_removed,
            n_injected_upstream=n_injected,
            n_clamped=n_clamped,
            plunger_reset=reset,
        )

    # -- the scratch-enabled fast path ------------------------------------

    def _apply_rebuilding_fast(
        self,
        particles: ParticleArrays,
        reservoir: Optional[Reservoir],
        rng: np.random.Generator,
    ) -> tuple:
        """Subset-based specular boundary enforcement, in place.

        The legacy path rescans and rewrites full columns on every
        reflection pass; at steady state only a few percent of the
        population touches any boundary, so this path scans everyone
        exactly once (pass 1) and afterwards tracks the *moved* subset:
        a reflection is the only way to (re)enter a solid, hence passes
        2+ and the final clamp only need to look at particles moved by
        the previous pass.  Population rebuilds (downstream removal,
        plunger refill) reuse the ping-pong buffers instead of
        allocating a fresh population.
        """
        sc = particles.scratch
        n = particles.n
        x, y, u, v = particles.x, particles.y, particles.u, particles.v
        height = self.domain.height
        n_walls = 0
        n_wedge = 0
        n_clamped = 0

        # 1) Upstream plunger face: specular in the moving frame.
        mask = sc.array("bnd_mask", n, dtype=bool)
        if self.has_inlet:
            xp = self.plunger.position
            np.less(x, xp, out=mask)
            behind = np.flatnonzero(mask)
            if behind.size:
                x[behind] = 2.0 * xp - x[behind]
                u[behind] = 2.0 * self.plunger.speed - u[behind]
                n_walls += int(behind.size)

        # 2) Solid surfaces, iterated to a fixed point on the moved set.
        active: Optional[np.ndarray] = None  # None = scan everyone
        clean = False
        for _ in range(MAX_REFLECTION_PASSES):
            moved = []
            # Floor and ceiling (specular).
            if active is None:
                m2 = sc.array("bnd_mask2", n, dtype=bool)
                np.less(y, 0.0, out=mask)
                np.greater(y, height, out=m2)
                np.logical_or(mask, m2, out=mask)
                off = np.flatnonzero(mask)
            else:
                ys = y[active]
                off = active[(ys < 0.0) | (ys > height)]
            if off.size:
                ys = y[off]
                below = ys < 0.0
                ys[below] = -ys[below]
                above = ys > height
                ys[above] = 2.0 * height - ys[above]
                y[off] = ys
                v[off] = -v[off]
                n_walls += int(off.size)
                moved.append(off)
            # The wedge (specular), on the subset actually inside it.
            if self.wedge is not None:
                if active is None:
                    idx_in = np.flatnonzero(self.wedge.inside(x, y))
                else:
                    idx_in = active[self.wedge.inside(x[active], y[active])]
                if idx_in.size:
                    x0 = x[idx_in]
                    y0 = y[idx_in]
                    u0 = u[idx_in]
                    v0 = v[idx_in]
                    x1, y1, u1, v1, back, ramp = (
                        self.wedge.reflect_specular_report(x0, y0, u0, v0)
                    )
                    if self.surface_sampler is not None:
                        hit = back | ramp
                        self.surface_sampler.record(
                            x1[hit], u1[hit] - u0[hit], v1[hit] - v0[hit],
                            back[hit],
                        )
                    x[idx_in] = x1
                    y[idx_in] = y1
                    u[idx_in] = u1
                    v[idx_in] = v1
                    n_wedge += int(idx_in.size)
                    moved.append(idx_in)
            if not moved:
                clean = True
                break
            active = moved[0] if len(moved) == 1 else (
                np.unique(np.concatenate(moved))
            )
        if not clean and active is not None and active.size:
            n_clamped = self._clamp_subset(particles, active)

        # 3) Soft downstream boundary: remove into the reservoir.
        n_removed = 0
        if self.has_outlet:
            np.greater_equal(x, self.domain.width, out=mask)
            n_removed = int(np.count_nonzero(mask))
            if n_removed:
                # Backfill removal: O(exited), and the cell sort right
                # after this phase re-orders the population anyway.
                particles.remove_inplace(mask)
                if reservoir is not None:
                    reservoir.deposit(rng, n_removed)

        # 4) Advance the plunger; withdraw and refill past the trigger.
        n_injected = 0
        reset = False
        if not self.has_inlet:
            return particles, BoundaryStats(
                n_reflected_walls=n_walls,
                n_reflected_wedge=n_wedge,
                n_removed_downstream=n_removed,
                n_injected_upstream=0,
                n_clamped=n_clamped,
                plunger_reset=False,
            )
        self.plunger.position += self.plunger.speed
        if self.plunger.position >= self.plunger.trigger:
            xp = self.plunger.position
            area = xp * self.domain.height * self.span_depth
            n_new = int(round(self.freestream.density * area))
            if n_new:
                if reservoir is not None:
                    fresh = reservoir.withdraw(rng, n_new)
                else:
                    fresh = ParticleArrays.from_freestream(
                        rng, n_new, self.freestream,
                        x_range=(0.0, xp),
                        y_range=(0.0, self.domain.height),
                        rotational_dof=particles.rotational_dof,
                        rectangular=True,
                    )
                fresh.x = rng.uniform(0.0, xp, size=n_new)
                fresh.y = rng.uniform(
                    0.0, self.domain.height, size=n_new
                )
                particles.append_inplace(fresh)
                n_injected = n_new
            self.plunger.position = 0.0
            reset = True

        return particles, BoundaryStats(
            n_reflected_walls=n_walls,
            n_reflected_wedge=n_wedge,
            n_removed_downstream=n_removed,
            n_injected_upstream=n_injected,
            n_clamped=n_clamped,
            plunger_reset=reset,
        )

    def _clamp_subset(
        self, particles: ParticleArrays, candidates: np.ndarray
    ) -> int:
        """Subset variant of :meth:`_clamp_stragglers`."""
        x, y = particles.x, particles.y
        xs = x[candidates]
        ys = y[candidates]
        bad = (ys < 0.0) | (ys > self.domain.height)
        if self.wedge is not None:
            bad |= self.wedge.inside(xs, ys)
        idx = candidates[bad]
        if idx.size == 0:
            return 0
        y[idx] = np.clip(y[idx], 0.0, self.domain.height)
        if self.wedge is not None:
            still = self.wedge.inside(x[idx], y[idx])
            if np.any(still):
                sidx = idx[still]
                x[sidx], y[sidx] = self.wedge.project_out(x[sidx], y[sidx])
        return int(idx.size)

    # -- helpers ---------------------------------------------------------

    def _wall_pass(
        self, particles: ParticleArrays, rng: np.random.Generator
    ) -> None:
        """One floor + ceiling pass under the configured wall model."""
        if self.wall_model == "specular":
            particles.y, particles.v = reflect_specular_axis(
                particles.y, particles.v, 0.0, "above"
            )
            particles.y, particles.v = reflect_specular_axis(
                particles.y, particles.v, self.domain.height, "below"
            )
            return
        for wall, side in ((0.0, "above"), (self.domain.height, "below")):
            if self.wall_model == "maxwell":
                self._maxwell_wall(particles, rng, wall, side)
            elif self.wall_model == "diffuse":
                (
                    particles.y,
                    (particles.u, particles.v, particles.w),
                    particles.rot,
                    _crossed,
                ) = reflect_diffuse_axis(
                    rng,
                    particles.y,
                    (particles.u, particles.v, particles.w),
                    particles.rot,
                    wall=wall,
                    side=side,
                    normal_axis=1,
                    wall_c_mp=self.wall_c_mp,
                )
            else:  # adiabatic
                (
                    particles.y,
                    (particles.u, particles.v, particles.w),
                    _crossed,
                ) = reflect_adiabatic_axis(
                    rng,
                    particles.y,
                    (particles.u, particles.v, particles.w),
                    wall=wall,
                    side=side,
                    normal_axis=1,
                )

    def _maxwell_wall(
        self,
        particles: ParticleArrays,
        rng: np.random.Generator,
        wall: float,
        side: str,
    ) -> None:
        """Maxwell gas-surface model: accommodate a random fraction.

        Each crossing particle independently re-emits diffusely at the
        wall temperature with probability ``accommodation`` and reflects
        specularly otherwise.
        """
        crossed = particles.y < wall if side == "above" else particles.y > wall
        if not np.any(crossed):
            return
        diffuse = crossed & (rng.random(particles.n) < self.accommodation)
        specular = crossed & ~diffuse
        if np.any(specular):
            y_s, v_s = reflect_specular_axis(
                particles.y[specular], particles.v[specular], wall, side
            )
            particles.y[specular] = y_s
            particles.v[specular] = v_s
        if np.any(diffuse):
            idx = np.flatnonzero(diffuse)
            new_y, (u2, v2, w2), rot2, _ = reflect_diffuse_axis(
                rng,
                particles.y[idx],
                (particles.u[idx], particles.v[idx], particles.w[idx]),
                particles.rot[idx],
                wall=wall,
                side=side,
                normal_axis=1,
                wall_c_mp=self.wall_c_mp,
            )
            particles.y[idx] = new_y
            particles.u[idx] = u2
            particles.v[idx] = v2
            particles.w[idx] = w2
            particles.rot[idx] = rot2

    def _clamp_stragglers(self, particles: ParticleArrays) -> int:
        """Last-resort positional clamp for unresolved reflections.

        Extremely fast particles or corner geometry can defeat the
        bounded reflection iteration; such stragglers are snapped to the
        nearest open point.  The count is surfaced in the stats so runs
        can verify this stays negligible (tests assert it is rare).
        """
        bad = (particles.y < 0.0) | (particles.y > self.domain.height)
        if self.wedge is not None:
            bad |= self.wedge.inside(particles.x, particles.y)
        n_bad = int(np.count_nonzero(bad))
        if n_bad == 0:
            return 0
        particles.y[bad] = np.clip(particles.y[bad], 0.0, self.domain.height)
        if self.wedge is not None:
            still = self.wedge.inside(particles.x, particles.y)
            if np.any(still):
                # Snap onto the body surface, just outside the solid.
                px, py = self.wedge.project_out(
                    particles.x[still], particles.y[still]
                )
                particles.x[still] = px
                particles.y[still] = py
        return n_bad

    def _refill_void(
        self,
        particles: ParticleArrays,
        reservoir: Optional[Reservoir],
        rng: np.random.Generator,
    ) -> tuple:
        """Fill [0, plunger position) x [0, H) with freestream particles."""
        xp = self.plunger.position
        area = xp * self.domain.height * self.span_depth
        n_new = int(round(self.freestream.density * area))
        if n_new == 0:
            return 0, particles
        if reservoir is not None:
            fresh = reservoir.withdraw(rng, n_new)
        else:
            fresh = ParticleArrays.from_freestream(
                rng,
                n_new,
                self.freestream,
                x_range=(0.0, xp),
                y_range=(0.0, self.domain.height),
                rotational_dof=particles.rotational_dof,
                rectangular=True,
            )
        fresh.x = rng.uniform(0.0, xp, size=n_new)
        fresh.y = rng.uniform(0.0, self.domain.height, size=n_new)
        return n_new, ParticleArrays.concatenate(particles, fresh)
