"""Surface aerodynamics: wall pressure and drag validation."""

import math

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.core.surface import (
    SurfaceSampler,
    oblique_shock_surface_pressure_ratio,
)
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def loaded_run():
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=14.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=21,
    )
    sim = Simulation(cfg)
    sim.run(220)
    sim.run(250, sample=True)
    return sim


class TestSamplerMechanics:
    def test_strip_binning(self):
        w = Wedge(x_leading=10, base=10, angle_deg=30)
        s = SurfaceSampler(w, n_strips=5)
        # One hit mid-ramp (strip 2), one on the back face.
        s.record(
            x=np.array([15.1, 20.0]),
            du=np.array([0.0, 2.0]),
            dv=np.array([1.0, 0.0]),
            back_face=np.array([False, True]),
        )
        s.end_step()
        assert s._hits[2] == 1
        assert s._hits[5] == 1
        assert s.hits_per_step() == 2.0

    def test_requires_steps(self):
        s = SurfaceSampler(Wedge(), n_strips=4)
        with pytest.raises(ConfigurationError):
            s.drag()

    def test_reset(self):
        s = SurfaceSampler(Wedge(), n_strips=4)
        s.record(np.array([25.0]), np.array([1.0]), np.array([0.0]),
                 np.array([False]))
        s.end_step()
        s.reset()
        assert s.steps == 0

    def test_strip_count_validated(self):
        with pytest.raises(ConfigurationError):
            SurfaceSampler(Wedge(), n_strips=0)


class TestWedgeLoads:
    def test_ramp_pressure_matches_oblique_shock(self, loaded_run):
        sim = loaded_run
        fs = sim.config.freestream
        p_inf = fs.density * fs.rt
        p_ratio_theory = oblique_shock_surface_pressure_ratio(
            fs.mach, sim.config.wedge.angle_deg, fs.gamma
        )
        pressures = sim.surface.ramp_pressure() / p_inf
        # Interior strips (leading-edge strip sees the forming shock).
        interior = pressures[2:-2]
        assert interior.mean() == pytest.approx(p_ratio_theory, rel=0.12)

    def test_pressure_roughly_uniform_along_ramp(self, loaded_run):
        p = loaded_run.surface.ramp_pressure()
        interior = p[2:-2]
        assert interior.std() / interior.mean() < 0.2

    def test_base_pressure_is_small(self, loaded_run):
        # The wake is nearly vacuum: base pressure << ramp pressure.
        sim = loaded_run
        base = sim.surface.back_face_pressure()
        ramp = sim.surface.ramp_pressure()[2:-2].mean()
        assert 0.0 <= base < 0.15 * ramp

    def test_drag_positive_and_dominated_by_ramp(self, loaded_run):
        sim = loaded_run
        fs = sim.config.freestream
        assert sim.surface.drag() > 0.0
        cd = sim.surface.drag_coefficient(fs)
        # Inviscid wedge pressure drag: Cd ~ Cp_ramp (ramp force x-proj
        # over frontal area) minus the small base-pressure credit.
        p_inf = fs.density * fs.rt
        p_ratio = oblique_shock_surface_pressure_ratio(
            fs.mach, sim.config.wedge.angle_deg, fs.gamma
        )
        q = 0.5 * fs.density * fs.speed**2
        cp_ramp = (p_ratio - 1.0) * p_inf / q
        # Ramp x-force = p2 * height (the ramp's frontal projection);
        # subtract freestream reference and the base credit bounds.
        assert cd == pytest.approx(cp_ramp + p_inf / q, rel=0.25)

    def test_lift_positive_for_floor_mounted_wedge(self, loaded_run):
        # The ramp normal has +y component: the body is pushed down?
        # No: the body *receives* pressure along -n = (sin, -cos):
        # negative lift (pushed into the floor).
        assert loaded_run.surface.lift() < 0.0

    def test_pressure_coefficient_magnitude(self, loaded_run):
        sim = loaded_run
        cp = sim.surface.pressure_coefficient(sim.config.freestream)
        # Mach 4 / 30 deg: Cp ~ 0.73 on the ramp.
        assert cp[2:-2].mean() == pytest.approx(0.73, rel=0.15)


class TestStaticGasPressure:
    def test_floor_specular_flux_equals_static_pressure(self, rng):
        # Kinetic-theory anchor: the impulse flux of a resting
        # equilibrium gas on a specular wall is p = n R T.  Build the
        # equivalent measurement with the sampler on a synthetic
        # reflection stream.
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=50.0)
        w = Wedge(x_leading=0.0, base=10.0, angle_deg=30.0)
        s = SurfaceSampler(w, n_strips=1)
        # Simulate a unit-area ramp patch for many steps: the number of
        # gas-side particles crossing per step with n density and
        # Maxwellian c_n: flux integral done by sampling.
        n_steps = 400
        sigma = fs.c_mp / np.sqrt(2.0)
        area = w.base / math.cos(w.angle)
        nx, ny = w.ramp_normal
        for _ in range(n_steps):
            # Particles within one step of the wall moving toward it
            # reflect: sample c_n < 0 population in a slab of depth
            # |c_n| (per unit area): count ~ n * |c_n|.
            c_n = rng.normal(0.0, sigma, size=int(fs.density * area * 4 * sigma))
            hitters = c_n < 0
            keep = rng.random(hitters.sum()) < (
                np.abs(c_n[hitters]) / (4 * sigma)
            )
            c_hit = c_n[hitters][keep]
            # Specular: c_n -> -c_n; velocity change 2|c_n| along +n.
            dvn = -2.0 * c_hit  # positive magnitudes
            s.record(
                x=np.full(c_hit.size, 5.0),
                du=dvn * nx,
                dv=dvn * ny,
                back_face=np.zeros(c_hit.size, dtype=bool),
            )
            s.end_step()
        p_measured = s.ramp_pressure()[0]
        p_theory = fs.density * fs.rt
        assert p_measured == pytest.approx(p_theory, rel=0.05)
