"""Unit tests for the Version-5.0-style extended scan set."""

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.cm.scan import (
    enumerate_active,
    pack,
    segmented_and_scan,
    segmented_min_scan,
    segmented_or_scan,
    unpack,
)
from repro.cm.timing import CostLedger, CostModel
from repro.errors import MachineError


class TestSegmentedMinOrAnd:
    def test_min_scan(self):
        v = np.array([3, 1, 4, 7, 5, 2])
        heads = np.array([1, 0, 0, 1, 0, 0], dtype=bool)
        assert segmented_min_scan(v, heads).tolist() == [3, 1, 1, 7, 5, 2]

    def test_min_scan_float(self):
        v = np.array([1.5, -0.5, 2.0])
        heads = np.array([1, 0, 1], dtype=bool)
        out = segmented_min_scan(v, heads)
        assert out.tolist() == [1.5, -0.5, 2.0]

    def test_or_scan(self):
        f = np.array([0, 1, 0, 0, 0, 1], dtype=bool)
        heads = np.array([1, 0, 0, 1, 0, 0], dtype=bool)
        assert segmented_or_scan(f, heads).tolist() == [
            False, True, True, False, False, True,
        ]

    def test_and_scan(self):
        f = np.array([1, 1, 0, 1, 1, 1], dtype=bool)
        heads = np.array([1, 0, 0, 1, 0, 0], dtype=bool)
        assert segmented_and_scan(f, heads).tolist() == [
            True, True, False, True, True, True,
        ]

    def test_empty(self):
        e = np.array([], dtype=np.int64)
        he = np.array([], dtype=bool)
        assert segmented_min_scan(e, he).size == 0
        assert segmented_or_scan(e, he).size == 0


class TestEnumeratePackUnpack:
    def test_enumerate(self):
        a = np.array([0, 1, 1, 0, 1], dtype=bool)
        assert enumerate_active(a).tolist() == [-1, 0, 1, -1, 2]

    def test_pack_compresses(self):
        v = np.array([10, 20, 30, 40])
        a = np.array([1, 0, 1, 0], dtype=bool)
        assert pack(v, a).tolist() == [10, 30]

    def test_unpack_roundtrip(self, rng):
        v = rng.integers(0, 100, size=64)
        a = rng.random(64) < 0.4
        packed = pack(v, a)
        back = unpack(packed, a, fill=-1)
        assert np.array_equal(back[a], v[a])
        assert np.all(back[~a] == -1)

    def test_pack_shape_checked(self):
        with pytest.raises(MachineError):
            pack(np.arange(4), np.array([True, False]))

    def test_unpack_shape_checked(self):
        with pytest.raises(MachineError):
            unpack(np.arange(3), np.array([True, False]), fill=0)

    def test_costs_charged(self):
        geom = CM2(n_processors=4).geometry(16)
        ledger = CostLedger()
        cost = CostModel(geom, ledger)
        with ledger.phase("selection"):
            a = np.arange(16) % 2 == 0
            packed = pack(np.arange(16), a, cost=cost)
            unpack(packed, a, fill=0, cost=cost)
        assert ledger.phase_total("selection") > 0

    def test_pack_all_inactive(self):
        assert pack(np.arange(4), np.zeros(4, dtype=bool)).size == 0
