"""Property-based tests of the collision algorithm's invariants.

The conservation laws (eq. (18) and momentum) must hold for *arbitrary*
particle states, not just thermal ones -- exactly what hypothesis is
for.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.collision import collide_pairs
from repro.core.particles import ParticleArrays
from repro.core.permutation import initialize_permutations

finite = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def velocity_arrays(n_pairs):
    shape = (2 * n_pairs,)
    return arrays(np.float64, shape, elements=finite)


@st.composite
def pair_populations(draw, max_pairs=16):
    n_pairs = draw(st.integers(min_value=1, max_value=max_pairs))
    n = 2 * n_pairs
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    u = draw(velocity_arrays(n_pairs))
    v = draw(velocity_arrays(n_pairs))
    w = draw(velocity_arrays(n_pairs))
    r1 = draw(velocity_arrays(n_pairs))
    r2 = draw(velocity_arrays(n_pairs))
    rng = np.random.default_rng(rng_seed)
    pop = ParticleArrays(
        x=np.zeros(n),
        y=np.zeros(n),
        u=u.copy(),
        v=v.copy(),
        w=w.copy(),
        rot=np.column_stack((r1, r2)),
        perm=initialize_permutations(rng, n),
        cell=np.zeros(n, dtype=np.int64),
    )
    first = np.arange(0, n, 2)
    second = first + 1
    return pop, first, second, rng


class TestConservationProperties:
    @given(pair_populations())
    @settings(max_examples=60, deadline=None)
    def test_energy_conserved(self, data):
        pop, first, second, rng = data
        e0 = pop.total_energy()
        collide_pairs(pop, first, second, rng=rng)
        e1 = pop.total_energy()
        assert np.isclose(e1, e0, rtol=1e-10, atol=1e-12)

    @given(pair_populations())
    @settings(max_examples=60, deadline=None)
    def test_momentum_conserved(self, data):
        pop, first, second, rng = data
        p0 = pop.momentum()
        collide_pairs(pop, first, second, rng=rng)
        assert np.allclose(pop.momentum(), p0, rtol=1e-10, atol=1e-10)

    @given(pair_populations())
    @settings(max_examples=60, deadline=None)
    def test_rotational_mean_preserved(self, data):
        # Eqs. (16)-(17): the pair's rotational mean passes through.
        pop, first, second, rng = data
        s0 = pop.rot[first] + pop.rot[second]
        collide_pairs(pop, first, second, rng=rng)
        s1 = pop.rot[first] + pop.rot[second]
        assert np.allclose(s1, s0, rtol=1e-10, atol=1e-10)

    @given(pair_populations())
    @settings(max_examples=60, deadline=None)
    def test_permutations_stay_valid(self, data):
        pop, first, second, rng = data
        collide_pairs(pop, first, second, rng=rng)
        pop.validate()

    @given(pair_populations())
    @settings(max_examples=40, deadline=None)
    def test_relative_norm_preserved_eq18(self, data):
        # The five-element half-relative vector's norm is invariant.
        pop, first, second, rng = data
        def relative_norms():
            h = np.empty((first.size, 5))
            h[:, 0] = 0.5 * (pop.u[first] - pop.u[second])
            h[:, 1] = 0.5 * (pop.v[first] - pop.v[second])
            h[:, 2] = 0.5 * (pop.w[first] - pop.w[second])
            h[:, 3:] = 0.5 * (pop.rot[first] - pop.rot[second])
            return (h**2).sum(axis=1)
        n0 = relative_norms()
        collide_pairs(pop, first, second, rng=rng)
        assert np.allclose(relative_norms(), n0, rtol=1e-10, atol=1e-12)
