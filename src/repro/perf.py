"""Per-phase wall-clock performance ledger for the NumPy engine.

The paper reports its runtime as a per-phase breakdown -- motion and
boundaries 14%, sort 27%, selection 20%, collision 39% of 7.2
microseconds per particle per step -- and the CM emulation reproduces
that structurally through :class:`repro.cm.timing.CostLedger`.  This
module is the *wall-clock* counterpart for the reference (NumPy)
engine: the step loop wraps each phase in :meth:`PerfLedger.phase` and
the ledger accumulates real elapsed seconds, so a run can print its own
motion/sort/selection/collision split next to the paper's and the
benchmark suite can track the hot path's trajectory across commits.

Overhead is two ``perf_counter`` calls per phase per step (tens of
nanoseconds), negligible against the O(N) kernels being timed; the
ledger can still be disabled for the purest timing runs.

The ledger is also the serial engine's feed into the telemetry
subsystem: when a :class:`repro.telemetry.spans.SpanTracer` is
installed as :attr:`PerfLedger.tracer`, every phase records a span
(with its real start/end timestamps) in addition to the aggregate
seconds, which is what the Chrome-trace export renders.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: The paper's four timed phases, in execution order.  The ledger also
#: accepts extra phase names (e.g. "reservoir", "sampling") -- they are
#: reported separately and excluded from the four-phase fractions so the
#: split stays comparable with the paper's table.
PAPER_PHASES = ("motion", "sort", "selection", "collision")


class PerfLedger:
    """Accumulates wall-clock seconds by named phase.

    Typical use inside a step loop::

        perf = PerfLedger()
        with perf.phase("motion"):
            ...
        with perf.phase("sort"):
            ...
        perf.end_step(n_particles=parts.n)

    and afterwards ``perf.fractions()`` for the paper-style split or
    ``perf.us_per_particle()`` for the per-particle budget (computed
    against the accumulated per-step particle counts).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._last_step: Dict[str, float] = {}
        self._current: Dict[str, float] = {}
        self._steps = 0
        #: Sum of per-step particle counts over the recorded steps (the
        #: correct denominator for us/particle when the population
        #: changes step to step, which it always does: boundary fluxes).
        self._particle_steps = 0
        #: Steps that reported a particle count to :meth:`end_step`.
        self._counted_steps = 0
        #: Bumped by :meth:`reset`; a phase entered before a reset
        #: discards its charge instead of polluting the fresh ledger.
        self._generation = 0
        #: Optional :class:`repro.telemetry.spans.SpanTracer`; when set,
        #: every completed phase also records a span (telemetry installs
        #: this; ``None`` keeps the hot path at two perf_counter calls).
        self.tracer = None

    # -- recording --------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block and charge it to ``name``."""
        if not self.enabled:
            yield
            return
        gen = self._generation
        t0 = time.perf_counter()
        try:
            yield
        finally:
            t1 = time.perf_counter()
            if gen == self._generation:
                dt = t1 - t0
                self._current[name] = self._current.get(name, 0.0) + dt
                self._seconds[name] = self._seconds.get(name, 0.0) + dt
                if self.tracer is not None:
                    self.tracer.record(name, t0, t1)

    def record(self, name: str, seconds: float) -> None:
        """Charge externally measured ``seconds`` to phase ``name``.

        The sharded backend times phases inside worker processes and
        merges the per-shard ledgers into the driver's ledger through
        this method (summed CPU-seconds per phase, so the paper-style
        four-phase split still reports globally).
        """
        if not self.enabled:
            return
        self._current[name] = self._current.get(name, 0.0) + seconds
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def end_step(self, n_particles: Optional[int] = None) -> None:
        """Close out one time step (freezes that step's phase split).

        ``n_particles`` is the step's flow population; passing it every
        step builds the particle-count series that
        :meth:`us_per_particle` divides by, so the per-particle budget
        stays honest while the population fluctuates.
        """
        self._steps += 1
        if n_particles is not None and n_particles > 0:
            self._particle_steps += int(n_particles)
            self._counted_steps += 1
        self._last_step = self._current
        self._current = {}

    def reset(self) -> None:
        """Drop all accumulated timings (e.g. after warm-up steps).

        Safe to call while a :meth:`phase` context is open: the
        in-flight phase detects the reset (generation counter) and
        discards its charge rather than leaking warm-up seconds into
        the fresh ledger.
        """
        self._generation += 1
        self._seconds = {}
        self._last_step = {}
        self._current = {}
        self._steps = 0
        self._particle_steps = 0
        self._counted_steps = 0

    # -- reading ----------------------------------------------------------

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def particle_steps(self) -> int:
        """Sum of per-step particle counts reported to :meth:`end_step`."""
        return self._particle_steps

    @property
    def last_step_seconds(self) -> Dict[str, float]:
        """Phase -> seconds of the most recently completed step."""
        return dict(self._last_step)

    def total_seconds(self) -> float:
        """Wall-clock seconds accumulated across all phases."""
        return sum(self._seconds.values())

    def phase_seconds(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def per_step_seconds(self) -> Dict[str, float]:
        """Phase -> mean seconds per recorded step."""
        if self._steps == 0:
            return {}
        return {p: s / self._steps for p, s in self._seconds.items()}

    def fractions(self) -> Dict[str, float]:
        """Share of each *paper* phase in the four-phase total.

        Extra phases (reservoir work, sampling) are excluded from the
        denominator so the split is directly comparable with the
        paper's 14/27/20/39 table.
        """
        total = sum(self._seconds.get(p, 0.0) for p in PAPER_PHASES)
        if total == 0.0:
            return {p: 0.0 for p in PAPER_PHASES}
        return {p: self._seconds.get(p, 0.0) / total for p in PAPER_PHASES}

    def us_per_particle(self) -> Dict[str, float]:
        """Phase -> microseconds per particle per step (paper units).

        Divides by the accumulated per-step particle counts (the series
        built by ``end_step(n_particles=...)``), which is exact under a
        fluctuating population.  The old single-count signature
        (``us_per_particle(n_particles)``), which silently applied the
        *final* population to every recorded step, has been removed;
        report the count per step via ``end_step`` instead.
        """
        if self._particle_steps == 0 or self._counted_steps == 0:
            return {}
        # Steps that predate the series (mixed old/new callers) scale
        # the denominator by the counted fraction, keeping the mean
        # honest for the steps that did report.
        scale = self._counted_steps / self._steps if self._steps else 1.0
        return {
            p: s * scale / self._particle_steps * 1e6
            for p, s in self._seconds.items()
        }

    def summary(self) -> Dict[str, object]:
        """One serializable record of everything the ledger knows."""
        out: Dict[str, object] = {
            "steps": self._steps,
            "particle_steps": self._particle_steps,
            "seconds_by_phase": dict(self._seconds),
            "per_step_seconds": self.per_step_seconds(),
            "fractions": self.fractions(),
        }
        if self._particle_steps:
            out["us_per_particle"] = self.us_per_particle()
        return out
