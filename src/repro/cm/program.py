"""The algorithm's inner step written as a CM data-parallel program.

This module expresses one *motionless collision step* -- the heart of
the paper's contribution -- purely in terms of the Connection Machine
substrate primitives, the way the C*/Paris source would read:

* per-VP :class:`~repro.cm.field.Field` variables for the particle
  state,
* :func:`~repro.cm.sort.sort_by_key` for the randomized cell sort,
* segmented scans for the per-cell populations,
* the even/odd neighbour exchange for partner state,
* elementwise field arithmetic for the selection rule and the
  permutation collision.

It exists for two reasons: (1) as an executable fidelity check that the
emulation substrate is complete enough to host the whole algorithm
(tested against the NumPy reference for exact agreement given the same
random inputs), and (2) as documentation -- this is what the paper's
program structure looked like.

The production engines do not route through this module (the NumPy
engine skips the cost accounting entirely; the CM engine fuses the
charges); see ``core/simulation.py`` and ``core/engine_cm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cm.field import Field
from repro.cm.machine import VPGeometry
from repro.cm.scan import segment_counts
from repro.cm.sort import sort_by_key
from repro.cm.timing import CostLedger, CostModel
from repro.core.particles import ParticleArrays
from repro.core.permutation import apply_permutation
from repro.errors import MachineError
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel


@dataclass
class ProgramInputs:
    """Pre-drawn random inputs so runs are exactly reproducible.

    The CM program consumes randomness for: sort-key mixing, the
    acceptance draws, the signs, and the permutation transpositions.
    Drawing them up front lets the test compare this program against the
    reference implementation bit for bit.
    """

    mix: np.ndarray            # (n,) ints in [0, sort_scale)
    draws: np.ndarray          # (n // 2,) uniforms for acceptance
    signs: np.ndarray          # (n // 2, k) +-1
    transpositions: np.ndarray # (n,) swap indices in [0, k)


def collision_step_program(
    particles: ParticleArrays,
    freestream: Freestream,
    model: MolecularModel,
    n_cells: int,
    geometry: VPGeometry,
    inputs: ProgramInputs,
    sort_scale: int = 8,
    ledger: Optional[CostLedger] = None,
) -> int:
    """One sort-select-collide step in CM data-parallel style.

    Mutates ``particles`` in place (reordered by the sort, velocities
    updated by the collisions).  Returns the number of collisions.
    """
    n = particles.n
    if n < 2:
        return 0
    if geometry.n_virtual != n:
        raise MachineError("geometry must match the population size")
    cost = CostModel(geometry, ledger) if ledger is not None else None
    k = 3 + particles.rotational_dof

    # --- Phase: sort.  key = cell * scale + mix; sort all state. -------
    if ledger is not None:
        ctx = ledger.phase("sort")
        ctx.__enter__()
    cell_f = Field(particles.cell.astype(np.int64), geometry, cost, bits=32)
    key_f = cell_f * sort_scale + inputs.mix
    key_bits = max(int(key_f.data.max()).bit_length(), 1)
    res = sort_by_key(
        key_f.data, geometry=geometry, cost=cost, key_bits=key_bits
    )
    particles.reorder_inplace(res.order)
    if ledger is not None:
        ctx.__exit__(None, None, None)

    # --- Phase: selection. ------------------------------------------------
    if ledger is not None:
        ctx = ledger.phase("selection")
        ctx.__enter__()
    cell_sorted = particles.cell
    heads = np.empty(n, dtype=bool)
    heads[0] = True
    heads[1:] = cell_sorted[1:] != cell_sorted[:-1]
    pops = segment_counts(heads, cost=cost)  # per-particle cell population

    # Even/odd pairing: VP 2i looks at VP 2i+1.
    n_pairs = n // 2
    first = np.arange(n_pairs) * 2
    second = first + 1
    same_cell = cell_sorted[first] == cell_sorted[second]
    if cost is not None:
        cost.pair_exchange(payload_bits=32)  # partner cell index

    # Selection rule (eq. (8) with optional speed factor).
    if freestream.is_near_continuum:
        prob = np.where(same_cell, 1.0, 0.0)
    else:
        density = pops[first].astype(np.float64)
        prob = freestream.collision_probability * density / freestream.density
        if not model.is_maxwell:
            du = particles.u[first] - particles.u[second]
            dv = particles.v[first] - particles.v[second]
            dw = particles.w[first] - particles.w[second]
            g = np.sqrt(du * du + dv * dv + dw * dw)
            g_ref = np.sqrt(2.0) * freestream.mean_speed
            prob = prob * model.speed_factor(g, g_ref)
        prob = np.where(same_cell, np.minimum(prob, 1.0), 0.0)
    if cost is not None:
        cost.elementwise(bits=32, nops=14)
    accept = inputs.draws[:n_pairs] < prob
    if ledger is not None:
        ctx.__exit__(None, None, None)

    # --- Phase: collision. ---------------------------------------------------
    if ledger is not None:
        ctx = ledger.phase("collision")
        ctx.__enter__()
    a = first[accept]
    b = second[accept]
    m = a.size
    if cost is not None:
        cost.pair_exchange(payload_bits=5 * 32)
        cost.elementwise(bits=32, nops=40)
    if m:
        mean = np.empty((m, k))
        half = np.empty((m, k))
        mean[:, 0] = 0.5 * (particles.u[a] + particles.u[b])
        mean[:, 1] = 0.5 * (particles.v[a] + particles.v[b])
        mean[:, 2] = 0.5 * (particles.w[a] + particles.w[b])
        mean[:, 3:] = 0.5 * (particles.rot[a] + particles.rot[b])
        half[:, 0] = 0.5 * (particles.u[a] - particles.u[b])
        half[:, 1] = 0.5 * (particles.v[a] - particles.v[b])
        half[:, 2] = 0.5 * (particles.w[a] - particles.w[b])
        half[:, 3:] = 0.5 * (particles.rot[a] - particles.rot[b])

        h_new = apply_permutation(half, particles.perm[a])
        h_new = h_new * inputs.signs[accept][:, :k]

        particles.u[a] = mean[:, 0] + h_new[:, 0]
        particles.u[b] = mean[:, 0] - h_new[:, 0]
        particles.v[a] = mean[:, 1] + h_new[:, 1]
        particles.v[b] = mean[:, 1] - h_new[:, 1]
        particles.w[a] = mean[:, 2] + h_new[:, 2]
        particles.w[b] = mean[:, 2] - h_new[:, 2]
        particles.rot[a] = mean[:, 3:] + h_new[:, 3:]
        particles.rot[b] = mean[:, 3:] - h_new[:, 3:]

        # Permutation refresh: one transposition per collided particle.
        for rows in (a, b):
            js = inputs.transpositions[rows] % k
            tmp = particles.perm[rows, js].copy()
            particles.perm[rows, js] = particles.perm[rows, 0]
            particles.perm[rows, 0] = tmp
    if ledger is not None:
        ctx.__exit__(None, None, None)
    return int(m)
