"""Unified telemetry: metrics, span tracing, event streams, exporters.

The observability layer every execution mode emits into -- the serial
engine, the sharded backend and the supervisor all feed one
:class:`~repro.telemetry.hub.Telemetry` hub::

    from repro.telemetry import Telemetry

    tel = Telemetry(run_dir="runs/wedge-1989")
    with Simulation(config, telemetry=tel) as sim, tel:
        sim.run(300)
        sim.run(400, sample=True)

    # afterwards: runs/wedge-1989/{events.jsonl, metrics.prom, trace.json}
    # and: python -m repro.telemetry.report runs/wedge-1989

See ``docs/observability.md`` for the event schema, exporter formats
and the Perfetto how-to.
"""

from repro.telemetry.events import EventStream
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    US_PER_PARTICLE_BUCKETS,
)
from repro.telemetry.spans import SpanTracer, validate_trace
from repro.telemetry.stream import (
    JobEventTail,
    JsonlFollower,
    snapshot_records,
)

__all__ = [
    "Telemetry",
    "EventStream",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "US_PER_PARTICLE_BUCKETS",
    "SpanTracer",
    "validate_trace",
    "JsonlFollower",
    "JobEventTail",
    "snapshot_records",
    "stitch_fleet_trace",
]


def __getattr__(name):
    # Lazy so `python -m repro.telemetry.stitch` does not import the
    # module twice (runpy warns when the package eagerly imports the
    # submodule being run as __main__).
    if name == "stitch_fleet_trace":
        from repro.telemetry.stitch import stitch_fleet_trace
        return stitch_fleet_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
