"""Property tests for the incremental (temporal-coherence) sort kernel.

The kernel's entire correctness story is two invariants:

* **canonical order** -- after any `update`, the maintained permutation
  sorts the population strictly by ``(cell, row)``;
* **path independence** -- repair and rebuild produce bit-identical
  orders, for any history of cell changes and row surgery, so the
  repair/rebuild decision (a pure performance heuristic) can never
  change a trajectory.

Hypothesis drives random cell-change/surgery programs against both a
forced-repair and a forced-rebuild sorter and demands identical state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ParticleArrays
from repro.core.sortstep import IncrementalSorter
from repro.physics.freestream import Freestream

N_CELLS = 12

seeds = st.integers(min_value=0, max_value=2**31 - 1)

# A surgery program: a sequence of (op, seed) instructions.
programs = st.lists(
    st.tuples(
        st.sampled_from(["move", "remove", "append", "noop"]),
        st.integers(min_value=0, max_value=2**16),
    ),
    min_size=1,
    max_size=6,
)


def _population(seed, n=160):
    rng = np.random.default_rng(seed)
    fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=8.0)
    parts = ParticleArrays.from_freestream(rng, n, fs, (0, 10), (0, 10))
    parts.enable_scratch()
    parts.cell[:] = rng.integers(0, N_CELLS, size=parts.n)
    return parts


def _apply(op, seed, parts):
    rng = np.random.default_rng(seed)
    n = parts.n
    if op == "move" and n:
        k = int(rng.integers(1, max(2, n // 8)))
        idx = rng.choice(n, size=k, replace=False)
        parts.cell[idx] = rng.integers(0, N_CELLS, size=k)
    elif op == "remove" and n > 8:
        mask = np.zeros(n, dtype=bool)
        mask[rng.choice(n, size=int(rng.integers(1, n // 4)), replace=False)] = True
        parts.remove_inplace(mask)
    elif op == "append":
        extra = _population(seed + 1, n=int(rng.integers(1, 24)))
        parts.append_inplace(extra)


def _assert_canonical(order, cell):
    n = cell.shape[0]
    assert np.array_equal(np.sort(order), np.arange(n))
    keys = cell[order].astype(np.int64) * n + order
    if n > 1:
        assert np.all(np.diff(keys) > 0)


class TestPathIndependence:
    @given(seeds, programs)
    @settings(max_examples=40, deadline=None)
    def test_repair_and_rebuild_agree_on_any_history(self, seed, program):
        parts_a = _population(seed)
        parts_b = _population(seed)
        repairer = IncrementalSorter(N_CELLS, rebuild_threshold=1.0)
        rebuilder = IncrementalSorter(N_CELLS, rebuild_threshold=0.0)
        repairer.step(parts_a)
        rebuilder.step(parts_b)
        for op, op_seed in program:
            _apply(op, op_seed, parts_a)
            _apply(op, op_seed, parts_b)
            res_a = repairer.step(parts_a)
            res_b = rebuilder.step(parts_b)
            assert res_a.n == res_b.n
            assert np.array_equal(res_a.order, res_b.order)
            assert np.array_equal(res_a.counts, res_b.counts)
            assert np.array_equal(res_a.offsets, res_b.offsets)
            _assert_canonical(res_a.order, parts_a.cell)

    @given(seeds, programs)
    @settings(max_examples=30, deadline=None)
    def test_moved_count_bounds_and_counts_histogram(self, seed, program):
        parts = _population(seed)
        sorter = IncrementalSorter(N_CELLS, rebuild_threshold=0.5)
        sorter.step(parts)
        for op, op_seed in program:
            _apply(op, op_seed, parts)
            res = sorter.step(parts)
            assert 0 <= res.moved <= res.n
            assert res.moved_fraction <= 1.0
            assert np.array_equal(
                res.counts, np.bincount(parts.cell, minlength=N_CELLS)
            )
            assert res.offsets[-1] == res.n
            _assert_canonical(res.order, parts.cell)
