"""The validation matrix, runnable locally: every registered scenario
passes its golden / closed-form acceptance contract.

These are the tests the CI ``scenarios`` job runs per matrix entry via
``repro run <name> --validate``; here they are grouped for one-command
local runs (``pytest tests/scenarios -m scenarios``).  Marked slow so
the fast CI job stays fast.
"""

import pytest

from repro.scenarios import all_specs, validate_scenario

pytestmark = [pytest.mark.scenarios, pytest.mark.slow]


@pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
def test_scenario_passes_its_contract(spec):
    report = validate_scenario(spec)
    assert report.ok, "\n" + report.to_text()
