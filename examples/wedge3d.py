#!/usr/bin/env python
"""The 3-D extension: a z-periodic slab over the same wedge.

The paper's Future Work asks for a 3-D code.  The slab configuration
(wedge extruded as an infinite prism, periodic span) is the natural
first step because the 2-D solution is its exact reference: collapsing
the 3-D field along the span must reproduce figure 1's shock.  This
example runs both and prints the comparison.

Run:
    python examples/wedge3d.py
"""

import time

import numpy as np

from repro import Domain, Freestream, Simulation, SimulationConfig, Wedge
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.simulation3d import Simulation3D, Simulation3DConfig
from repro.geometry.domain3d import Domain3D

WEDGE = Wedge(x_leading=10.0, base=12.5, angle_deg=30.0)
NX, NY, NZ = 49, 32, 6
STEPS = (250, 250)


def main() -> None:
    # 3-D slab: density per unit cube; same areal density as the 2-D
    # reference (per-column particles match).
    density_3d = 2.5
    fs3 = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=density_3d)
    cfg3 = Simulation3DConfig(
        domain=Domain3D(NX, NY, NZ), freestream=fs3, wedge=WEDGE, seed=11
    )
    sim3 = Simulation3D(cfg3)
    print(f"3-D slab: {sim3.particles.n} particles in {NX}x{NY}x{NZ} cells")
    t0 = time.time()
    sim3.run(STEPS[0])
    sim3.run(STEPS[1], sample=True)
    print(f"  done in {time.time() - t0:.0f} s")

    fs2 = Freestream(
        mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=density_3d * NZ
    )
    cfg2 = SimulationConfig(
        domain=Domain(NX, NY), freestream=fs2, wedge=WEDGE, seed=11
    )
    sim2 = Simulation(cfg2)
    print(f"2-D reference: {sim2.particles.n} particles in {NX}x{NY} cells")
    t0 = time.time()
    sim2.run(STEPS[0])
    sim2.run(STEPS[1], sample=True)
    print(f"  done in {time.time() - t0:.0f} s")

    rho3 = sim3.density_ratio_field()   # span-collapsed
    rho2 = sim2.density_ratio_field()

    fit3 = fit_shock_angle(rho3, WEDGE)
    fit2 = fit_shock_angle(rho2, WEDGE)
    p3 = post_shock_plateau(rho3, WEDGE, fit3)
    p2 = post_shock_plateau(rho2, WEDGE, fit2)
    diff = np.abs(rho3 - rho2).mean()

    print("\nspan-collapsed 3-D vs 2-D reference:")
    print(f"  shock angle   : {fit3.angle_deg:6.2f} vs {fit2.angle_deg:6.2f} deg")
    print(f"  density ratio : {p3:6.2f} vs {p2:6.2f}")
    print(f"  mean |drho|   : {diff:6.3f}")
    print(
        "\nThe infinite-prism slab reproduces the 2-D solution -- the "
        "added dimension\nchanges the bookkeeping (3-D cells, z "
        "periodicity), not the physics."
    )


if __name__ == "__main__":
    main()
