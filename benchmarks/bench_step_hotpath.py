"""HOTPATH -- steps/sec of the fused step loop vs the legacy baseline.

Runs the default Mach-4 wedge problem twice from the same seed -- once
with the scratch-buffer hot path (counting sort, in-place reorders,
adjacent-pair collisions) and once on the legacy allocation-per-step
kernels (``Simulation(cfg, hotpath=False)``) -- and reports the
steps/sec ratio plus the hot path's per-phase wall-clock ledger in the
paper's motion / sort / selection / collision split.

Standalone: ``PYTHONPATH=src python benchmarks/bench_step_hotpath.py``
writes ``BENCH_step_hotpath.json`` at the repository root (the
gitignored ``benchmarks/out/`` is for the figure records).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.perf import PAPER_PHASES
from repro.physics.freestream import Freestream

WARMUP_STEPS = 5
TIMED_STEPS = 30
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def default_config(density: float = 40.0, seed: int = 1989) -> SimulationConfig:
    """The paper's Mach-4 wedge geometry at the benchmark density."""
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


def _timed_run(hotpath: bool, config: SimulationConfig):
    sim = Simulation(config, hotpath=hotpath)
    sim.run(WARMUP_STEPS)
    sim.perf.reset()
    t0 = time.perf_counter()
    sim.run(TIMED_STEPS)
    elapsed = time.perf_counter() - t0
    return sim, elapsed


def run_benchmark(config: SimulationConfig | None = None) -> dict:
    """Measure both paths and return the comparison record."""
    config = config or default_config()
    legacy_sim, legacy_s = _timed_run(False, config)
    hot_sim, hot_s = _timed_run(True, config)

    n = hot_sim.particles.n
    per_step = hot_sim.perf.per_step_seconds()
    result = {
        "bench": "step_hotpath",
        "config": {
            "domain": [config.domain.nx, config.domain.ny],
            "mach": config.freestream.mach,
            "density": config.freestream.density,
            "lambda_mfp": config.freestream.lambda_mfp,
            "seed": config.seed,
        },
        "n_particles": n,
        "timed_steps": TIMED_STEPS,
        "legacy": {
            "steps_per_sec": TIMED_STEPS / legacy_s,
            "us_per_particle_step": legacy_s / TIMED_STEPS / n * 1e6,
        },
        "hotpath": {
            "steps_per_sec": TIMED_STEPS / hot_s,
            "us_per_particle_step": hot_s / TIMED_STEPS / n * 1e6,
            "phase_seconds_per_step": per_step,
            "phase_fractions": hot_sim.perf.fractions(),
        },
        "speedup": legacy_s / hot_s,
        "paper_phases": list(PAPER_PHASES),
    }
    return result


def main() -> None:
    result = run_benchmark()
    out = REPO_ROOT / "BENCH_step_hotpath.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"particles: {result['n_particles']}")
    print(
        "legacy  : {:.2f} steps/s".format(result["legacy"]["steps_per_sec"])
    )
    print(
        "hotpath : {:.2f} steps/s".format(result["hotpath"]["steps_per_sec"])
    )
    print("speedup : {:.2f}x".format(result["speedup"]))
    for name, frac in result["hotpath"]["phase_fractions"].items():
        print(
            "  {:<10s} {:6.1%}  ({:.2f} ms/step)".format(
                name,
                frac,
                result["hotpath"]["phase_seconds_per_step"][name] * 1e3,
            )
        )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
