"""Integration tests for the 3-D slab extension."""

import numpy as np
import pytest

from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.simulation3d import Simulation3D, Simulation3DConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.domain3d import Domain3D
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.slow


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=4.0)


class TestDomain3D:
    def test_cell_index_layout(self):
        d = Domain3D(4, 3, 2)
        idx = d.cell_index(np.array([1.5]), np.array([2.5]), np.array([0.5]))
        assert idx[0] == (1 * 3 + 2) * 2 + 0

    def test_collapse_matches_2d_layout(self, rng):
        d = Domain3D(10, 8, 4)
        xy = d.xy_domain()
        x = rng.uniform(0, 10, 200)
        y = rng.uniform(0, 8, 200)
        z = rng.uniform(0, 4, 200)
        c3 = d.cell_index(x, y, z)
        assert np.array_equal(d.collapse_to_xy(c3), xy.cell_index(x, y))

    def test_coords_roundtrip(self, rng):
        d = Domain3D(6, 5, 3)
        idx = rng.integers(0, d.n_cells, size=50)
        i, j, k = d.coords_from_cell_index(idx)
        assert np.array_equal((i * 5 + j) * 3 + k, idx)

    def test_wrap_z(self):
        d = Domain3D(4, 4, 2)
        assert d.wrap_z(np.array([2.5]))[0] == pytest.approx(0.5)
        assert d.wrap_z(np.array([-0.5]))[0] == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(Exception):
            Domain3D(1, 4, 2)
        with pytest.raises(Exception):
            Domain3D(4, 4, 0)


class TestSimulation3D:
    def test_seeding_density(self, fs):
        cfg = Simulation3DConfig(
            domain=Domain3D(20, 12, 4),
            freestream=fs,
            wedge=Wedge(x_leading=5, base=6, angle_deg=30),
            seed=5,
        )
        sim = Simulation3D(cfg)
        open_volume = sim._vf3_flat.sum()
        assert sim.particles.n == pytest.approx(
            fs.density * open_volume, rel=0.01
        )
        assert sim.particles.z.min() >= 0
        assert sim.particles.z.max() <= 4.0

    def test_steps_and_z_periodicity(self, fs):
        cfg = Simulation3DConfig(
            domain=Domain3D(20, 12, 2), freestream=fs, wedge=None, seed=5
        )
        sim = Simulation3D(cfg)
        out = sim.run(15)
        assert out["n_flow"] > 0
        assert sim.particles.z.min() >= 0.0
        assert sim.particles.z.max() < 2.0

    def test_collisions_happen_and_conserve(self, fs):
        cfg = Simulation3DConfig(
            domain=Domain3D(16, 10, 3), freestream=fs, wedge=None, seed=6
        )
        sim = Simulation3D(cfg)
        out = sim.run(10)
        assert out["n_collisions"] > 0
        sim.particles.validate()

    def test_run_validates(self, fs):
        cfg = Simulation3DConfig(
            domain=Domain3D(16, 10, 2), freestream=fs, wedge=None, seed=6
        )
        with pytest.raises(ConfigurationError):
            Simulation3D(cfg).run(0)

    def test_wedge_must_fit(self, fs):
        with pytest.raises(Exception):
            Simulation3DConfig(
                domain=Domain3D(16, 10, 2),
                freestream=fs,
                wedge=Wedge(x_leading=12, base=10, angle_deg=30),
            )


class TestSpanCollapseValidation:
    """The 3-D slab must reproduce the 2-D solution when collapsed."""

    @pytest.fixture(scope="class")
    def pair_of_runs(self):
        wedge = Wedge(x_leading=8.0, base=10.0, angle_deg=30.0)
        fs3 = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=3.0)
        cfg3 = Simulation3DConfig(
            domain=Domain3D(40, 26, 4), freestream=fs3, wedge=wedge, seed=9
        )
        sim3 = Simulation3D(cfg3)
        sim3.run(150)
        sim3.run(150, sample=True)

        fs2 = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=12.0)
        cfg2 = SimulationConfig(
            domain=Domain(40, 26), freestream=fs2, wedge=wedge, seed=9
        )
        sim2 = Simulation(cfg2)
        sim2.run(150)
        sim2.run(150, sample=True)
        return sim3, sim2, wedge

    def test_density_fields_match(self, pair_of_runs):
        sim3, sim2, wedge = pair_of_runs
        rho3 = sim3.density_ratio_field()
        rho2 = sim2.density_ratio_field()
        # Compare away from the cut-cell band (different vf handling of
        # noise) -- mean absolute difference small.
        open_cells = sim2.volume_fractions > 0.99
        diff = np.abs(rho3[open_cells] - rho2[open_cells])
        assert diff.mean() < 0.15

    def test_shock_angle_matches(self, pair_of_runs):
        sim3, sim2, wedge = pair_of_runs
        fit3 = fit_shock_angle(sim3.density_ratio_field(), wedge)
        fit2 = fit_shock_angle(sim2.density_ratio_field(), wedge)
        # The two fits are independent realizations on a coarse 40x26
        # grid; the fitted-angle difference measured across seeds spans
        # -3.1..+1.1 deg (sigma ~ 1.8 deg).  5 deg separates that
        # realization noise from a structural collapse failure (a
        # broken z-average shifts the fit by >10 deg).
        assert fit3.angle_deg == pytest.approx(fit2.angle_deg, abs=5.0)

    def test_plateau_matches(self, pair_of_runs):
        sim3, sim2, wedge = pair_of_runs
        p3 = post_shock_plateau(sim3.density_ratio_field(), wedge)
        p2 = post_shock_plateau(sim2.density_ratio_field(), wedge)
        assert p3 == pytest.approx(p2, rel=0.1)
