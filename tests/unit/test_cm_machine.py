"""Unit tests for the CM-2 machine model and VP geometry."""

import numpy as np
import pytest

from repro.cm.machine import CM2, VPGeometry
from repro.errors import ConfigurationError, MachineError


class TestCM2:
    def test_paper_configuration(self):
        m = CM2()
        assert m.n_processors == 32 * 1024
        assert m.hypercube_dimension == 15

    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            CM2(n_processors=3000)

    def test_backcompat_memory_reservation(self):
        # The paper: "25% of the memory is reserved for
        # back-compatibility".
        m = CM2(memory_bits=64 * 1024, backcompat_reserved=0.25)
        assert m.usable_memory_bits == 48 * 1024

    def test_max_virtual_processors_scales_with_memory(self):
        m = CM2(n_processors=1024, memory_bits=1024, backcompat_reserved=0.0)
        # 1024 bits / 512 bits-per-particle = 2 VPs per processor.
        assert m.max_virtual_processors(512) == 2048

    def test_reclaiming_backcompat_memory_allows_bigger_runs(self):
        # Future Work: C* 5.0 reclaims the reservation, enabling 1M
        # particle runs.
        old = CM2(backcompat_reserved=0.25)
        new = CM2(backcompat_reserved=0.0)
        bits = 16 * 32
        assert new.max_virtual_processors(bits) > old.max_virtual_processors(bits)

    def test_invalid_reservation(self):
        with pytest.raises(ConfigurationError):
            CM2(backcompat_reserved=1.0)


class TestVPGeometry:
    def test_vpr_rounds_up(self):
        m = CM2(n_processors=1024)
        assert m.geometry(1024).vpr == 1
        assert m.geometry(1025).vpr == 2
        assert m.geometry(16 * 1024).vpr == 16

    def test_block_mapping(self):
        g = CM2(n_processors=4).geometry(8)  # vpr = 2
        assert g.physical_processor(np.array([0, 1, 2, 3])).tolist() == [0, 0, 1, 1]

    def test_vp_out_of_range(self):
        g = CM2(n_processors=4).geometry(8)
        with pytest.raises(MachineError):
            g.physical_processor(np.array([8]))

    def test_offchip_fraction_identity_is_zero(self):
        g = CM2(n_processors=4).geometry(16)
        vp = np.arange(16)
        assert g.offchip_fraction(vp, vp) == 0.0

    def test_offchip_fraction_reversal(self):
        g = CM2(n_processors=4).geometry(8)
        src = np.arange(8)
        dst = src[::-1].copy()
        # Reversal moves everything except the middle-block self-maps.
        assert g.offchip_fraction(src, dst) == 1.0

    def test_pair_offchip_full_at_vpr1(self):
        # VPR 1: every even/odd pair straddles two processors -- the
        # Figure 7 mechanism.
        g = CM2(n_processors=64).geometry(64)
        assert g.pair_offchip_fraction() == 1.0

    def test_pair_offchip_zero_at_even_vpr(self):
        for vpr in (2, 4, 16):
            g = CM2(n_processors=64).geometry(64 * vpr)
            assert g.pair_offchip_fraction() == 0.0

    def test_shape_mismatch_raises(self):
        g = CM2(n_processors=4).geometry(8)
        with pytest.raises(MachineError):
            g.offchip_fraction(np.arange(4), np.arange(5))

    def test_empty_send_pattern(self):
        g = CM2(n_processors=4).geometry(8)
        assert g.offchip_fraction(np.empty(0, int), np.empty(0, int)) == 0.0

    def test_nonpositive_vp_count(self):
        with pytest.raises(ConfigurationError):
            CM2(n_processors=4).geometry(0)
