"""Span tracing: nested timed regions exportable to Chrome trace JSON.

This generalizes :meth:`repro.perf.PerfLedger.phase` (one flat
seconds-by-name accumulator) into *spans*: individual timed intervals
with step / shard / worker-pid attributes that can be laid out on a
timeline.  Two recording paths feed one stream:

* **driver-side** -- :class:`SpanTracer` collects spans in a plain
  Python list (the serial engine's phases, step-level envelopes, audit
  and checkpoint intervals);
* **worker-side** -- shard workers append fixed-width rows to
  preallocated shared-memory *rings* (:func:`ring_append`) using the
  phase timestamps they already take; the parent drains the rings at
  the step barrier (:func:`drain_ring`) and merges them into the
  tracer.  Ring rows carry only numbers (a name *id* into
  :data:`WORKER_SPAN_NAMES`), so no serialization crosses the process
  boundary.

``perf_counter`` on Linux is CLOCK_MONOTONIC, which is system-wide, so
worker and driver timestamps share one axis and a W-worker step renders
as W aligned tracks in Perfetto / ``chrome://tracing`` with the
migration barriers visible as the gap between each worker's ``phase_a``
and ``phase_b`` spans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np

#: Name table for ring-encoded worker spans (the row stores the index).
#: ``phase_a``/``phase_b`` are the two barrier-separated halves of the
#: sharded step protocol; the rest are the algorithm phases.
WORKER_SPAN_NAMES = (
    "phase_a",
    "phase_b",
    "motion",
    "exchange",
    "sort",
    "selection",
    "collision",
    "reservoir",
    # Appended (index stability): cell indexing + mover detection for
    # the incremental sort kernel.
    "index",
)

#: Ring row layout: ``(name_id, t_start, t_end, step, tid, pid)``.
RING_FIELDS = 6

#: Ring state layout: ``(cursor, dropped)``.
RING_STATE = 2


def ring_append(
    ring: np.ndarray,
    state: np.ndarray,
    name_id: int,
    t0: float,
    t1: float,
    step: int,
    tid: int,
    pid: int,
) -> None:
    """Append one span row to a shared ring; drop (and count) on full."""
    cur = int(state[0])
    if cur >= ring.shape[0]:
        state[1] += 1
        return
    ring[cur] = (name_id, t0, t1, step, tid, pid)
    state[0] = cur + 1


def drain_ring(ring: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Copy out and clear a ring's appended rows (parent side)."""
    cur = int(state[0])
    rows = ring[:cur].copy()
    state[0] = 0
    return rows


class SpanTracer:
    """Bounded in-memory span buffer with Chrome-trace export.

    Spans are plain dicts (``name, ts, dur, step, tid, pid``; seconds on
    the perf_counter axis).  The buffer is bounded: past ``max_spans``
    new spans are dropped and counted rather than growing without
    limit -- a telemetry layer must never be the thing that OOMs the
    run it is watching.
    """

    def __init__(self, max_spans: int = 200_000, pid: int = 0) -> None:
        self.max_spans = int(max_spans)
        self.pid = int(pid)
        self.spans: List[dict] = []
        self.dropped = 0
        self._depth = 0

    # -- recording -------------------------------------------------------

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        step: Optional[int] = None,
        tid: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        """Record one completed span (drops and counts past the bound)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(
            {
                "name": name,
                "ts": float(t0),
                "dur": float(t1 - t0),
                "step": step,
                "tid": int(tid),
                "pid": self.pid if pid is None else int(pid),
            }
        )

    @contextmanager
    def span(self, name: str, step: Optional[int] = None) -> Iterator[None]:
        """Time the enclosed block as one span (driver-side)."""
        t0 = time.perf_counter()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.record(name, t0, time.perf_counter(), step=step)

    def stamp_pending(self, step: int) -> None:
        """Assign ``step`` to spans recorded before the index was known.

        The serial engine's phase spans are recorded mid-step, before
        the step counter advances; the hub stamps them when the step's
        diagnostics arrive.
        """
        for span in reversed(self.spans):
            if span["step"] is not None:
                break
            span["step"] = step

    def absorb_ring_rows(self, rows: np.ndarray) -> None:
        """Merge drained worker ring rows (name ids -> names).

        ``tolist()`` converts the whole block to Python scalars in one
        C call -- per-element numpy indexing here was the telemetry
        hot spot at the sampling cadence.
        """
        room = self.max_spans - len(self.spans)
        if room < rows.shape[0]:
            self.dropped += int(rows.shape[0] - max(room, 0))
            rows = rows[: max(room, 0)]
        if not rows.shape[0]:
            return
        names = WORKER_SPAN_NAMES
        append = self.spans.append
        for name_id, t0, t1, step, tid, pid in rows.tolist():
            append(
                {
                    "name": names[int(name_id)],
                    "ts": t0,
                    "dur": t1 - t0,
                    "step": int(step),
                    "tid": int(tid),
                    "pid": int(pid),
                }
            )

    # -- export ----------------------------------------------------------

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (Perfetto-loadable) of the buffer.

        Spans become complete (``ph: "X"``) events with microsecond
        timestamps relative to the earliest span, one track per
        ``(pid, tid)``; thread-name metadata labels shard tracks.
        """
        events: List[dict] = []
        if self.spans:
            t_base = min(s["ts"] for s in self.spans)
            tracks = set()
            for s in self.spans:
                tracks.add((s["pid"], s["tid"]))
                events.append(
                    {
                        "ph": "X",
                        "name": s["name"],
                        "ts": (s["ts"] - t_base) * 1e6,
                        "dur": max(s["dur"], 0.0) * 1e6,
                        "pid": s["pid"],
                        "tid": s["tid"],
                        "args": {"step": s["step"]},
                    }
                )
            for pid, tid in sorted(tracks):
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            "name": "driver" if tid == 0 and pid == self.pid
                            else f"shard {tid}"
                        },
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }


def validate_trace(trace: dict) -> List[str]:
    """Sanity-check a Chrome trace dict; returns a list of problems.

    Checks the two properties a timeline viewer needs: every duration
    event opened (``B``) on a track is closed (``E``) in order, and no
    complete (``X``) event has a negative duration or missing fields.
    An empty list means the trace is well-formed.
    """
    problems: List[str] = []
    open_stacks: Dict[tuple, int] = {}
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
        elif ph == "E":
            depth = open_stacks.get(key, 0)
            if depth <= 0:
                problems.append(f"event {i}: E without matching B on {key}")
            else:
                open_stacks[key] = depth - 1
        elif ph == "X":
            if "ts" not in ev or "name" not in ev:
                problems.append(f"event {i}: X event missing ts/name")
            elif ev.get("dur", 0) < 0:
                problems.append(f"event {i}: negative duration")
        elif ph == "M":
            continue
    for key, depth in open_stacks.items():
        if depth:
            problems.append(f"track {key}: {depth} unclosed B event(s)")
    return problems
