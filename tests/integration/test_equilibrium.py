"""Equilibrium physics of the collision algorithm.

The deepest correctness checks: repeated collisions must drive any
initial distribution to the Maxwell-Boltzmann equilibrium with classical
equipartition between translational and rotational degrees of freedom --
the statement the collision algorithm's eq. (18) construction has to
earn, not assume.
"""

import numpy as np
import pytest

from repro.baselines import BaganoffSelection, HeatBath
from repro.core.collision import collide_pairs
from repro.core.particles import ParticleArrays
from repro.physics.distributions import (
    energy_shares,
    excess_kurtosis,
    speed_distribution_chi2,
    temperature_from_velocities,
)
from repro.physics.freestream import Freestream
from repro.rng import make_rng, random_permutation_table


def relax(pop, rng, rounds):
    """Collide random disjoint pairs for a number of full rounds."""
    for _ in range(rounds):
        order = rng.permutation(pop.n)
        n_pairs = pop.n // 2
        collide_pairs(
            pop, order[0 : 2 * n_pairs : 2], order[1 : 2 * n_pairs : 2], rng=rng
        )


@pytest.fixture
def cold_rotation_population():
    """Translationally hot, rotationally frozen: must equilibrate."""
    rng = make_rng(42)
    fs = Freestream(mach=4.0, c_mp=0.3, lambda_mfp=0.5, density=8.0)
    pop = ParticleArrays.from_freestream(rng, 40_000, fs, (0, 1), (0, 1))
    pop.u -= fs.speed  # remove drift: pure thermal bath
    pop.rot[:] = 0.0
    return pop, rng, fs


class TestEquipartition:
    def test_rotational_relaxation_to_two_fifths(self, cold_rotation_population):
        pop, rng, fs = cold_rotation_population
        relax(pop, rng, rounds=30)
        f_tr, f_rot = energy_shares(
            np.column_stack((pop.u, pop.v, pop.w)), pop.rot
        )
        # Diatomic equipartition: 3/5 translational, 2/5 rotational.
        assert f_rot == pytest.approx(0.4, abs=0.02)
        assert f_tr == pytest.approx(0.6, abs=0.02)

    def test_component_temperatures_equalize(self, cold_rotation_population):
        pop, rng, fs = cold_rotation_population
        pop.v *= 0.1  # anisotropic start
        relax(pop, rng, rounds=30)
        variances = [pop.u.var(), pop.v.var(), pop.w.var(),
                     pop.rot[:, 0].var(), pop.rot[:, 1].var()]
        mean_var = np.mean(variances)
        for var in variances:
            assert var == pytest.approx(mean_var, rel=0.05)

    def test_energy_conserved_through_relaxation(self, cold_rotation_population):
        pop, rng, fs = cold_rotation_population
        e0 = pop.total_energy()
        relax(pop, rng, rounds=30)
        assert pop.total_energy() == pytest.approx(e0, rel=1e-12)

    def test_monatomic_has_no_rotational_energy(self):
        rng = make_rng(7)
        fs = Freestream(mach=4.0, c_mp=0.3, lambda_mfp=0.5, density=8.0)
        pop = ParticleArrays.from_freestream(
            rng, 10_000, fs, (0, 1), (0, 1), rotational_dof=0
        )
        relax(pop, rng, rounds=10)
        assert pop.rotational_energy() == 0.0

    def test_vibration_hook_equipartition(self):
        # Future Work: extra internal DOF; 4 internal + 3 translational
        # -> internal fraction 4/7.
        rng = make_rng(9)
        fs = Freestream(mach=4.0, c_mp=0.3, lambda_mfp=0.5, density=8.0)
        pop = ParticleArrays.from_freestream(
            rng, 40_000, fs, (0, 1), (0, 1), rotational_dof=4
        )
        pop.u -= fs.speed
        pop.rot[:] = 0.0
        relax(pop, rng, rounds=40)
        _, f_int = energy_shares(np.column_stack((pop.u, pop.v, pop.w)), pop.rot)
        assert f_int == pytest.approx(4 / 7, abs=0.03)


class TestMaxwellization:
    def test_rectangular_relaxes_to_maxwell_speed_distribution(self):
        rng = make_rng(3)
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=2.0, density=100.0)
        bath = HeatBath(n_particles=30_000, n_cells=30, freestream=fs)
        pop = bath.initial_population(rng)
        relax(pop, rng, rounds=25)
        c_mp_now = temperature_from_velocities(
            np.column_stack((pop.u, pop.v, pop.w)), c_mp_reference=True
        )
        chi2 = speed_distribution_chi2(
            np.column_stack((pop.u, pop.v, pop.w)), c_mp_now
        )
        assert chi2 < 3.0

    def test_kurtosis_converges_to_gaussian(self):
        rng = make_rng(4)
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=2.0, density=100.0)
        bath = HeatBath(n_particles=20_000, n_cells=20, freestream=fs)
        pop = bath.initial_population(rng)
        k0 = excess_kurtosis(pop.u[:, None])[0]
        relax(pop, rng, rounds=20)
        k1 = excess_kurtosis(pop.u[:, None])[0]
        assert k0 < -1.0
        assert abs(k1) < 0.1

    def test_drifting_bath_keeps_its_drift(self):
        # Collisions conserve momentum, so the bulk velocity is
        # invariant while the shape Gaussianizes.
        rng = make_rng(5)
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=2.0, density=100.0)
        pop = ParticleArrays.from_freestream(
            rng, 20_000, fs, (0, 1), (0, 1), rectangular=True
        )
        drift0 = pop.u.mean()
        relax(pop, rng, rounds=20)
        assert pop.u.mean() == pytest.approx(drift0, abs=1e-12)
