"""API quality meta-tests: docstrings, importability, example hygiene.

These enforce the documentation deliverable mechanically: every public
module, class and function in the library carries a docstring, every
module imports cleanly, and every example script is importable and
exposes a ``main``.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent
EXAMPLES = pathlib.Path(repro.__file__).parents[2] / "examples"


def _walk_modules():
    for info in pkgutil.walk_packages(
        [str(SRC_ROOT)], prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue
        yield info.name


ALL_MODULES = sorted(_walk_modules())


class TestModules:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_imports_and_documented(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__ and mod.__doc__.strip(), (
            f"{module_name} lacks a module docstring"
        )

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_callables_documented(self, module_name):
        mod = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-exports documented at their home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, meth in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(meth) and not (
                        meth.__doc__ and meth.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, (
            f"{module_name}: undocumented public API: {undocumented}"
        )


class TestExamples:
    def _example_files(self):
        return sorted(EXAMPLES.glob("*.py"))

    def test_examples_exist(self):
        assert len(self._example_files()) >= 3

    @pytest.mark.parametrize(
        "path",
        sorted((pathlib.Path(repro.__file__).parents[2] / "examples").glob("*.py")),
        ids=lambda p: p.stem,
    )
    def test_example_compiles_and_has_main(self, path):
        source = path.read_text()
        compiled = compile(source, str(path), "exec")
        assert "def main(" in source, f"{path.name} lacks a main()"
        assert '"""' in source[:400], f"{path.name} lacks a docstring"
        assert "__main__" in source, f"{path.name} lacks a __main__ guard"
