"""Random number utilities.

The reproduction needs two kinds of randomness:

* **High quality** streams for physics decisions (collision acceptance,
  initial Maxwellian sampling, permutation-table initialization).  These
  wrap :class:`numpy.random.Generator` (PCG64) and are always explicitly
  seeded so every experiment is reproducible.

* **"Quick & dirty"** low-order-bit randomness, as used by the paper's
  integer CM-2 implementation: the low bits of a particle's fixed-point
  position word serve as a small random number of unspecified
  distribution for low-impact draws (random signs, random transposition
  choices, stochastic-rounding bits, sort-key mixing).  That variant
  lives in :mod:`repro.fixedpoint.qformat` next to the fixed-point
  representation it reads; this module provides the high-quality
  streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]

#: Default seed used when an experiment does not specify one.  Chosen
#: arbitrarily; fixing it makes `pytest` runs deterministic.
DEFAULT_SEED: int = 19890101

#: seed -> Philox key words, filled by :func:`shard_stream`.  Keys are
#: deterministic functions of the seed, so caching cannot change any
#: stream; the cap only guards against unbounded growth if something
#: iterates seeds.
_KEY_CACHE: dict = {}
_KEY_CACHE_MAX = 256


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Accepts ``None`` (uses :data:`DEFAULT_SEED`), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (passed
    through unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_streams(seed: SeedLike, n: int) -> list:
    """Split a seed into ``n`` statistically independent generators.

    Used to give each sub-system (motion, collision, reservoir, ...) its
    own stream so adding draws to one phase does not perturb another --
    the standard trick for keeping regression tests stable while the
    code evolves.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} streams")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def shard_stream(
    seed: SeedLike, shard_id: int, step: int, replica: int = 0
) -> np.random.Generator:
    """Counter-based stream for one ``(seed, replica, shard_id, step)`` key.

    The sharded execution backend gives every domain shard a fresh
    generator each time step, keyed -- not advanced -- by where and when
    it runs: the Philox bit generator is counter-based, so the stream is
    a pure function of ``(seed, replica, shard_id, step)`` with no
    sequential state to ship between processes or save in checkpoints.
    Streams for distinct keys are disjoint segments of one 2**256
    counter space (``replica``, ``shard_id`` and ``step`` occupy the
    three high counter words; a single step never draws anywhere near
    the 2**64 values that would overflow into a neighbouring key), which
    makes any worker count run-to-run reproducible and independent of
    barrier arrival order.

    ``replica`` keys the ensemble engine's statistically independent
    Monte Carlo members: replica ``r`` of a batched run draws from
    exactly the streams a solo run keyed for ``r`` would, which is what
    makes batched-vs-solo execution bitwise comparable.  The default of
    0 occupies the counter word that was previously hardwired to 0, so
    every existing 3-key call sees an unchanged stream.
    """
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "shard_stream needs a stateless seed (int or SeedSequence), "
            "not a live Generator"
        )
    if shard_id < 0 or step < 0:
        raise ValueError("shard_id and step must be non-negative")
    if replica < 0:
        raise ValueError("replica must be non-negative")
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, np.random.SeedSequence):
        key = seed.generate_state(2, np.uint64)
    else:
        # Spinning up a SeedSequence costs ~20us -- real money for the
        # ensemble engine, which keys R fresh streams every step from
        # the same integer seed.  The entropy -> key expansion is a pure
        # function, so cache it per seed (bounded: an engine only ever
        # uses one).
        seed = int(seed)
        key = _KEY_CACHE.get(seed)
        if key is None:
            if len(_KEY_CACHE) >= _KEY_CACHE_MAX:
                _KEY_CACHE.clear()
            key = np.random.SeedSequence(seed).generate_state(2, np.uint64)
            key.setflags(write=False)
            _KEY_CACHE[seed] = key
    counter = np.array([0, replica, shard_id, step], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key, counter=counter))


def random_signs(rng: np.random.Generator, shape) -> np.ndarray:
    """Return an array of independent, equally probable +1/-1 values.

    Used by the collision algorithm to assign a random sign to every
    component of the permuted relative-velocity vector (any sign choice
    preserves eq. (18) of the paper).
    """
    return rng.integers(0, 2, size=shape, dtype=np.int8) * 2 - 1


def random_permutation_table(
    rng: np.random.Generator, n_entries: int, length: int = 5
) -> np.ndarray:
    """Build a table of random permutations of ``range(length)``.

    The paper initializes particle permutation vectors from "a table
    stored on the front end computer"; this builds that table with the
    Knuth (Fisher-Yates) shuffle, vectorized via argsort of uniform
    keys (each row's ranking of i.i.d. uniforms is a uniform random
    permutation).

    Returns an ``(n_entries, length)`` int8 array where each row is a
    permutation of ``0..length-1``.
    """
    if n_entries < 0:
        raise ValueError(f"n_entries must be non-negative, got {n_entries}")
    keys = rng.random((n_entries, length))
    return np.argsort(keys, axis=1).astype(np.int8)


def random_transposition_pairs(
    rng: np.random.Generator, n: int, length: int = 5
) -> tuple:
    """Draw ``n`` random transpositions for permutations of ``length``.

    Following the paper (after Aldous & Diaconis), a "random
    transposition" swaps a uniformly chosen element with the first
    element.  Returns ``(j,)`` -- the indices to swap with element 0.
    The choice ``j == 0`` is allowed (identity transposition), matching
    the card-shuffling model whose n log n mixing-time bound the paper
    cites.
    """
    j = rng.integers(0, length, size=n)
    return (j,)
