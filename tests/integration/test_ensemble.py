"""Replica-batched ensemble engine: bitwise contract and plumbing.

The load-bearing guarantee is that replica ``r`` of a batched
:class:`~repro.ensemble.EnsembleEngine` run is *bitwise identical* to a
solo run of the same engine keyed for ``r`` alone -- every particle
column, reservoir, sampler accumulator and surface tally.  That is what
makes ensemble results auditable: any member of a batch can be replayed
solo for debugging and produces the same trajectory float for float.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.particles import ParticleArrays
from repro.core.sampling import EnsembleSampler, ensemble_statistic
from repro.core.simulation import SimulationConfig
from repro.ensemble import (
    EnsembleEngine,
    replica_state,
    verify_replica_equality,
)
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.io.snapshots import load_ensemble, save_ensemble
from repro.physics.freestream import Freestream
from repro.physics.molecules import hard_sphere
from repro.rng import random_permutation_table

pytestmark = pytest.mark.ensemble


def _small_config(seed: int = 7, density: float = 4.0, **kw) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=32, ny=24),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=8.0, base=12.0, angle_deg=25.0),
        seed=seed,
        **kw,
    )


class TestBitwiseReplicaEquality:
    def test_batched_matches_solo_with_sampling(self):
        """R=3, a few steps, sampled tail: the core contract."""
        verify_replica_equality(
            _small_config(), n_replicas=3, transient=4, average=3
        )

    def test_equality_across_refills_and_removals(self):
        """Long enough to cross plunger refills and outlet removals."""
        verify_replica_equality(
            _small_config(seed=11), n_replicas=2, transient=25, average=10
        )

    def test_equality_with_speed_dependent_selection(self):
        """Hard-sphere molecules exercise the speed-factor branch."""
        verify_replica_equality(
            _small_config(model=hard_sphere()),
            n_replicas=2,
            transient=4,
            average=2,
        )

    def test_replica_states_differ_from_each_other(self):
        """Distinct replica keys must give distinct trajectories."""
        eng = EnsembleEngine(_small_config(), n_replicas=2)
        eng.run(5)
        a = replica_state(eng, 0)
        b = replica_state(eng, 1)
        assert not np.array_equal(a["flow_u"], b["flow_u"])


class TestEngineRestrictions:
    def test_diffuse_wall_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleEngine(
                _small_config(wall_model="diffuse"), n_replicas=2
            )

    def test_live_generator_seed_rejected(self):
        import dataclasses

        cfg = dataclasses.replace(
            _small_config(), seed=np.random.default_rng(1)
        )
        with pytest.raises(ConfigurationError):
            EnsembleEngine(cfg, n_replicas=2)

    def test_duplicate_replica_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleEngine(_small_config(), replica_ids=[1, 1])

    def test_negative_replica_id_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleEngine(_small_config(), replica_ids=[-1, 0])

    def test_zero_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleEngine(_small_config(), n_replicas=0)


class TestBlockedSurgery:
    """Unit checks of the replica-blocked particle-array operations."""

    @staticmethod
    def _blocked(sizes):
        rng = np.random.default_rng(3)
        blocks = []
        for n in sizes:
            blocks.append(
                ParticleArrays(
                    x=rng.random(n),
                    y=rng.random(n),
                    u=rng.random(n),
                    v=rng.random(n),
                    w=rng.random(n),
                    rot=rng.random((n, 2)),
                    perm=random_permutation_table(rng, n),
                    cell=np.zeros(n, dtype=np.int64),
                )
            )
        import functools

        parts = functools.reduce(ParticleArrays.concatenate, blocks)
        parts.enable_scratch()
        starts = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        return parts, starts, blocks

    def test_remove_blocked_matches_solo_removal(self):
        parts, starts, blocks = self._blocked([6, 4, 5])
        rng = np.random.default_rng(9)
        mask = rng.random(parts.n) < 0.4
        u_before = parts.u.copy()
        new_starts = parts.remove_blocked_inplace(mask, starts)
        for r, blk in enumerate(blocks):
            blk.enable_scratch()
            blk.remove_inplace(mask[starts[r] : starts[r + 1]])
            got = parts.u[new_starts[r] : new_starts[r + 1]]
            assert np.array_equal(got, blk.u), f"block {r} diverged"
        assert new_starts[-1] == parts.n == (~mask).sum()
        # Sanity: removal actually happened.
        assert parts.n < u_before.size

    def test_append_blocked_matches_solo_append(self):
        parts, starts, blocks = self._blocked([3, 5])
        _, _, fresh = self._blocked([2, 4])
        new_starts = parts.append_blocked_inplace(fresh, starts)
        for r, blk in enumerate(blocks):
            blk.enable_scratch()
            blk.append_inplace(fresh[r])
            got = parts.u[new_starts[r] : new_starts[r + 1]]
            assert np.array_equal(got, blk.u), f"block {r} diverged"
        assert new_starts[-1] == parts.n

    def test_empty_append_is_noop(self):
        parts, starts, _ = self._blocked([4, 3])
        empties = [
            ParticleArrays.empty(2),
            ParticleArrays.empty(2),
        ]
        before = parts.u.copy()
        new_starts = parts.append_blocked_inplace(empties, starts)
        assert np.array_equal(new_starts, starts)
        assert np.array_equal(parts.u, before)


class TestEnsembleSnapshot:
    def test_roundtrip_resumes_bitwise(self, tmp_path):
        cfg = _small_config(seed=13)
        path = tmp_path / "ens.npz"

        straight = EnsembleEngine(cfg, n_replicas=2)
        straight.run(6)
        straight.run(3, sample=True)

        eng = EnsembleEngine(cfg, n_replicas=2)
        eng.run(4)
        save_ensemble(eng, path)
        resumed = load_ensemble(path)
        eng.run(2)
        resumed.run(2)
        eng.run(3, sample=True)
        resumed.run(3, sample=True)

        for r in range(2):
            ref = replica_state(eng, r)
            a = replica_state(resumed, r)
            b = replica_state(straight, r)
            for key in ref:
                assert np.array_equal(ref[key], a[key]), (
                    f"resume diverged at replica {r} key {key}"
                )
                assert np.array_equal(ref[key], b[key]), (
                    f"save/load run differs from straight run "
                    f"at replica {r} key {key}"
                )

    def test_load_rejects_non_ensemble_npz(self, tmp_path):
        # A plain .npz without the ensemble version marker is routed to
        # load_simulation by the error message, not silently accepted.
        path = tmp_path / "bogus.npz"
        np.savez(path, not_an_ensemble=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_ensemble(path)


class TestEnsembleSamplerUnits:
    def test_replica_slices_match_solo_samplers(self):
        domain = Domain(nx=4, ny=3)
        samp = EnsembleSampler(domain, 2)
        rng = np.random.default_rng(5)
        n = 20
        parts = ParticleArrays(
            x=rng.random(n),
            y=rng.random(n),
            u=rng.standard_normal(n),
            v=rng.standard_normal(n),
            w=rng.standard_normal(n),
            rot=rng.standard_normal((n, 2)),
            perm=random_permutation_table(rng, n),
            cell=rng.integers(0, domain.n_cells, size=n),
        )
        starts = np.array([0, 12, n])
        key = parts.cell.copy()
        key[12:] += domain.n_cells
        samp.accumulate(parts, key)

        from repro.core.sampling import CellSampler

        for r, (i0, i1) in enumerate(zip(starts[:-1], starts[1:])):
            solo = CellSampler(domain)
            solo.accumulate(parts.select(np.arange(i0, i1)))
            rep = samp.replica(r)
            assert np.array_equal(rep._count, solo._count)
            assert np.array_equal(rep._mu, solo._mu)
            assert np.array_equal(rep._e_trans, solo._e_trans)

    def test_key_bounds_validated(self):
        domain = Domain(nx=2, ny=2)
        samp = EnsembleSampler(domain, 1)
        parts = ParticleArrays.empty(2)
        with pytest.raises(ConfigurationError):
            samp.accumulate(parts, np.zeros(3, dtype=np.int64))


class TestEnsembleStatistic:
    def test_mean_and_interval(self):
        stat = ensemble_statistic([1.0, 2.0, 3.0, 4.0], confidence=0.95)
        assert stat.mean == pytest.approx(2.5)
        assert stat.n == 4
        assert stat.lo < 2.5 < stat.hi
        assert stat.contains(2.5)
        assert not stat.contains(stat.hi + 1.0)

    def test_single_value_has_infinite_interval(self):
        stat = ensemble_statistic([3.0])
        assert stat.mean == 3.0
        assert stat.stderr == float("inf")
        assert stat.contains(-1e300) and stat.contains(1e300)

    def test_confidence_validated(self):
        with pytest.raises(ConfigurationError):
            ensemble_statistic([1.0, 2.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            ensemble_statistic([], confidence=0.9)

    def test_wider_confidence_widens_interval(self):
        vals = [1.0, 2.0, 3.0]
        narrow = ensemble_statistic(vals, confidence=0.5)
        wide = ensemble_statistic(vals, confidence=0.99)
        assert (wide.hi - wide.lo) > (narrow.hi - narrow.lo)


class TestGoldenEnsembleHook:
    """validate_scenario(ensemble=R): CI containment instead of point tol."""

    OVERRIDES = {
        "nx": 32, "ny": 20, "density": 6.0, "transient": 10, "average": 10,
    }

    def test_measure_check_ensemble_returns_statistic(self):
        from repro.scenarios import get
        from repro.scenarios.golden import (
            measure_check_ensemble,
            run_scenario,
        )

        spec = get("wedge")
        runs = [
            run_scenario(spec, overrides=self.OVERRIDES, seed=spec.seed + k)
            for k in range(2)
        ]
        check = {
            "name": "upstream_unity", "kind": "band_mean",
            "x": [2, 8], "y": [2, 18], "expect": "const", "value": 1.0,
        }
        stat = measure_check_ensemble(runs, check)
        assert stat.n == 2
        assert np.isfinite(stat.mean)
        assert stat.lo <= stat.mean <= stat.hi

    def test_measure_check_ensemble_rejects_empty(self):
        from repro.scenarios.golden import measure_check_ensemble

        with pytest.raises(ConfigurationError):
            measure_check_ensemble([], {"kind": "band_mean"})

    def test_validate_scenario_rejects_bad_ensemble_args(self):
        from repro.scenarios import get
        from repro.scenarios.golden import run_scenario, validate_scenario

        spec = get("wedge")
        with pytest.raises(ConfigurationError):
            validate_scenario(spec, ensemble=1)
        run = run_scenario(spec, overrides=self.OVERRIDES)
        with pytest.raises(ConfigurationError):
            validate_scenario(spec, run=run, ensemble=2)

    def test_report_renders_ci_tolerances(self):
        from repro.scenarios.golden import CheckResult, ValidationReport

        report = ValidationReport(
            scenario="wedge",
            results=[
                CheckResult(
                    name="shock_angle_deg", kind="shock_angle",
                    expect="theory:shock_angle", value=40.1,
                    expected=39.8, tol=0.6, tol_kind="ci", ok=True,
                )
            ],
        )
        text = report.to_text()
        assert "ci +/-0.6" in text
        assert "PASS" in text
