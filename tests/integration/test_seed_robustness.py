"""Seed robustness: the physics must not depend on the random stream.

DSMC results are statistical; the validation numbers must agree across
independent random seeds within their statistical scatter, or the
"result" is an artifact of one lucky stream.
"""

import numpy as np
import pytest

from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.slow

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def three_runs():
    results = []
    for seed in SEEDS:
        cfg = SimulationConfig(
            domain=Domain(49, 32),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=12.0
            ),
            wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
            seed=seed,
        )
        sim = Simulation(cfg)
        sim.run(200)
        sim.run(200, sample=True)
        rho = sim.density_ratio_field()
        fit = fit_shock_angle(rho, cfg.wedge)
        plateau = post_shock_plateau(rho, cfg.wedge, fit)
        results.append((fit.angle_deg, plateau))
    return results


class TestSeedIndependence:
    def test_shock_angles_agree(self, three_runs):
        angles = [r[0] for r in three_runs]
        assert max(angles) - min(angles) < 3.0
        assert np.mean(angles) == pytest.approx(45.0, abs=2.5)

    def test_plateaus_agree(self, three_runs):
        plateaus = [r[1] for r in three_runs]
        assert max(plateaus) - min(plateaus) < 0.3
        assert np.mean(plateaus) == pytest.approx(3.7, rel=0.08)
