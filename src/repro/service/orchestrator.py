"""The job orchestrator: bounded queue, worker pool, watchdog, retry.

:class:`Orchestrator` turns the one-shot CLI into a fleet supervisor.
Jobs are submitted as scenario specs (plus seed/overrides), move
through the strict state machine enforced by
:class:`~repro.service.store.JobStore`, and execute in forked worker
processes running :class:`~repro.resilience.supervisor.SupervisedRun`
(:mod:`repro.service.worker`).  Robustness layers, bottom up:

* **step-level** faults inside a job are absorbed by ``SupervisedRun``
  itself (checkpoint/restore/replay, PR 3);
* **job-level** worker death is detected by reaping exit codes and
  retried with jittered exponential backoff, resuming from the job's
  newest checkpoint -- the serial engine's deterministic streams make
  the retried run bitwise identical to an unfailed one;
* a **heartbeat watchdog** SIGKILLs workers that stop stamping
  ``worker.jsonl`` (wedged, stalled, or fault-injected) and requeues
  the job; a per-job **wall-clock deadline** kills and fails it as
  ``TIMED_OUT`` instead (a deadline is a contract, not a hiccup);
* the **bounded queue** rejects submissions with a typed
  :class:`~repro.errors.BackpressureError` (HTTP 429) once
  ``queue_limit`` jobs are waiting;
* **graceful shutdown** SIGTERMs running workers, which drain to their
  next checkpoint and exit; drained jobs are requeued in the journal
  so a restarted orchestrator resumes them;
* **crash recovery**: construction replays the service journal; jobs
  that were in flight when the orchestrator died are requeued and
  resume from their checkpoints;
* the **result cache** keys completed results by
  ``(ScenarioSpec.digest(), seed, overrides, schedule)`` so duplicate
  submissions return instantly without stepping the engine.

Everything is stdlib: ``threading`` for the scheduler loop,
``multiprocessing`` (fork) for workers, the telemetry
:class:`~repro.telemetry.metrics.MetricsRegistry` for observability.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import multiprocessing.connection
import os
import pathlib
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobStateError,
    ServiceError,
    ServiceJournalError,
)
from repro.scenarios.spec import OVERRIDE_KEYS, ScenarioSpec
from repro.service import store as st
from repro.service.store import JobRecord, JobStore
from repro.service.worker import EXIT_DONE, EXIT_DRAINED, child_main
from repro.telemetry.events import EventStream
from repro.telemetry.exporters import write_prometheus_snapshot
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.stitch import ORCH_SPANS_FILE
from repro.telemetry.stream import JobEventTail

PathLike = Union[str, pathlib.Path]

#: Per-job labeled gauge families maintained by the fleet scraper.
FLEET_GAUGES = (
    "repro_job_step",
    "repro_job_total_steps",
    "repro_job_particles",
    "repro_job_us_per_particle",
    "repro_job_load_imbalance",
    "repro_job_retries",
    "repro_job_heartbeat_age_seconds",
)


class OrchestratorTrace(EventStream):
    """Orchestrator-side span stream (``orch_spans.jsonl``).

    Dispatch latencies, per-attempt run envelopes, watchdog kills and
    retry markers -- all timestamped on the ``perf_counter`` axis so
    :mod:`repro.telemetry.stitch` can merge them with worker spans
    into one fleet timeline.
    """

    filename = ORCH_SPANS_FILE


def cache_key(
    spec: ScenarioSpec, seed: int, overrides: dict, schedule
) -> str:
    """The result-cache key: digest + effective seed + physics knobs.

    ``seed``/``transient``/``average`` are resolved into their own
    slots, so ``overrides={"seed": 7}`` and ``seed=7`` key identically.
    """
    physics = {
        k: v
        for k, v in overrides.items()
        if k not in ("seed", "transient", "average")
    }
    return json.dumps(
        {
            "digest": spec.digest(),
            "seed": int(seed),
            "overrides": physics,
            "schedule": [int(schedule[0]), int(schedule[1])],
        },
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass
class OrchestratorConfig:
    """Tuning knobs of the orchestrator (all have service defaults)."""

    #: Concurrent worker processes.
    workers: int = 2
    #: Jobs allowed to wait in QUEUED before submissions get 429.
    queue_limit: int = 16
    #: Steps per worker chunk (heartbeat + drain-check cadence).
    heartbeat_every: int = 10
    #: Seconds of heartbeat silence before the watchdog kills a worker.
    heartbeat_timeout: float = 30.0
    #: Default per-job wall-clock deadline, seconds (None = none).
    default_deadline: Optional[float] = None
    #: Job-level retries (attempts = 1 + retries).
    max_job_retries: int = 2
    #: Jittered exponential backoff between job retries.
    backoff_base: float = 0.2
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: Scheduler tick, seconds.
    poll_interval: float = 0.05
    #: Worker checkpoint cadence in steps (None = heartbeat_every).
    checkpoint_every: Optional[int] = None
    #: Worker invariant-audit cadence (0 = off; jobs are short-lived
    #: and re-validated by their scenario contracts).
    audit_every: int = 0
    #: Seconds to wait for workers to drain on graceful shutdown.
    drain_timeout: float = 60.0
    #: Seconds between ``metrics.prom`` snapshot rewrites.
    prom_every: float = 2.0
    #: Seconds between fleet scrapes (per-job gauges from worker
    #: artifacts).  The ``/fleet`` route forces a scrape, so this only
    #: bounds the background staleness of ``/metrics``.
    fleet_every: float = 1.0
    #: Attach a telemetry hub to every job's worker (events.jsonl,
    #: metrics.prom, trace.json in the job dir).
    job_telemetry: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if self.heartbeat_every < 1:
            raise ConfigurationError("heartbeat_every must be >= 1")
        if self.max_job_retries < 0:
            raise ConfigurationError("max_job_retries must be >= 0")


class Orchestrator:
    """Job queue + worker pool + watchdog over a crash-safe store."""

    def __init__(
        self,
        data_dir: PathLike,
        config: Optional[OrchestratorConfig] = None,
        fault_plan=None,
        start: bool = True,
    ) -> None:
        self.config = config or OrchestratorConfig()
        self.data_dir = pathlib.Path(data_dir)
        self.fault_plan = fault_plan
        self.store = JobStore(self.data_dir, fault_plan=fault_plan)
        self.registry = MetricsRegistry()
        reg = self.registry
        self._m_submissions = reg.counter(
            "repro_service_submissions_total",
            help="jobs accepted into the queue",
        )
        self._m_retries = reg.counter(
            "repro_service_retries_total",
            help="job-level retries (worker death or stalled heartbeat)",
        )
        self._m_timeouts = reg.counter(
            "repro_service_timeouts_total",
            help="jobs killed by their wall-clock deadline",
        )
        self._m_cache_hits = reg.counter(
            "repro_service_cache_hits_total",
            help="submissions served from the result cache",
        )
        self._m_backpressure = reg.counter(
            "repro_service_backpressure_total",
            help="submissions rejected by the bounded queue",
        )
        self._m_done = reg.counter(
            "repro_service_jobs_done_total", help="jobs finished DONE"
        )
        self._m_failed = reg.counter(
            "repro_service_jobs_failed_total",
            help="jobs finished FAILED",
        )
        self._m_queue_depth = reg.gauge(
            "repro_service_queue_depth", help="jobs waiting in QUEUED"
        )
        self._lock = threading.RLock()
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._dispatched: Dict[str, float] = {}
        self._kill_reason: Dict[str, str] = {}
        self._cancelling: set = set()
        self._accepting = True
        self._dead = False
        self._stop = threading.Event()
        # Self-pipe: submissions poke the scheduler awake, and the idle
        # wait also watches the workers' process sentinels -- dispatch
        # and reap latency are event-driven, not a poll tick.  The tick
        # interval remains the watchdog's cadence.
        self._wake_r, self._wake_w = os.pipe()
        self._t_prom = 0.0
        # Fleet observability: one merged tail per non-terminal job
        # feeding the labeled per-job gauges and the /fleet summary,
        # plus the orchestrator's own span stream for trace stitching.
        self._trace = OrchestratorTrace(self.data_dir)
        self._tails: Dict[str, JobEventTail] = {}
        self._fleet: Dict[str, dict] = {}
        self._tids: Dict[str, int] = {}
        self._dispatched_pc: Dict[str, float] = {}
        self._t_fleet = 0.0
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()

        # Crash recovery: anything in flight when the last orchestrator
        # died goes back to the queue and resumes from its checkpoint.
        requeued = 0
        for job in list(self.store.jobs.values()):
            if job.state in (st.RUNNING, st.RETRYING):
                self.store.transition(
                    job.job_id, st.QUEUED, requeued=True, not_before=0.0
                )
                requeued += 1
        self.store.record(
            "service_start",
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
            requeued=requeued,
            torn_tail_repaired=self.store.torn_tail,
        )
        self._trace.emit(
            "span",
            name="service_start",
            ts=time.perf_counter(),
            dur=0.0,
            tid=0,
        )
        self._update_gauges()
        self._thread = threading.Thread(
            target=self._loop, name="repro-orchestrator", daemon=True
        )
        if start:
            self._thread.start()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        scenario: Optional[str] = None,
        spec: Optional[dict] = None,
        seed: Optional[int] = None,
        overrides: Optional[dict] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
        faults: Optional[list] = None,
    ) -> dict:
        """Submit one job; returns ``{"job_id", "state", "cached"}``.

        ``scenario`` names a registered spec; ``spec`` supplies a full
        spec dict instead (exactly one is required).  Raises
        :class:`BackpressureError` when the queue is full,
        :class:`ServiceError` when shutting down, and
        :class:`ConfigurationError` for malformed input.
        """
        spec_obj = self._resolve_spec(scenario, spec)
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(OVERRIDE_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown override keys {sorted(unknown)}; expected a "
                f"subset of {OVERRIDE_KEYS}"
            )
        eff_seed = int(
            overrides.get(
                "seed", seed if seed is not None else spec_obj.seed
            )
        )
        schedule = spec_obj.resolve_schedule(overrides)
        key = cache_key(spec_obj, eff_seed, overrides, schedule)
        with self._lock, self._crash_on_torn_journal():
            self._require_alive()
            if not self._accepting:
                raise ServiceError("orchestrator is shutting down")
            cached = self.store.cache_lookup(key)
            if cached is not None:
                self._m_cache_hits.inc()
                seq = self.store.record(
                    "cache_hit", key=key, job_id=cached.job_id
                )
                self._maybe_die(seq)
                return {
                    "job_id": cached.job_id,
                    "state": cached.state,
                    "cached": True,
                }
            depth = self._queue_depth()
            if depth >= self.config.queue_limit:
                self._m_backpressure.inc()
                seq = self.store.record(
                    "backpressure",
                    queue_depth=depth,
                    limit=self.config.queue_limit,
                )
                self._maybe_die(seq)
                raise BackpressureError(
                    "submission queue is full",
                    queue_depth=depth,
                    limit=self.config.queue_limit,
                )
            job_id = f"{spec_obj.name}-{eff_seed}-{uuid.uuid4().hex[:8]}"
            job = JobRecord(
                job_id=job_id,
                scenario=spec_obj.name,
                spec=spec_obj.to_dict(),
                seed=eff_seed,
                overrides=overrides,
                schedule=schedule,
                cache_key=key,
                job_dir=str(self.data_dir / job_id),
                max_retries=(
                    self.config.max_job_retries
                    if max_retries is None
                    else int(max_retries)
                ),
                deadline=(
                    self.config.default_deadline
                    if deadline is None
                    else float(deadline)
                ),
                submitted_time=time.time(),
            )
            if faults:
                # Ride-along fault specs (testing); stored on the side
                # so the journal keeps the submission schema stable.
                (pathlib.Path(job.job_dir)).mkdir(
                    parents=True, exist_ok=True
                )
                (pathlib.Path(job.job_dir) / "faults.json").write_text(
                    json.dumps(list(faults)), encoding="utf-8"
                )
            self._m_submissions.inc()
            seq = self.store.add_job(job)
            self._update_gauges()
            self._maybe_die(seq)
            self._poke()
            return {"job_id": job_id, "state": job.state, "cached": False}

    def _resolve_spec(self, scenario, spec) -> ScenarioSpec:
        if (scenario is None) == (spec is None):
            raise ConfigurationError(
                "submit needs exactly one of scenario=<name> or "
                "spec=<dict>"
            )
        if spec is not None:
            return ScenarioSpec.from_dict(spec)
        from repro.scenarios import get

        return get(scenario)

    # -- introspection ---------------------------------------------------

    def status(self, job_id: str) -> dict:
        """One job's public status dict."""
        with self._lock:
            job = self.store.get(job_id)
            out = job.to_dict()
            out.pop("spec", None)  # bulky; fetch via the spec digest
            out["cancelling"] = job_id in self._cancelling
            hb = pathlib.Path(job.job_dir) / "worker.jsonl"
            out["last_heartbeat"] = (
                hb.stat().st_mtime if hb.exists() else None
            )
            out["terminal"] = job.terminal
            return out

    def list_jobs(self) -> List[dict]:
        """One summary row per known job, submission order."""
        with self._lock:
            return [
                {
                    "job_id": j.job_id,
                    "scenario": j.scenario,
                    "seed": j.seed,
                    "state": j.state,
                    "attempt": j.attempt,
                    "submitted_time": j.submitted_time,
                }
                for j in self.store.jobs.values()
            ]

    def result(self, job_id: str) -> dict:
        """The terminal artifact of a DONE job (``result.json``)."""
        with self._lock:
            job = self.store.get(job_id)
            if job.state != st.DONE:
                raise JobStateError(
                    "job has no result", job_id=job_id, state=job.state
                )
            path = pathlib.Path(job.job_dir) / "result.json"
            return json.loads(path.read_text(encoding="utf-8"))

    def health(self) -> dict:
        """Liveness plus queue/worker/job-table gauges (``/healthz``)."""
        with self._lock:
            return {
                "ok": not self._dead,
                "accepting": self._accepting,
                "queue_depth": self._queue_depth(),
                "running": len(self._procs),
                "jobs": len(self.store.jobs),
                "by_state": {
                    s: n for s, n in self.store.by_state().items() if n
                },
            }

    # -- cancellation ----------------------------------------------------

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: queued jobs immediately, running jobs by
        SIGTERM (the worker drains to a checkpoint and exits)."""
        with self._lock, self._crash_on_torn_journal():
            self._require_alive()
            job = self.store.get(job_id)
            if job.state in (st.QUEUED, st.RETRYING):
                self.store.transition(
                    job_id, st.CANCELLED, finished_time=time.time()
                )
                self._update_gauges()
            elif job.state == st.RUNNING:
                self._cancelling.add(job_id)
                proc = self._procs.get(job_id)
                if proc is not None and proc.is_alive():
                    proc.terminate()
            else:
                raise JobStateError(
                    "job already terminal",
                    job_id=job_id,
                    state=job.state,
                )
            return self.status(job_id)

    # -- the scheduler loop ----------------------------------------------

    def _poke(self) -> None:
        """Wake the scheduler thread out of its idle wait."""
        try:
            os.write(self._wake_w, b"\0")
        except OSError:  # pragma: no cover - pipe closed at shutdown
            pass

    def _close_pipe(self) -> None:
        fds, self._wake_r, self._wake_w = (
            (self._wake_r, self._wake_w), -1, -1,
        )
        for fd in fds:
            try:
                os.close(fd)
            except OSError:
                pass

    def _idle(self) -> None:
        """Block until the next tick -- or early, on a submission
        (wake pipe) or a worker exit (process sentinels)."""
        with self._lock:
            waits = [p.sentinel for p in self._procs.values()]
        waits.append(self._wake_r)
        try:
            ready = multiprocessing.connection.wait(
                waits, timeout=self.config.poll_interval
            )
        except OSError:  # a sentinel/pipe closed mid-wait
            return
        if self._wake_r in ready:
            try:
                os.read(self._wake_r, 4096)
            except OSError:  # pragma: no cover - closed at shutdown
                pass

    def _loop(self) -> None:
        while True:
            self._idle()
            if self._stop.is_set():
                return
            try:
                with self._lock:
                    if self._dead:
                        return
                    self._reap()
                    self._watchdog()
                    self._dispatch()
                    self._update_gauges()
                    self._scrape_fleet()
                self._maybe_write_prom()
            except ServiceError:
                # An injected death (orchestrator_kill, journal_tear)
                # unwound the tick: make sure the crash is complete --
                # children dead, nothing further journaled.
                with self._lock:
                    if not self._dead:
                        self._hard_kill()
                return

    def _queue_depth(self) -> int:
        return sum(
            1 for j in self.store.jobs.values() if j.state == st.QUEUED
        )

    def _eligible(self, now: float) -> List[JobRecord]:
        jobs = [
            j
            for j in self.store.jobs.values()
            if j.state == st.QUEUED and j.not_before <= now
        ]
        jobs.sort(key=lambda j: (j.submitted_time, j.job_id))
        return jobs

    def _dispatch(self) -> None:
        now = time.time()
        for job in self._eligible(now):
            if len(self._procs) >= self.config.workers:
                return
            attempt = job.attempt + 1
            fields = {"attempt": attempt}
            if job.started_time is None:
                fields["started_time"] = now
            seq = self.store.transition(job.job_id, st.RUNNING, **fields)
            payload = self._payload(job, attempt)
            proc = self._ctx.Process(
                target=child_main,
                args=(job.job_dir, payload),
                name=f"repro-job-{job.job_id}",
                daemon=True,
            )
            # Each job gets its own orchestrator track ("slot N" in the
            # stitched trace) so concurrent run envelopes don't overlap.
            self._tids.setdefault(job.job_id, len(self._tids) + 1)
            t0 = time.perf_counter()
            proc.start()
            t1 = time.perf_counter()
            self._trace.emit(
                "span",
                name=f"dispatch attempt {attempt}",
                ts=t0,
                dur=t1 - t0,
                tid=0,
                job_id=job.job_id,
            )
            self._dispatched_pc[job.job_id] = t1
            self._procs[job.job_id] = proc
            self._dispatched[job.job_id] = now
            self._maybe_die(seq)

    def _payload(self, job: JobRecord, attempt: int) -> dict:
        cfg = self.config
        payload = {
            "spec": job.spec,
            "seed": job.seed,
            "overrides": job.overrides,
            "schedule": list(job.schedule),
            "attempt": attempt,
            "heartbeat_every": cfg.heartbeat_every,
            "checkpoint_every": (
                cfg.heartbeat_every
                if cfg.checkpoint_every is None
                else cfg.checkpoint_every
            ),
            "audit_every": cfg.audit_every,
            "telemetry": cfg.job_telemetry,
        }
        faults_path = pathlib.Path(job.job_dir) / "faults.json"
        if faults_path.exists():
            payload["faults"] = json.loads(
                faults_path.read_text(encoding="utf-8")
            )
        return payload

    def _reap(self) -> None:
        for job_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            code = proc.exitcode
            proc.join()
            del self._procs[job_id]
            self._dispatched.pop(job_id, None)
            reason = self._kill_reason.pop(job_id, None)
            cancelling = job_id in self._cancelling
            self._cancelling.discard(job_id)
            t0 = self._dispatched_pc.pop(job_id, None)
            if t0 is not None:
                # The attempt's run envelope: dispatch -> reap, on the
                # job's own orchestrator track.
                attempt = self.store.get(job_id).attempt
                self._trace.emit(
                    "span",
                    name=f"attempt {attempt} (exit {code})",
                    ts=t0,
                    dur=max(0.0, time.perf_counter() - t0),
                    tid=self._tids.get(job_id, 0),
                    job_id=job_id,
                )
            self._finish(job_id, code, reason, cancelling)

    def _finish(
        self, job_id: str, code: Optional[int], reason, cancelling: bool
    ) -> None:
        """Map one worker exit onto a state transition."""
        job = self.store.get(job_id)
        now = time.time()
        result_ok = (
            code == EXIT_DONE
            and (pathlib.Path(job.job_dir) / "result.json").exists()
        )
        if result_ok:
            # Work finished -- even a cancel that lost the race keeps
            # the completed result.
            seq = self.store.transition(
                job_id, st.DONE, finished_time=now, exit_code=code
            )
            self.store.set_cached(job.cache_key, job_id)
            self._m_done.inc()
            self._maybe_die(seq)
            return
        if reason == "deadline":
            self._m_timeouts.inc()
            seq = self.store.transition(
                job_id,
                st.TIMED_OUT,
                finished_time=now,
                exit_code=code,
                error="wall-clock deadline exceeded",
            )
            self._maybe_die(seq)
            return
        if cancelling:
            seq = self.store.transition(
                job_id, st.CANCELLED, finished_time=now, exit_code=code
            )
            self._maybe_die(seq)
            return
        if code == EXIT_DRAINED:
            # Drained outside shutdown/cancel (external SIGTERM):
            # requeue without burning a retry.
            seq = self.store.transition(
                job_id, st.QUEUED, requeued=True, exit_code=code
            )
            self._maybe_die(seq)
            return
        error = self._read_error(job) or (
            "stalled heartbeat" if reason == "stall" else f"exit code {code}"
        )
        if job.attempt > job.max_retries:
            self._m_failed.inc()
            seq = self.store.transition(
                job_id,
                st.FAILED,
                finished_time=now,
                exit_code=code,
                error=error,
            )
            self._maybe_die(seq)
            return
        self._m_retries.inc()
        seq = self.store.transition(
            job_id, st.RETRYING, exit_code=code, error=error
        )
        self._maybe_die(seq)
        backoff = self._backoff_seconds(job.attempt)
        seq = self.store.transition(
            job_id, st.QUEUED, not_before=now + backoff
        )
        self._maybe_die(seq)

    def _read_error(self, job: JobRecord) -> Optional[str]:
        path = pathlib.Path(job.job_dir) / "error.json"
        if not path.exists():
            return None
        try:
            blob = json.loads(path.read_text(encoding="utf-8"))
            return f"{blob.get('error')}: {blob.get('detail')}"
        except (OSError, json.JSONDecodeError):
            return None

    def _backoff_seconds(self, retry: int) -> float:
        """Jittered exponential backoff before re-dispatching a job.

        Jitter decorrelates retries across jobs that failed together
        (a host hiccup killing several workers at once must not
        produce a synchronized thundering herd of restarts).
        """
        import random

        cfg = self.config
        backoff = cfg.backoff_base * cfg.backoff_factor ** max(0, retry - 1)
        if backoff > 0 and cfg.backoff_jitter:
            backoff *= 1.0 + cfg.backoff_jitter * (
                2.0 * random.random() - 1.0
            )
        return backoff

    def _watchdog(self) -> None:
        """Kill workers past their deadline or gone silent."""
        now = time.time()
        for job_id, proc in list(self._procs.items()):
            if not proc.is_alive() or job_id in self._kill_reason:
                continue
            job = self.store.get(job_id)
            if (
                job.deadline is not None
                and job.started_time is not None
                and now - job.started_time > job.deadline
            ):
                self._kill_reason[job_id] = "deadline"
                self._mark_kill(job_id, "deadline")
                proc.kill()
                continue
            # Silence is measured from this attempt's dispatch or the
            # newest heartbeat stamp, whichever is later -- a previous
            # attempt's stale stamp must not condemn a fresh worker
            # that hasn't had time to write its first one.
            hb = pathlib.Path(job.job_dir) / "worker.jsonl"
            last = self._dispatched.get(job_id, now)
            if hb.exists():
                last = max(last, hb.stat().st_mtime)
            # The stall-precursor gauge: a rising age is visible on
            # /metrics well before it crosses heartbeat_timeout and
            # the watchdog fires.
            self.registry.gauge(
                "repro_job_heartbeat_age_seconds",
                labels={"job_id": job_id, "scenario": job.scenario},
                help="seconds since a running job's last heartbeat",
            ).set(max(0.0, now - last))
            if now - last > self.config.heartbeat_timeout:
                self._kill_reason[job_id] = "stall"
                self._mark_kill(job_id, "stall")
                proc.kill()

    def _mark_kill(self, job_id: str, reason: str) -> None:
        """Zero-duration marker span at a watchdog kill."""
        self._trace.emit(
            "span",
            name=f"watchdog_kill {reason}",
            ts=time.perf_counter(),
            dur=0.0,
            tid=self._tids.get(job_id, 0),
            job_id=job_id,
        )

    # -- metrics ---------------------------------------------------------

    def _update_gauges(self) -> None:
        counts = self.store.by_state()
        for state, n in counts.items():
            self.registry.gauge(
                "repro_service_jobs",
                labels={"state": state},
                help="jobs per state",
            ).set(n)
        self._m_queue_depth.set(counts.get(st.QUEUED, 0))
        self.registry.gauge(
            "repro_service_workers_busy",
            help="worker processes currently running jobs",
        ).set(len(self._procs))

    def _scrape_fleet(self, force: bool = False) -> None:
        """Update the per-job rows and labeled gauges from artifacts.

        Tails every non-terminal job's ``worker.jsonl`` +
        ``events.jsonl`` (heartbeats carry step / population /
        us-per-particle; telemetry ``metrics`` records carry load
        imbalance) and mirrors the latest values into labeled gauge
        series.  Jobs that go terminal keep their last row in the
        ``/fleet`` summary but have their labeled series dropped so a
        long-lived ``/metrics`` page stays bounded to RUNNING jobs.
        """
        now = time.time()
        if not force and now - self._t_fleet < self.config.fleet_every:
            return
        self._t_fleet = now
        for job in list(self.store.jobs.values()):
            job_id = job.job_id
            if job.terminal:
                tail = self._tails.pop(job_id, None)
                if (
                    tail is None
                    and job_id in self._tids
                    and job_id not in self._fleet
                ):
                    # Dispatched and finished entirely between scrapes:
                    # read its artifacts once so the row isn't empty.
                    tail = JobEventTail(job.job_dir)
                if tail is not None:
                    # Final drain: a short job can finish between two
                    # scrapes; its last heartbeat still belongs in the
                    # fleet row.
                    self._fold_records(
                        self._fleet.setdefault(job_id, {}), tail.poll()
                    )
                    self._prune_job_series(job)
                row = self._fleet.get(job_id)
                if row is not None:
                    row["state"] = job.state
                continue
            tail = self._tails.get(job_id)
            if tail is None:
                tail = self._tails[job_id] = JobEventTail(job.job_dir)
            row = self._fleet.setdefault(job_id, {})
            self._fold_records(row, tail.poll())
            row["state"] = job.state
            row["retries"] = max(0, job.attempt - 1)
            labels = {"job_id": job_id, "scenario": job.scenario}
            for name, key in (
                ("repro_job_step", "step"),
                ("repro_job_total_steps", "total"),
                ("repro_job_particles", "n_flow"),
                ("repro_job_us_per_particle", "us_per_particle"),
                ("repro_job_load_imbalance", "load_imbalance"),
                ("repro_job_retries", "retries"),
            ):
                if row.get(key) is not None:
                    self.registry.gauge(name, labels=labels).set(
                        float(row[key])
                    )

    @staticmethod
    def _fold_records(row: dict, records) -> None:
        """Fold freshly tailed records into one job's fleet row."""
        for rec in records:
            kind = rec.get("kind")
            if kind == "heartbeat":
                for k in ("step", "total", "n_flow", "us_per_particle"):
                    if rec.get(k) is not None:
                        row[k] = rec[k]
            elif kind == "metrics":
                if rec.get("load_imbalance") is not None:
                    row["load_imbalance"] = rec["load_imbalance"]
                if rec.get("n_flow") is not None:
                    row["n_flow"] = rec["n_flow"]

    def _prune_job_series(self, job: JobRecord) -> None:
        labels = {"job_id": job.job_id, "scenario": job.scenario}
        for name in FLEET_GAUGES:
            self.registry.drop(name, labels=labels)

    def fleet(self) -> dict:
        """The live fleet summary (``GET /fleet``): health plus one
        row per job with its freshest scraped numbers."""
        with self._lock:
            if not self._dead:
                self._scrape_fleet(force=True)
            now = time.time()
            jobs = []
            for job in self.store.jobs.values():
                row = dict(self._fleet.get(job.job_id, {}))
                row.update(
                    job_id=job.job_id,
                    scenario=job.scenario,
                    seed=job.seed,
                    state=job.state,
                    attempt=job.attempt,
                    retries=max(0, job.attempt - 1),
                )
                if job.job_id in self._procs:
                    hb = pathlib.Path(job.job_dir) / "worker.jsonl"
                    last = self._dispatched.get(job.job_id, now)
                    if hb.exists():
                        last = max(last, hb.stat().st_mtime)
                    row["heartbeat_age"] = max(0.0, now - last)
                jobs.append(row)
            return {"health": self.health(), "jobs": jobs}

    def _maybe_write_prom(self) -> None:
        now = time.time()
        if now - self._t_prom < self.config.prom_every:
            return
        self._t_prom = now
        write_prometheus_snapshot(
            self.registry, self.data_dir / "metrics.prom"
        )

    # -- lifecycle -------------------------------------------------------

    def _require_alive(self) -> None:
        if self._dead:
            raise ServiceError("orchestrator is dead")

    @contextlib.contextmanager
    def _crash_on_torn_journal(self):
        """A torn journal append is a crash, wherever it happens.

        The tear truncates the file mid-line; appending anything more
        would weld the next record onto the partial one and turn a
        recoverable torn *tail* into unrecoverable mid-file garbage.
        So the writer dies with it (callers see the typed error)."""
        try:
            yield
        except ServiceJournalError:
            if not self._dead:
                self._hard_kill()
            raise

    def _maybe_die(self, seq: int) -> None:
        """The ``orchestrator_kill`` injection point.

        Fires *between* journal records: everything up to record
        ``seq`` is durable, nothing after it happens -- exactly the cut
        a SIGKILL makes.  The orchestrator hard-stops (children
        SIGKILLed, no drain records, no ``service_stop``) and the call
        unwinds with a :class:`ServiceError`.
        """
        if self.fault_plan is None:
            return
        if self.fault_plan.take("orchestrator_kill", seq) is None:
            return
        self._hard_kill()
        raise ServiceError("orchestrator killed (injected)", seq=seq)

    def _hard_kill(self) -> None:
        self._dead = True
        self._accepting = False
        self._stop.set()
        self._poke()
        for proc in self._procs.values():
            if proc.is_alive():
                proc.kill()
        for proc in self._procs.values():
            proc.join(timeout=5.0)
        self._procs.clear()
        self.store.journal.close()
        self._trace.close()

    def kill(self) -> None:
        """Simulate an orchestrator SIGKILL (tests): children die,
        nothing is journaled, the store is left exactly as the last
        appended record left it."""
        with self._lock:
            self._hard_kill()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        self._close_pipe()

    def shutdown(self, drain: bool = True) -> dict:
        """Stop the service; with ``drain`` (default) running workers
        finish their current chunk, checkpoint, and are requeued in
        the journal so a restart resumes them.

        Returns a summary dict (``drained``, ``completed``, ...).
        """
        with self._lock:
            if self._dead:
                if not self._thread.is_alive():
                    self._close_pipe()
                return {"drained": 0, "completed": 0, "dead": True}
            self._accepting = False
        self._stop.set()
        self._poke()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)
        summary = {"drained": 0, "completed": 0, "killed": 0}
        with self._lock:
            for proc in self._procs.values():
                if proc.is_alive():
                    if drain:
                        proc.terminate()
                    else:
                        proc.kill()
            deadline = time.time() + self.config.drain_timeout
            for job_id, proc in list(self._procs.items()):
                proc.join(timeout=max(0.0, deadline - time.time()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)
                    summary["killed"] += 1
            for job_id, proc in list(self._procs.items()):
                code = proc.exitcode
                cancelling = job_id in self._cancelling
                self._cancelling.discard(job_id)
                job = self.store.get(job_id)
                if (
                    code == EXIT_DONE
                    and (pathlib.Path(job.job_dir) / "result.json").exists()
                ):
                    self.store.transition(
                        job_id,
                        st.DONE,
                        finished_time=time.time(),
                        exit_code=code,
                    )
                    self.store.set_cached(job.cache_key, job_id)
                    self._m_done.inc()
                    summary["completed"] += 1
                elif cancelling:
                    self.store.transition(
                        job_id,
                        st.CANCELLED,
                        finished_time=time.time(),
                        exit_code=code,
                    )
                else:
                    self.store.record(
                        "drained", job_id=job_id, exit_code=code
                    )
                    self.store.transition(
                        job_id, st.QUEUED, requeued=True, exit_code=code
                    )
                    summary["drained"] += 1
            self._procs.clear()
            self._dispatched.clear()
            self.store.record("service_stop", **summary)
            self._trace.emit(
                "span",
                name="service_stop",
                ts=time.perf_counter(),
                dur=0.0,
                tid=0,
            )
            self._trace.close()
            self._update_gauges()
            write_prometheus_snapshot(
                self.registry, self.data_dir / "metrics.prom"
            )
            self.store.close()
            self._dead = True
        self._close_pipe()
        return summary

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc) -> None:
        if not self._dead:
            self.shutdown()
