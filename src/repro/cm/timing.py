"""Cost ledger and calibrated timing model for the CM-2 emulation.

The paper reports three performance artifacts:

* **7.2 microseconds / particle / time step** on 32k processors at 512k
  particles (excluding reservoir particles);
* a phase breakdown: motion+boundaries 14%, sort 27%, selection 20%,
  collision 39%;
* **Figure 7**: per-particle time *decreases* with problem size at fixed
  machine size, with the largest drop from VP ratio 1 to 2 (collision
  pair traffic moves on-chip) and further gains from more efficient
  sort communication at higher ratios.

The emulation cannot (and should not) cycle-time a 1989 machine, so it
reproduces the *structure* of the cost and calibrates the absolute
scale:

1. Every primitive executed by the CM engine charges *raw bit-cycle
   costs* to a :class:`CostLedger`, split by phase and by category
   (ALU, scan tree, on-chip routing, off-chip routing).  Communication
   volumes are **measured from the actual send patterns** of the run,
   not assumed.
2. :class:`CM2TimingModel` converts raw costs to microseconds with one
   scale factor per phase, chosen so that the paper's anchor
   configuration (512k particles on 32k processors) reproduces exactly
   7.2 us/particle/step split 14/27/20/39.  Away from the anchor the
   vpr-dependence comes entirely from the structural model, which is
   what Figure 7 tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.constants import (
    PAPER_CM2_PROCESSORS,
    PAPER_CM2_US_PER_PARTICLE,
    PAPER_PHASE_FRACTIONS,
)
from repro.cm.machine import CM2, VPGeometry
from repro.errors import MachineError

#: The four algorithm phases the paper times.
PHASES = ("motion", "sort", "selection", "collision")

#: Cost categories tracked inside each phase.
CATEGORIES = ("alu", "scan", "route_on", "route_off")

# Structural weights (raw bit-cycles).  Only their *ratios* shape the
# curve; absolute scale is calibrated away at the anchor point.
W_ALU = 1.0          # one bit-serial ALU bit-op
W_SCAN_LOCAL = 2.0   # per-bit local work of a scan (up + down sweep)
W_SCAN_TREE = 0.25   # per-bit per-hypercube-dimension tree traffic
W_ROUTE_ON = 1.0     # per-bit move within a physical processor (memory)
W_ROUTE_OFF = 4.0    # per-bit router hop off-chip (wire + congestion)
#: Fixed router-operation overhead per hypercube dimension, paid once
#: per send *operation* per physical processor (petit-cycle setup,
#: address decode, wire turnaround).  Tree and setup terms are paid per
#: *operation*, not per particle, so they amortize over the VP ratio --
#: the mechanism behind Figure 7's falling per-particle cost; the
#: even/odd pair exchange jumping off-chip at VPR 1 supplies the
#: pronounced 1 -> 2 step the paper attributes to the collision routine.
W_ROUTE_SETUP = 24.0


class CostLedger:
    """Accumulates raw bit-cycle costs by phase and category.

    The ledger is charged by the cost-model helpers below while the CM
    engine runs; :class:`CM2TimingModel` converts the totals into
    microseconds.  Costs are *per physical processor* (SIMD lockstep:
    everything is already divided by the processor count through the
    VP ratio).
    """

    def __init__(self) -> None:
        self._costs: Dict[str, Dict[str, float]] = {
            p: {c: 0.0 for c in CATEGORIES} for p in PHASES
        }
        self._steps: int = 0
        self._current_phase: Optional[str] = None

    # -- charging -------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager scoping subsequent charges to one phase."""
        if name not in PHASES:
            raise MachineError(f"unknown phase {name!r}; expected {PHASES}")
        prev = self._current_phase
        self._current_phase = name
        try:
            yield
        finally:
            self._current_phase = prev

    def charge(self, category: str, cost: float, phase: Optional[str] = None) -> None:
        """Add ``cost`` raw bit-cycles to ``phase``/``category``."""
        phase = phase or self._current_phase
        if phase is None:
            raise MachineError("no phase active and none given")
        if phase not in PHASES:
            raise MachineError(f"unknown phase {phase!r}")
        if category not in CATEGORIES:
            raise MachineError(f"unknown category {category!r}")
        if cost < 0:
            raise MachineError("cost must be non-negative")
        self._costs[phase][category] += float(cost)

    def end_step(self) -> None:
        """Mark the completion of one simulation time step."""
        self._steps += 1

    # -- reading ----------------------------------------------------------

    @property
    def steps(self) -> int:
        return self._steps

    def phase_total(self, phase: str) -> float:
        """Raw cost accumulated in one phase."""
        return sum(self._costs[phase].values())

    def category_total(self, category: str) -> float:
        """Raw cost of one category across all phases."""
        return sum(self._costs[p][category] for p in PHASES)

    def total(self) -> float:
        """Raw cost over all phases and categories."""
        return sum(self.phase_total(p) for p in PHASES)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Deep copy of the raw cost table."""
        return {p: dict(cs) for p, cs in self._costs.items()}

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """Return a new ledger with both ledgers' costs and steps."""
        out = CostLedger()
        for p in PHASES:
            for c in CATEGORIES:
                out._costs[p][c] = self._costs[p][c] + other._costs[p][c]
        out._steps = self._steps + other._steps
        return out

    def summary(self) -> Dict[str, object]:
        """One serializable record of the ledger's raw-cost state.

        The emulated-machine counterpart of
        :meth:`repro.perf.PerfLedger.summary`: same shape of record
        (steps, per-phase totals, four-phase fractions), raw bit-cycles
        instead of wall seconds.
        """
        total = self.total()
        return {
            "steps": self._steps,
            "costs": self.as_dict(),
            "phase_totals": {p: self.phase_total(p) for p in PHASES},
            "fractions": {
                p: (self.phase_total(p) / total if total else 0.0)
                for p in PHASES
            },
        }

    def export(
        self,
        sink,
        timing_model: Optional["CM2TimingModel"] = None,
        n_flow_particles: Optional[int] = None,
    ) -> dict:
        """Emit a ``cm_cost`` record into a telemetry event sink.

        ``sink`` is anything with a ``record_event(kind, **fields)``
        method (a :class:`repro.telemetry.hub.Telemetry`) or an
        ``emit(kind, **fields)`` method (a bare
        :class:`repro.telemetry.events.EventStream`).  With a timing
        model and a flow-particle count, the record also carries the
        calibrated us/particle breakdown next to the raw costs, so the
        emulated machine's split lands in the same stream as the NumPy
        engine's wall-clock split.  Returns the record.
        """
        record = self.summary()
        if timing_model is not None and n_flow_particles:
            breakdown = timing_model.per_particle_us(self, n_flow_particles)
            record["us_per_particle"] = dict(breakdown.us_per_particle)
            record["us_per_particle_total"] = breakdown.total
        emit = getattr(sink, "record_event", None) or getattr(sink, "emit")
        emit("cm_cost", **record)
        return record


# ---------------------------------------------------------------------------
# Cost-model helpers: translate primitive executions into raw charges
# ---------------------------------------------------------------------------

class CostModel:
    """Charges primitive costs against a ledger for a VP geometry.

    All helpers cost *per physical processor time slice*: an elementwise
    op over ``n_active`` VPs with ``bits``-bit operands on a machine
    with ``P`` processors costs ``bits * ceil(n_active / P)`` because
    the SIMD machine serializes over the VP ratio and over bits.
    """

    def __init__(self, geometry: VPGeometry, ledger: CostLedger) -> None:
        self.geometry = geometry
        self.ledger = ledger

    # Convenience
    @property
    def _P(self) -> int:
        return self.geometry.machine.n_processors

    def _slices(self, n_active: int) -> float:
        """VP time slices consumed: ceil(active VPs per processor).

        The CM always cycles through the whole VP set (context flags
        mask inactive VPs but their slice is still spent), so the cost
        uses the full VP ratio; ``n_active`` only matters for
        communication volume.
        """
        return float(self.geometry.vpr)

    def elementwise(self, bits: int, nops: float = 1.0) -> None:
        """``nops`` bit-serial ALU operations on ``bits``-bit fields."""
        self.ledger.charge("alu", W_ALU * bits * nops * self._slices(0))

    def scan(self, bits: int, nscans: float = 1.0) -> None:
        """A (possibly segmented) scan over the full VP set.

        Cost: local up/down sweeps over the VP ratio plus the hypercube
        tree combine across physical processors, amortized over the VP
        ratio (one tree per scan regardless of VPR, so per-particle scan
        cost *falls* as the ratio rises -- one of the Figure 7 effects).
        """
        d = self.geometry.machine.hypercube_dimension
        local = W_SCAN_LOCAL * bits * self.geometry.vpr
        tree = W_SCAN_TREE * bits * d
        self.ledger.charge("scan", (local + tree) * nscans)

    def route(
        self,
        src_vp: np.ndarray,
        dst_vp: np.ndarray,
        payload_bits: int,
    ) -> float:
        """A general router send of ``payload_bits`` per message.

        The off-chip fraction is *measured* from the actual (src, dst)
        pattern.  Returns that fraction (useful for diagnostics).  Cost
        is charged per physical processor: total traffic divided by the
        processor count.
        """
        src_vp = np.asarray(src_vp)
        n = src_vp.size
        if n == 0:
            return 0.0
        f_off = self.geometry.offchip_fraction(src_vp, dst_vp)
        per_proc = n / self._P
        d = self.geometry.machine.hypercube_dimension
        self.ledger.charge(
            "route_off",
            W_ROUTE_OFF * payload_bits * f_off * per_proc
            + W_ROUTE_SETUP * d * min(1.0, f_off * n / self._P),
        )
        self.ledger.charge(
            "route_on", W_ROUTE_ON * payload_bits * (1.0 - f_off) * per_proc
        )
        return f_off

    def pair_exchange(self, payload_bits: int) -> float:
        """Even/odd neighbour exchange (VP 2i <-> 2i+1) of a payload.

        Uses the geometry's structural pair off-chip fraction: 100%
        off-chip at VPR 1, ~0% for even VPR >= 2.  Returns the fraction.
        """
        f_off = self.geometry.pair_offchip_fraction()
        per_proc = self.geometry.n_virtual / self._P
        # A neighbour exchange needs no router setup: at VPR >= 2 it is
        # pure local memory traffic; at VPR 1 it is a fixed-pattern
        # one-hop wire exchange.
        self.ledger.charge(
            "route_off", W_ROUTE_OFF * payload_bits * f_off * per_proc
        )
        self.ledger.charge(
            "route_on", W_ROUTE_ON * payload_bits * (1.0 - f_off) * per_proc
        )
        return f_off

    def sort_rank(self, key_bits: int) -> None:
        """Ranking cost of a radix sort over ``key_bits``-bit keys.

        Modelled as one split (two scans plus elementwise shuffling
        bookkeeping) per key bit, the standard CM radix-sort recipe of
        Hillis & Steele.
        """
        self.scan(bits=32, nscans=2 * key_bits)
        self.elementwise(bits=32, nops=2 * key_bits)


# ---------------------------------------------------------------------------
# Calibrated conversion to microseconds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-phase timing results in microseconds per particle per step."""

    us_per_particle: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.us_per_particle.values())

    def fractions(self) -> Dict[str, float]:
        """Per-phase share of the total time (the paper's table)."""
        t = self.total
        if t == 0:
            return {p: 0.0 for p in PHASES}
        return {p: v / t for p, v in self.us_per_particle.items()}


class CM2TimingModel:
    """Converts raw ledger costs into paper-comparable microseconds.

    Calibration: run the structural cost model once for the paper's
    anchor configuration (512k particles, 32k processors, VPR 16) with
    the anchor's representative communication fractions, and choose one
    scale per phase so the anchor evaluates to exactly
    ``7.2 us/particle/step`` split ``14/27/20/39``.  All other
    configurations then follow from structure alone.

    ``flow_fraction`` mirrors the paper's accounting: reported
    per-particle times divide by the particles *in the flow*, which is
    ~10% less than the total (the rest sit in the reservoir).
    """

    def __init__(
        self,
        machine: Optional[CM2] = None,
        anchor_particles: Optional[int] = None,
        flow_fraction: float = 0.9,
    ) -> None:
        self.machine = machine or CM2(n_processors=PAPER_CM2_PROCESSORS)
        if anchor_particles is None:
            # Anchor at the paper's VP ratio (512k / 32k = 16) scaled to
            # this machine, so scaled studies calibrate consistently.
            anchor_particles = 16 * self.machine.n_processors
        self.anchor_particles = anchor_particles
        self.flow_fraction = flow_fraction
        anchor_raw = _structural_step_costs(
            self.machine, anchor_particles
        )
        # us per raw-cost-unit, per phase, such that the anchor's phase
        # time equals fraction * 7.2us * n_flow.
        n_flow = anchor_particles * flow_fraction
        self._scale_us: Dict[str, float] = {}
        for p in PHASES:
            target_us = PAPER_PHASE_FRACTIONS[p] * PAPER_CM2_US_PER_PARTICLE * n_flow
            self._scale_us[p] = target_us / anchor_raw[p]

    def per_particle_us(
        self, ledger: CostLedger, n_flow_particles: int
    ) -> PhaseBreakdown:
        """Convert a ledger into us/particle/step for a run.

        ``n_flow_particles`` is the number of particles "actually in the
        flow" (the paper's denominator).
        """
        if ledger.steps == 0:
            raise MachineError("ledger has recorded no completed steps")
        if n_flow_particles <= 0:
            raise MachineError("n_flow_particles must be positive")
        out = {}
        for p in PHASES:
            raw_per_step = ledger.phase_total(p) / ledger.steps
            out[p] = self._scale_us[p] * raw_per_step / n_flow_particles
        return PhaseBreakdown(us_per_particle=out)

    def predict_for_machine(
        self, machine: CM2, n_particles: int
    ) -> PhaseBreakdown:
        """Predict another machine's time under THIS model's calibration.

        :meth:`predict_curve` re-uses this model's machine; cross-machine
        studies (weak scaling) must instead hold the calibration fixed
        and swap the structural machine, or the per-machine anchoring
        silently normalizes away exactly the effect under study.
        """
        raw = _structural_step_costs(machine, int(n_particles))
        n_flow = int(n_particles) * self.flow_fraction
        us = {p: self._scale_us[p] * raw[p] / n_flow for p in PHASES}
        return PhaseBreakdown(us_per_particle=us)

    def predict_curve(self, particle_counts) -> Dict[int, PhaseBreakdown]:
        """Predict Figure 7 purely from the structural model.

        For each particle count (machine size fixed), evaluate the
        structural per-step costs with representative communication
        fractions and convert with the calibrated scales.  This is the
        *model* curve; the CM engine produces the *measured* curve from
        actual runs.  The bench compares both to the paper.
        """
        results: Dict[int, PhaseBreakdown] = {}
        for n in particle_counts:
            raw = _structural_step_costs(self.machine, int(n))
            n_flow = int(n) * self.flow_fraction
            us = {
                p: self._scale_us[p] * raw[p] / n_flow for p in PHASES
            }
            results[int(n)] = PhaseBreakdown(us_per_particle=us)
        return results


def sort_displacement_offchip_fraction(vpr: int) -> float:
    """Representative off-chip fraction of the sort's data permutation.

    Measured runs show the randomized intra-cell reshuffle moves nearly
    every particle across a VP block boundary regardless of the ratio
    (cells hold more particles than a block holds VPs), so the volume
    fraction is ~1.  The *per-particle* sort communication still falls
    with the ratio because the fixed router-operation overhead
    (:data:`W_ROUTE_SETUP`, petit-cycle setup paid once per send
    operation) amortizes over more particles per processor -- the
    mechanism behind the paper's "communications in the sorting routine
    become more efficient" at larger ratios.  Kept as a function so
    sensitivity studies can override it.
    """
    if vpr <= 0:
        raise MachineError("vpr must be positive")
    return 1.0


def _structural_step_costs(machine: CM2, n_particles: int) -> Dict[str, float]:
    """Raw per-step phase costs of the algorithm's structural model.

    Mirrors exactly the charges the CM engine makes per time step (same
    helpers, same operation counts -- see ``core/engine_cm.py``), with
    representative communication fractions standing in for measured
    ones.  Operation counts (`nops`) are the engine's advertised
    per-phase ALU workloads.
    """
    geom = machine.geometry(n_particles)
    ledger = CostLedger()
    cost = CostModel(geom, ledger)
    b = 32

    with ledger.phase("motion"):
        # position update (2 adds), boundary predicate evaluation and
        # reflections (~10 ops), plunger/reservoir bookkeeping (~4 ops).
        cost.elementwise(bits=b, nops=16)

    with ledger.phase("sort"):
        # cell index (4 ops) + key scaling/mixing (3 ops)
        cost.elementwise(bits=b, nops=7)
        cost.sort_rank(key_bits=16)
        # data permutation of the full computational state
        f_off = sort_displacement_offchip_fraction(geom.vpr)
        payload = 9 * b  # 7 state words + cell index + packed permutation
        per_proc = n_particles / machine.n_processors
        d = machine.hypercube_dimension
        ledger.charge(
            "route_off",
            W_ROUTE_OFF * payload * f_off * per_proc
            + W_ROUTE_SETUP * d * min(1.0, f_off * per_proc),
        )
        ledger.charge("route_on", W_ROUTE_ON * payload * (1 - f_off) * per_proc)

    with ledger.phase("selection"):
        # segmented scans for cell population (2 scans) + density and
        # probability evaluation (~12 ops) + acceptance draw (2 ops)
        cost.scan(bits=b, nscans=2)
        cost.elementwise(bits=b, nops=14)
        # partner cell-index comparison exchange (1 word)
        cost.pair_exchange(payload_bits=b)

    with ledger.phase("collision"):
        # exchange of partner velocities (5 words) and the permutation
        # machinery + post-collision reconstruction (~40 ops: means,
        # relatives, permute, signs, stochastic rounding)
        cost.pair_exchange(payload_bits=5 * b)
        cost.elementwise(bits=b, nops=40)

    ledger.end_step()
    return {p: ledger.phase_total(p) for p in PHASES}
