"""Store unit tests: journal replay edge cases and the state machine.

The replay edge cases are the crash-recovery contract: an empty
journal, a torn final line, a journal written by a newer schema, and
replay idempotency.  No simulations run here -- the store is pure
bookkeeping.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    JobNotFoundError,
    JobStateError,
    JournalVersionError,
    ServiceJournalError,
)
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.service import store as st
from repro.service.store import (
    JobRecord,
    JobStore,
    ServiceJournal,
    load_journal_tolerant,
    replay,
    summarize_journal,
)

pytestmark = pytest.mark.service


def make_job(job_id="j1", **kw) -> JobRecord:
    fields = dict(
        job_id=job_id,
        scenario="wedge",
        spec={"name": "wedge"},
        seed=7,
        overrides={"nx": 32},
        schedule=(0, 24),
        cache_key="k-" + job_id,
        job_dir=f"/tmp/{job_id}",
        submitted_time=100.0,
    )
    fields.update(kw)
    return JobRecord(**fields)


def journal_path(tmp_path):
    return tmp_path / ServiceJournal.filename


class TestJournalLoading:
    def test_missing_journal_is_empty_not_an_error(self, tmp_path):
        records, torn = load_journal_tolerant(journal_path(tmp_path))
        assert records == [] and torn is False
        store = JobStore(tmp_path)
        assert store.jobs == {} and store.seq == 0

    def test_empty_file_is_empty(self, tmp_path):
        journal_path(tmp_path).write_text("")
        records, torn = load_journal_tolerant(journal_path(tmp_path))
        assert records == [] and torn is False

    def test_torn_final_line_is_dropped_and_flagged(self, tmp_path):
        good = {"kind": "service_start", "v": 1}
        journal_path(tmp_path).write_text(
            json.dumps(good) + "\n" + '{"kind": "submitted", "jo'
        )
        records, torn = load_journal_tolerant(journal_path(tmp_path))
        assert torn is True
        assert records == [good]

    def test_store_repairs_the_torn_tail(self, tmp_path):
        good = {"kind": "service_start", "v": 1}
        journal_path(tmp_path).write_text(
            json.dumps(good) + "\n" + '{"kind": "subm'
        )
        store = JobStore(tmp_path)
        assert store.torn_tail is True
        store.record("noop")
        store.close()
        # Every line parses again: the repair dropped the partial one
        # instead of letting the next append weld onto it.
        records, torn = load_journal_tolerant(journal_path(tmp_path))
        assert torn is False
        assert [r["kind"] for r in records] == ["service_start", "noop"]

    def test_garbage_before_the_tail_raises(self, tmp_path):
        journal_path(tmp_path).write_text(
            '{"kind": "ser\n{"kind": "service_stop", "v": 1}\n'
        )
        with pytest.raises(ServiceJournalError, match="corrupt"):
            load_journal_tolerant(journal_path(tmp_path))

    def test_newer_schema_version_raises(self, tmp_path):
        journal_path(tmp_path).write_text(
            json.dumps({"kind": "service_start", "v": st.JOURNAL_VERSION + 1})
            + "\n"
        )
        with pytest.raises(JournalVersionError, match="newer"):
            JobStore(tmp_path)


class TestReplay:
    def records(self):
        job = make_job()
        return [
            {"kind": "service_start", "v": 1},
            {"kind": "submitted", "v": 1, "job": job.to_dict()},
            {"kind": "state", "v": 1, "job_id": "j1",
             "state": st.RUNNING, "attempt": 1, "started_time": 101.0},
            {"kind": "state", "v": 1, "job_id": "j1",
             "state": st.DONE, "finished_time": 109.0, "exit_code": 0},
            {"kind": "cached", "v": 1, "key": "k-j1", "job_id": "j1"},
        ]

    def test_replay_reconstructs_the_job(self):
        jobs, cache = replay(self.records())
        job = jobs["j1"]
        assert job.state == st.DONE
        assert job.attempt == 1
        assert job.started_time == 101.0
        assert job.finished_time == 109.0
        assert cache == {"k-j1": "j1"}

    def test_replay_is_idempotent(self):
        records = self.records()
        assert replay(records) == replay(records)

    def test_replay_tolerates_unknown_informational_kinds(self):
        records = self.records() + [
            {"kind": "solar_flare_warning", "v": 1, "severity": "high"}
        ]
        jobs, _ = replay(records)
        assert jobs["j1"].state == st.DONE

    def test_replay_tolerates_state_for_unknown_job(self):
        # Only reachable through manual journal surgery, but the
        # restart path must never crash on it.
        jobs, _ = replay(
            [{"kind": "state", "v": 1, "job_id": "ghost",
              "state": st.DONE}]
        )
        assert jobs == {}

    def test_lost_tail_record_rolls_back_one_transition(self, tmp_path):
        # Simulating the real crash: the DONE record was torn away, so
        # the job replays as RUNNING and the orchestrator requeues it.
        records = self.records()
        blob = "".join(json.dumps(r) + "\n" for r in records[:-2])
        blob += json.dumps(records[-2])[: len(json.dumps(records[-2])) // 2]
        journal_path(tmp_path).write_text(blob)
        store = JobStore(tmp_path)
        assert store.torn_tail is True
        assert store.jobs["j1"].state == st.RUNNING


class TestStateMachine:
    def store(self, tmp_path):
        store = JobStore(tmp_path)
        store.add_job(make_job())
        return store

    def test_happy_path(self, tmp_path):
        store = self.store(tmp_path)
        store.transition("j1", st.RUNNING, attempt=1)
        store.transition("j1", st.DONE, exit_code=0)
        assert store.get("j1").terminal

    def test_retry_loop(self, tmp_path):
        store = self.store(tmp_path)
        store.transition("j1", st.RUNNING, attempt=1)
        store.transition("j1", st.RETRYING, error="boom")
        store.transition("j1", st.QUEUED, not_before=123.0)
        store.transition("j1", st.RUNNING, attempt=2)
        job = store.get("j1")
        assert job.attempt == 2 and job.not_before == 123.0

    def test_invalid_transition_rejected(self, tmp_path):
        store = self.store(tmp_path)
        with pytest.raises(JobStateError, match="invalid"):
            store.transition("j1", st.DONE)  # QUEUED -> DONE skips RUNNING

    @pytest.mark.parametrize(
        "terminal", sorted(st.TERMINAL_STATES)
    )
    def test_terminal_states_are_absorbing(self, tmp_path, terminal):
        store = JobStore(tmp_path)
        store.add_job(make_job())
        store.transition("j1", st.RUNNING)
        store.transition("j1", terminal)
        for requested in st.VALID_TRANSITIONS:
            with pytest.raises(JobStateError):
                store.transition("j1", requested)

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobNotFoundError):
            store.get("nope")

    def test_duplicate_submission_id_rejected(self, tmp_path):
        store = self.store(tmp_path)
        with pytest.raises(JobStateError, match="duplicate"):
            store.add_job(make_job())

    def test_transitions_survive_restart(self, tmp_path):
        store = self.store(tmp_path)
        store.transition("j1", st.RUNNING, attempt=1, started_time=5.0)
        store.transition("j1", st.TIMED_OUT, error="deadline")
        store.close()
        again = JobStore(tmp_path)
        job = again.get("j1")
        assert job.state == st.TIMED_OUT
        assert job.error == "deadline"
        assert job.started_time == 5.0


class TestJournalTearFault:
    def test_injected_tear_kills_the_writer_and_is_recoverable(
        self, tmp_path
    ):
        plan = FaultPlan([FaultSpec("journal_tear", step=3)])
        store = JobStore(tmp_path, fault_plan=plan)
        store.add_job(make_job())          # seq 1
        store.transition("j1", st.RUNNING)  # seq 2
        with pytest.raises(ServiceJournalError, match="torn"):
            store.transition("j1", st.DONE)  # seq 3: torn mid-write
        # Restart: the torn DONE record is gone, the job replays as
        # RUNNING, exactly what a crash mid-append must look like.
        again = JobStore(tmp_path)
        assert again.torn_tail is True
        assert again.get("j1").state == st.RUNNING


class TestSummarize:
    def test_missing_journal_returns_none(self, tmp_path):
        assert summarize_journal(tmp_path) is None

    def test_counts(self, tmp_path):
        store = JobStore(tmp_path)
        store.add_job(make_job("a"))
        store.add_job(make_job("b"))
        store.transition("a", st.RUNNING, attempt=1)
        store.transition("a", st.RETRYING, error="x")
        store.transition("a", st.QUEUED)
        store.transition("b", st.RUNNING, attempt=1)
        store.transition("b", st.DONE)
        store.record("cache_hit", key="k-b", job_id="b")
        store.record("backpressure", queue_depth=8, limit=8)
        store.record("drained", job_id="a", exit_code=3)
        store.transition("a", st.RUNNING, attempt=2)
        store.transition("a", st.QUEUED, requeued=True)
        store.close()
        summary = summarize_journal(tmp_path)
        assert summary["jobs"] == 2
        assert summary["submissions"] == 2
        assert summary["retries"] == 1
        assert summary["cache_hits"] == 1
        assert summary["backpressure"] == 1
        assert summary["drains"] == 1
        assert summary["requeues"] == 1
        assert summary["by_state"] == {st.QUEUED: 1, st.DONE: 1}
        assert summary["torn_tail"] is False
