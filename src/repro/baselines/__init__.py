"""Baseline collision schemes the paper compares against.

"Selection of Collision Partners" discusses three families:

* **Bird's Monte Carlo method** (:mod:`~repro.baselines.bird`): random
  pairs within a cell collide "until the asynchronous cell time exceeds
  the global simulation time".  Parallelizable only at cell level,
  strongly influenced by cell-population fluctuations.
* **Nanbu's scheme** and **Ploss's O(N) vectorization**
  (:mod:`~repro.baselines.nanbu`): a per-particle collision probability
  with one-sided updates; better theoretical footing but "conserve only
  the mean energy and momentum of a cell".
* The paper's **McDonald-Baganoff selection rule** (:mod:`repro.core`):
  per-pair probability, exact per-collision conservation, particle-level
  parallelism.

The ablation benches run all three on identical relaxation workloads and
report throughput, conservation drift, and equilibrium quality.
"""

from repro.baselines.common import HeatBath, SchemeResult
from repro.baselines.bird import BirdTimeCounter
from repro.baselines.bird_ntc import BirdNTC
from repro.baselines.nanbu import NanbuPloss
from repro.baselines.baganoff import BaganoffSelection

__all__ = [
    "HeatBath",
    "SchemeResult",
    "BirdTimeCounter",
    "BirdNTC",
    "NanbuPloss",
    "BaganoffSelection",
]
