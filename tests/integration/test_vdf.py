"""Velocity-distribution probes: kinetic structure of the shock front."""

import math

import numpy as np
import pytest

from repro.analysis.vdf import VDFProbe, maxwellian_reference
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.slow


class TestProbeMechanics:
    def test_window_selection(self, rng):
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        from repro.core.particles import ParticleArrays

        pop = ParticleArrays.from_freestream(rng, 1000, fs, (0, 10), (0, 10))
        probe = VDFProbe((2, 4), (3, 6))
        n = probe.sample(pop)
        expected = int(
            (
                (pop.x >= 2) & (pop.x < 4) & (pop.y >= 3) & (pop.y < 6)
            ).sum()
        )
        assert n == expected == probe.n_samples

    def test_sample_cap(self, rng):
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        from repro.core.particles import ParticleArrays

        pop = ParticleArrays.from_freestream(rng, 500, fs, (0, 1), (0, 1))
        probe = VDFProbe((0, 1), (0, 1), max_samples=100)
        probe.sample(pop)
        assert probe.sample(pop) == 0  # capped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VDFProbe((0, 1), (0, 1), component="q")
        with pytest.raises(ConfigurationError):
            VDFProbe((1, 0), (0, 1))
        with pytest.raises(ConfigurationError):
            VDFProbe((0, 1), (0, 1)).values()

    def test_moments_of_known_gaussian(self, rng):
        probe = VDFProbe((0, 1), (0, 1))
        probe._chunks = [rng.normal(2.0, 0.5, size=200_000)]
        probe._count = 200_000
        m = probe.moments()
        assert m["mean"] == pytest.approx(2.0, abs=0.01)
        assert m["variance"] == pytest.approx(0.25, rel=0.02)
        assert abs(m["skewness"]) < 0.02
        assert abs(m["excess_kurtosis"]) < 0.05

    def test_reference_pdf_normalized(self):
        x = np.linspace(-2, 2, 4001)
        pdf = maxwellian_reference(0.3, 0.0, x)
        assert np.trapezoid(pdf, x) == pytest.approx(1.0, abs=1e-3)


class TestShockInteriorKinetics:
    @pytest.fixture(scope="class")
    def probed_run(self):
        cfg = SimulationConfig(
            domain=Domain(49, 32),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=1.5, density=14.0
            ),
            wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
            seed=33,
        )
        sim = Simulation(cfg)
        sim.run(200)
        # Probes: freestream box; shock-front box at ~75% chord where
        # the (45 deg) front passes y ~ [9, 11] for x ~ [19, 21].  At
        # lambda = 1.5 the front is several cells thick, so a fixed box
        # on its upstream side samples the two-stream interior in every
        # realization (at lambda = 0.5 the front is ~1 cell thick and
        # realization-to-realization shock drift moves it in and out of
        # any fixed box, making the excess-variance statistic flaky).
        # The freestream box sits upstream of the leading edge: at
        # lambda = 1.5 hot front particles random-walk far enough that
        # boxes above the wedge pick up a percent-level variance tail.
        free = VDFProbe((2, 9), (20, 30), component="u")
        front = VDFProbe((18.0, 22.0), (10.5, 14.0), component="u")
        sim.probes = [free, front]
        sim.run(260, sample=True)
        return sim, free, front

    def test_freestream_probe_is_equilibrium(self, probed_run):
        sim, free, front = probed_run
        fs = sim.config.freestream
        m = free.moments()
        assert m["mean"] == pytest.approx(fs.speed, rel=0.03)
        assert m["variance"] == pytest.approx(fs.c_mp**2 / 2, rel=0.08)
        assert free.mixture_excess_variance(fs.c_mp**2 / 2) < 0.15

    def test_shock_interior_is_not_equilibrium(self, probed_run):
        # The kinetic signature: the VDF inside the front carries MORE
        # variance than ANY local equilibrium could.  The hottest
        # equilibrium in the problem is the post-shock state, so
        # variance above eq_var_post proves a two-stream (kinetic)
        # mixture.  Interior collisions partially equilibrate the
        # front, so the excess is percent-level -- measured 0.04-0.06
        # across independent seeds at this Knudsen number, while the
        # variance estimator's noise at ~1e5 samples is ~0.5%, so the
        # 3% threshold is a >5-sigma detection with headroom for
        # realization-to-realization shock drift.
        sim, free, front = probed_run
        fs = sim.config.freestream
        beta = theory.shock_angle(fs.mach, math.radians(30.0))
        mn = fs.mach * math.sin(beta)
        t_ratio = theory.normal_shock_temperature_ratio(mn)
        eq_var_post = (fs.c_mp**2 / 2) * t_ratio
        excess = front.mixture_excess_variance(eq_var_post)
        assert front.n_samples > 30_000
        assert excess > 0.03

    def test_shock_interior_mean_between_states(self, probed_run):
        sim, free, front = probed_run
        fs = sim.config.freestream
        # Downstream u (normal to a 45 deg shock, flow turned 30 deg):
        # bulk x velocity behind the oblique shock.
        m2 = theory.post_oblique_shock_mach(fs.mach, math.radians(30.0))
        beta = theory.shock_angle(fs.mach, math.radians(30.0))
        t_ratio = theory.normal_shock_temperature_ratio(
            fs.mach * math.sin(beta)
        )
        a2 = fs.sound_speed * math.sqrt(t_ratio)
        u2x = m2 * a2 * math.cos(math.radians(30.0))
        mean = front.moments()["mean"]
        lo, hi = sorted((u2x, fs.speed))
        assert lo - 0.02 < mean < hi + 0.02
