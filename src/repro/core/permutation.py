"""Permutation-vector machinery for the collision routine.

Part of each particle's *computational state* is "a five element
permutation vector ... used in the collision routine to re-order the
relative velocity components".  The paper initializes particles with
random permutations from a front-end table (Knuth's algorithm) and then
refreshes them by performing **one random transposition per collision**:
swap a randomly chosen element with the first element.  Aldous &
Diaconis prove n log n such transpositions produce a statistically fresh
permutation (~10 for n = 5); the paper finds one per collision
sufficient because partner selection randomizes outcomes anyway -- an
ablation bench quantifies that claim.

All operations are vectorized across particles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import random_permutation_table


def initialize_permutations(
    rng: np.random.Generator, n: int, length: int = 5
) -> np.ndarray:
    """Fresh random permutation vectors for ``n`` particles.

    Thin wrapper over :func:`repro.rng.random_permutation_table` (the
    "table stored on the front end computer").
    """
    return random_permutation_table(rng, n, length)


def apply_permutation(values: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Re-order each row of ``values`` by its permutation vector.

    ``out[i, k] = values[i, perm[i, k]]`` -- the collision routine's
    shuffling of the five relative components.
    """
    values = np.asarray(values)
    perm = np.asarray(perm)
    if values.shape != perm.shape:
        raise ConfigurationError(
            f"values {values.shape} and perm {perm.shape} shapes differ"
        )
    if values.flags.c_contiguous:
        # Flattened gather: one 1-D take instead of the (rows, perm)
        # double-index path (~2x faster on the collision hot path).
        n, k = values.shape
        idx = perm + (np.arange(n) * k)[:, None]
        return np.take(values.reshape(-1), idx)
    rows = np.arange(values.shape[0])[:, None]
    return values[rows, perm]


def random_transpose_inplace(
    perm: np.ndarray,
    swap_with: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> None:
    """One random transposition per (masked) row, in place.

    Swaps element ``swap_with[i]`` with element 0 of row ``i`` -- the
    paper's "transposition of the j-th element with the first element".
    ``mask`` limits the operation to particles that actually collided
    this step.
    """
    perm = np.asarray(perm)
    swap_with = np.asarray(swap_with)
    if swap_with.shape[0] != perm.shape[0]:
        raise ConfigurationError("swap_with must have one entry per row")
    if perm.shape[0] == 0:
        return
    if swap_with.min() < 0 or swap_with.max() >= perm.shape[1]:
        raise ConfigurationError("swap index out of range")
    if mask is None:
        rows = np.arange(perm.shape[0])
        js = swap_with
    else:
        rows = np.flatnonzero(mask)
        js = swap_with[rows]
    tmp = perm[rows, js].copy()
    perm[rows, js] = perm[rows, 0]
    perm[rows, 0] = tmp


def permutation_correlation(perm_a: np.ndarray, perm_b: np.ndarray) -> float:
    """Fraction of fixed positions between two permutation tables.

    For independent uniform permutations of length k the expected
    fraction of agreeing positions is 1/k (0.2 for k = 5); values well
    above that indicate the refresh is too slow.  Used by the mixing
    tests around the Aldous-Diaconis bound.
    """
    a = np.asarray(perm_a)
    b = np.asarray(perm_b)
    if a.shape != b.shape or a.ndim != 2:
        raise ConfigurationError("permutation tables must share a 2-D shape")
    if a.size == 0:
        return 0.0
    return float((a == b).mean())
