"""FIG4 -- Figure 4: density contours, rarefied (Kn = 0.02) flow.

Same geometry and contour intervals as figure 1, but with the
freestream mean free path at 0.5 cell widths: "The shock width in this
solution is measured to be 5 cell widths.  As expected, the shock in the
rarefied flow is wider than in the near-continuum case."
"""

from repro.analysis.contour import render_ascii, save_field_npz
from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import (
    fit_shock_angle,
    post_shock_plateau,
    shock_thickness,
)
from repro.constants import (
    PAPER_DENSITY_RATIO,
    PAPER_KNUDSEN,
    PAPER_REYNOLDS,
    PAPER_SHOCK_ANGLE_DEG,
    PAPER_SHOCK_THICKNESS_RAREFIED,
)

from benchmarks.common import OUT_DIR, WEDGE


def test_fig4_rarefied_contours(benchmark, rarefied_solution, continuum_solution, emit):
    sim = rarefied_solution
    rho = sim.density_ratio_field()

    def regenerate():
        fit = fit_shock_angle(rho, WEDGE)
        plateau = post_shock_plateau(rho, WEDGE, fit)
        thick = shock_thickness(rho, WEDGE, fit, plateau=plateau)
        return fit, plateau, thick

    fit, plateau, thick = benchmark(regenerate)

    rho_cont = continuum_solution.density_ratio_field()
    fit_c = fit_shock_angle(rho_cont, WEDGE)
    plateau_c = post_shock_plateau(rho_cont, WEDGE, fit_c)
    thick_cont = shock_thickness(rho_cont, WEDGE, fit_c, plateau=plateau_c)

    fs = sim.config.freestream
    rec = ExperimentRecord("FIG4", "rarefied density contours (Kn = 0.02)")
    rec.add("Knudsen number", PAPER_KNUDSEN, fs.knudsen(WEDGE.base), rel_tol=1e-6)
    rec.add("Reynolds number", PAPER_REYNOLDS, fs.reynolds(WEDGE.base), rel_tol=0.05)
    rec.add("shock angle (deg)", PAPER_SHOCK_ANGLE_DEG, fit.angle_deg, rel_tol=0.08)
    rec.add(
        "post-shock density ratio", PAPER_DENSITY_RATIO, plateau, rel_tol=0.1
    )
    rec.add(
        "shock thickness (cells)",
        PAPER_SHOCK_THICKNESS_RAREFIED,
        thick,
        rel_tol=0.5,
        note="paper reads 5 off fig 4",
    )
    rec.add(
        "thickness ratio rarefied / continuum",
        PAPER_SHOCK_THICKNESS_RAREFIED / 3.0,
        thick / thick_cont,
        rel_tol=0.5,
        note="the rarefied shock must be wider",
    )
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(str(OUT_DIR / "fig4_rarefied.npz"), density_ratio=rho)
    (OUT_DIR / "fig4_contours.txt").write_text(render_ascii(rho))
    assert thick > thick_cont  # the headline rarefaction effect
