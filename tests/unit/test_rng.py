"""Unit tests for the random utilities."""

import numpy as np
import pytest

from repro.rng import (
    DEFAULT_SEED,
    make_rng,
    random_permutation_table,
    random_signs,
    random_transposition_pairs,
    shard_stream,
    spawn_streams,
)


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=4)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_integer_seeds_are_deterministic(self):
        assert np.array_equal(
            make_rng(7).random(3), make_rng(7).random(3)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g


class TestSpawnStreams:
    def test_streams_are_independent_and_deterministic(self):
        a1, b1 = spawn_streams(9, 2)
        a2, b2 = spawn_streams(9, 2)
        assert np.array_equal(a1.random(5), a2.random(5))
        assert not np.array_equal(a1.random(5), b1.random(5))

    def test_zero_streams(self):
        assert spawn_streams(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(2)
        streams = spawn_streams(g, 3)
        assert len(streams) == 3


class TestShardStream:
    """The 4-word counter key ``(seed, replica, shard, step)``."""

    def test_deterministic(self):
        a = shard_stream(11, 2, 5, replica=3).random(8)
        b = shard_stream(11, 2, 5, replica=3).random(8)
        assert np.array_equal(a, b)

    def test_pairwise_disjoint_over_key_grid(self):
        # Streams for distinct (seed, replica, shard, step) keys must be
        # mutually disjoint: sample a grid spanning every axis and check
        # all pairs of draw blocks differ.  With 64-bit Philox output a
        # single matching 16-draw block would be astronomically unlikely
        # unless two keys collapsed onto the same counter segment.
        keys = [
            (seed, replica, shard, step)
            for seed in (0, 1, 19890101)
            for replica in (0, 1, 7)
            for shard in (0, 3)
            for step in (0, 1, 250)
        ]
        blocks = [
            shard_stream(s, sh, st, replica=r).integers(
                0, 1 << 62, size=16
            )
            for (s, r, sh, st) in keys
        ]
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                assert not np.array_equal(blocks[i], blocks[j]), (
                    f"streams for keys {keys[i]} and {keys[j]} collide"
                )

    def test_legacy_three_key_call_is_replica_zero(self):
        # Pre-ensemble callers passed no replica; their streams must be
        # bitwise what replica=0 yields (the counter word was always 0).
        a = shard_stream(42, 1, 9).random(32)
        b = shard_stream(42, 1, 9, replica=0).random(32)
        assert np.array_equal(a, b)

    def test_replicas_get_distinct_streams(self):
        a = shard_stream(5, 0, 0, replica=0).random(16)
        b = shard_stream(5, 0, 0, replica=1).random(16)
        assert not np.array_equal(a, b)

    def test_seed_sequence_matches_int_seed(self):
        # The int fast path (cached key) and the SeedSequence path must
        # derive the same Philox key.
        a = shard_stream(123, 4, 2, replica=1).random(8)
        b = shard_stream(
            np.random.SeedSequence(123), 4, 2, replica=1
        ).random(8)
        assert np.array_equal(a, b)

    def test_none_seed_uses_default(self):
        a = shard_stream(None, 0, 1).random(4)
        b = shard_stream(DEFAULT_SEED, 0, 1).random(4)
        assert np.array_equal(a, b)

    def test_negative_replica_rejected(self):
        with pytest.raises(ValueError):
            shard_stream(1, 0, 0, replica=-1)

    def test_negative_shard_or_step_rejected(self):
        with pytest.raises(ValueError):
            shard_stream(1, -1, 0)
        with pytest.raises(ValueError):
            shard_stream(1, 0, -2)

    def test_live_generator_seed_rejected(self):
        with pytest.raises(ValueError):
            shard_stream(np.random.default_rng(3), 0, 0)


class TestRandomSigns:
    def test_only_plus_minus_one(self, rng):
        s = random_signs(rng, (1000, 5))
        assert set(np.unique(s).tolist()) == {-1, 1}

    def test_balanced(self, rng):
        s = random_signs(rng, 100_000)
        assert abs(s.mean()) < 0.02


class TestPermutationTable:
    def test_rows_are_permutations(self, rng):
        t = random_permutation_table(rng, 500, length=5)
        assert t.shape == (500, 5)
        sorted_rows = np.sort(t, axis=1)
        assert np.array_equal(
            sorted_rows, np.broadcast_to(np.arange(5, dtype=np.int8), (500, 5))
        )

    def test_uniform_first_element(self, rng):
        # Each value should appear in position 0 about n/5 times.
        t = random_permutation_table(rng, 50_000, length=5)
        counts = np.bincount(t[:, 0], minlength=5)
        assert np.all(np.abs(counts - 10_000) < 600)

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            random_permutation_table(rng, -1)

    def test_zero_rows(self, rng):
        assert random_permutation_table(rng, 0).shape == (0, 5)


class TestTranspositionDraws:
    def test_in_range(self, rng):
        (j,) = random_transposition_pairs(rng, 1000, length=5)
        assert j.min() >= 0 and j.max() <= 4
