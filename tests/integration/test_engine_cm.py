"""Integration tests for the CM-2 fixed-point engine."""

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.cm.timing import PHASES
from repro.constants import PAPER_PHASE_FRACTIONS
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


@pytest.fixture
def cm_config():
    return SimulationConfig(
        domain=Domain(30, 20),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0),
        wedge=Wedge(x_leading=8, base=10, angle_deg=30),
        seed=11,
    )


@pytest.fixture
def machine():
    return CM2(n_processors=256)


class TestBasics:
    def test_runs_and_reports(self, cm_config, machine):
        sim = CMSimulation(cm_config, machine=machine)
        out = sim.run(5)
        assert out["step"] == 5
        assert out["n_flow"] > 0
        assert out["n_collisions"] >= 0
        assert 0.0 <= out["sort_offchip_fraction"] <= 1.0

    def test_state_is_fixed_point(self, cm_config, machine):
        sim = CMSimulation(cm_config, machine=machine)
        sim.run(3)
        assert sim.state.xq.dtype == np.int32
        assert sim.state.uq.dtype == np.int32
        # Decoded positions representable on the 2**-23 grid.
        p = sim.particles
        assert np.allclose(p.x * 2**23, np.round(p.x * 2**23))

    def test_halve_mode_validated(self, cm_config, machine):
        with pytest.raises(ConfigurationError):
            CMSimulation(cm_config, machine=machine, halve_mode="round")

    def test_domain_must_fit_format(self, machine):
        cfg = SimulationConfig(
            domain=Domain(300, 20),
            freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=2.0),
            wedge=None,
            seed=1,
        )
        with pytest.raises(ConfigurationError):
            CMSimulation(cfg, machine=machine)


class TestPhysicsAgreement:
    def test_matches_reference_engine_statistically(self, cm_config, machine):
        # Same config, different arithmetic: bulk statistics must agree.
        ref = Simulation(cm_config)
        cm = CMSimulation(cm_config, machine=machine)
        ref.run(25)
        cm.run(25)
        assert cm.particles.n == pytest.approx(ref.particles.n, rel=0.05)
        assert cm.particles.u.mean() == pytest.approx(
            ref.particles.u.mean(), rel=0.05
        )
        assert cm.total_energy() / cm.particles.n == pytest.approx(
            ref.particles.total_energy() / ref.particles.n, rel=0.05
        )

    def test_stochastic_rounding_beats_truncation(self):
        # The paper's energy-loss story, isolated to the collision
        # arithmetic on a cold (stagnation-like) bath: truncating halves
        # bleed energy; stochastic rounding holds it.
        from repro.core.engine_cm import fixed_point_energy_drift

        trunc = fixed_point_energy_drift("truncate", rounds=40, seed=1)
        stoch = fixed_point_energy_drift("stochastic", rounds=40, seed=1)
        assert trunc < -0.05  # percent-level loss, cumulative
        assert abs(stoch) < abs(trunc) / 10

    def test_drift_scales_with_coldness(self):
        # Colder bath (fewer LSBs per velocity word) -> worse relative
        # truncation loss: the "stagnation regions" dependence.
        from repro.core.engine_cm import fixed_point_energy_drift

        cold = fixed_point_energy_drift(
            "truncate", rounds=25, c_mp_lsb=48.0, seed=2
        )
        warm = fixed_point_energy_drift(
            "truncate", rounds=25, c_mp_lsb=384.0, seed=2
        )
        assert cold < warm < 0.0


class TestTiming:
    def test_phase_breakdown_close_to_paper(self, cm_config):
        # Run at the calibration VP ratio (16) so fractions line up.
        machine = CM2(n_processors=128)
        sim = CMSimulation(cm_config, machine=machine)
        sim.run(8)
        pb = sim.phase_breakdown()
        fr = pb.fractions()
        for p in PHASES:
            assert fr[p] == pytest.approx(PAPER_PHASE_FRACTIONS[p], abs=0.08)

    def test_measured_figure7_decline(self, machine):
        # Fixed machine, growing problem: per-particle time falls.
        totals = {}
        for density in (2.0, 16.0):
            cfg = SimulationConfig(
                domain=Domain(20, 13),
                freestream=Freestream(
                    mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
                ),
                wedge=None,
                seed=2,
            )
            sim = CMSimulation(cfg, machine=machine)
            sim.run(6)
            totals[density] = sim.phase_breakdown().total
        assert totals[16.0] < totals[2.0]

    def test_ledger_accumulates_steps(self, cm_config, machine):
        sim = CMSimulation(cm_config, machine=machine)
        sim.run(4)
        assert sim.ledger.steps == 4
        assert sim.ledger.total() > 0
