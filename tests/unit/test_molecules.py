"""Unit tests for the molecular interaction models."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.molecules import (
    MolecularModel,
    hard_sphere,
    maxwell_molecule,
    vhs_like,
)


class TestMaxwellMolecule:
    def test_speed_exponent_vanishes(self):
        # Eq. (8): Maxwell molecules (alpha = 4) drop the g dependence.
        assert maxwell_molecule().speed_exponent == 0.0
        assert maxwell_molecule().is_maxwell

    def test_diatomic_by_default(self):
        m = maxwell_molecule()
        assert m.rotational_dof == 2
        assert m.relative_components == 5  # the paper's 5-element vector
        assert m.gamma == pytest.approx(1.4)

    def test_rotational_energy_fraction(self):
        assert maxwell_molecule().rotational_energy_fraction == pytest.approx(
            2 / 5
        )
        assert maxwell_molecule(0).rotational_energy_fraction == 0.0

    def test_speed_factor_is_unity(self, rng):
        g = rng.random(100) * 2
        f = maxwell_molecule().speed_factor(g, g_ref=1.0)
        assert np.allclose(f, 1.0)


class TestHardSphere:
    def test_speed_exponent_is_one(self):
        assert hard_sphere().speed_exponent == 1.0

    def test_speed_factor_linear(self):
        f = hard_sphere().speed_factor(np.array([0.5, 1.0, 2.0]), g_ref=1.0)
        assert np.allclose(f, [0.5, 1.0, 2.0])

    def test_zero_relative_speed_never_collides(self):
        f = hard_sphere().speed_factor(np.array([0.0]), g_ref=1.0)
        assert f[0] == 0.0


class TestPowerLaw:
    def test_future_work_general_alpha(self):
        # alpha = 8: exponent 1 - 4/8 = 0.5.
        m = vhs_like(8.0)
        assert m.speed_exponent == pytest.approx(0.5)
        f = m.speed_factor(np.array([4.0]), g_ref=1.0)
        assert f[0] == pytest.approx(2.0)

    def test_soft_molecules_negative_exponent(self):
        # 2 < alpha < 4: probability *rises* as g falls; zero-g pairs
        # clamp to 0 (no momentum to exchange).
        m = vhs_like(3.0)
        assert m.speed_exponent < 0
        f = m.speed_factor(np.array([0.0, 0.25]), g_ref=1.0)
        assert f[0] == 0.0
        assert f[1] > 1.0

    def test_alpha_at_most_2_rejected(self):
        with pytest.raises(ConfigurationError):
            MolecularModel(alpha=2.0)

    def test_negative_dof_rejected(self):
        with pytest.raises(ConfigurationError):
            MolecularModel(rotational_dof=-1)

    def test_nonpositive_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            MolecularModel(mass=0.0)

    def test_gref_validated(self):
        with pytest.raises(ConfigurationError):
            hard_sphere().speed_factor(np.array([1.0]), g_ref=0.0)


class TestVibrationHook:
    def test_extra_internal_dof_changes_gamma(self):
        # Future Work: "relaxation into vibrational energy" -- modelled
        # as additional classical internal DOF.
        m = maxwell_molecule(rotational_dof=4)
        assert m.total_dof == 7
        assert m.gamma == pytest.approx(9 / 7)
        assert m.relative_components == 7
