"""Legacy-VTK structured-points writer for field output.

Density/temperature/Mach fields are cell data on a uniform grid --
exactly the legacy VTK ``STRUCTURED_POINTS`` dataset, which every
scientific visualizer (ParaView, VisIt, PyVista) reads natively.  The
writer is pure text, dependency-free, and covers 2-D fields (written as
a one-cell-thick 3-D grid) and 3-D fields.

Example::

    from repro.io.vtk import write_vtk_fields
    write_vtk_fields("wedge.vtk", density_ratio=rho, mach=mach_field)
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.errors import ConfigurationError

PathLike = Union[str, pathlib.Path]


def _format_scalars(name: str, field: np.ndarray) -> str:
    """One SCALARS block in x-fastest (VTK) order."""
    # VTK wants x varying fastest: our fields are [i (x), j (y), (k)].
    if field.ndim == 2:
        ordered = field.T.reshape(-1)  # j slow, i fast
    else:
        ordered = np.transpose(field, (2, 1, 0)).reshape(-1)
    lines = [f"SCALARS {name} float 1", "LOOKUP_TABLE default"]
    vals = np.asarray(ordered, dtype=np.float64)
    # 6 values per line keeps files diff-able and well under VTK's
    # line-length limits.
    for start in range(0, vals.size, 6):
        chunk = vals[start : start + 6]
        lines.append(" ".join(f"{v:.6g}" for v in chunk))
    return "\n".join(lines)


def write_vtk_fields(
    path: PathLike,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
    **fields: np.ndarray,
) -> None:
    """Write named cell-data fields to a legacy VTK file.

    All fields must share one shape: ``(nx, ny)`` (written one cell
    thick) or ``(nx, ny, nz)``.  Field names become the VTK scalar
    names (letters, digits, underscores).
    """
    if not fields:
        raise ConfigurationError("no fields given")
    shapes = {np.asarray(f).shape for f in fields.values()}
    if len(shapes) != 1:
        raise ConfigurationError(f"fields disagree on shape: {shapes}")
    shape = shapes.pop()
    if len(shape) == 2:
        nx, ny = shape
        nz = 1
    elif len(shape) == 3:
        nx, ny, nz = shape
    else:
        raise ConfigurationError("fields must be 2-D or 3-D")
    for name in fields:
        if not name.replace("_", "").isalnum():
            raise ConfigurationError(f"invalid VTK field name {name!r}")

    header = [
        "# vtk DataFile Version 3.0",
        "repro field dump (Dagum 1989 reproduction)",
        "ASCII",
        "DATASET STRUCTURED_POINTS",
        # Cell data on an (nx, ny, nz)-cell grid needs nx+1.. points.
        f"DIMENSIONS {nx + 1} {ny + 1} {nz + 1}",
        f"ORIGIN {origin[0]:g} {origin[1]:g} {origin[2]:g}",
        f"SPACING {spacing[0]:g} {spacing[1]:g} {spacing[2]:g}",
        f"CELL_DATA {nx * ny * nz}",
    ]
    blocks = [
        _format_scalars(name, np.asarray(f, dtype=np.float64).reshape(
            (nx, ny) if nz == 1 and len(shape) == 2 else shape
        ))
        for name, f in fields.items()
    ]
    pathlib.Path(path).write_text("\n".join(header + blocks) + "\n")


def read_vtk_scalars(path: PathLike) -> dict:
    """Minimal reader for files this module wrote (round-trip tests).

    Returns ``{name: flat float array}`` plus ``"_dimensions"`` with the
    (points) DIMENSIONS triple.  Not a general VTK parser.
    """
    text = pathlib.Path(path).read_text().splitlines()
    out: dict = {}
    dims = None
    i = 0
    current: list = []
    name = None
    while i < len(text):
        line = text[i]
        if line.startswith("DIMENSIONS"):
            dims = tuple(int(t) for t in line.split()[1:4])
        elif line.startswith("SCALARS"):
            if name is not None:
                out[name] = np.asarray(current, dtype=np.float64)
            name = line.split()[1]
            current = []
            i += 1  # skip LOOKUP_TABLE
        elif name is not None and line and not line[0].isalpha() and line[0] != "#":
            current.extend(float(t) for t in line.split())
        i += 1
    if name is not None:
        out[name] = np.asarray(current, dtype=np.float64)
    if dims is None:
        raise ConfigurationError("no DIMENSIONS found; not a repro VTK file")
    out["_dimensions"] = dims
    return out
