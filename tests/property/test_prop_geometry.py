"""Property-based tests for geometry: reflections and cut cells."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.domain import Domain
from repro.geometry.reflect import reflect_specular_axis
from repro.geometry.wedge import Wedge
from repro.physics import theory

angles = st.floats(min_value=10.0, max_value=60.0)
positions = st.floats(min_value=-5.0, max_value=40.0, allow_nan=False)
velocities = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestWedgeReflectionProperties:
    @given(
        st.lists(
            st.tuples(positions, positions, velocities, velocities),
            min_size=1,
            max_size=30,
        ),
        angles,
    )
    @settings(max_examples=80, deadline=None)
    def test_speed_invariant_and_expelled(self, pts, angle):
        w = Wedge(x_leading=10.0, base=10.0, angle_deg=angle)
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        u = np.array([p[2] for p in pts])
        v = np.array([p[3] for p in pts])
        s0 = u**2 + v**2
        x2, y2, u2, v2 = w.reflect_specular(x, y, u, v)
        assert np.allclose(u2**2 + v2**2, s0, rtol=1e-12)
        # A single ramp/back-face reflection may land below the floor
        # (handled by the boundary iteration), but never deeper into
        # the solid than it started.
        assert not np.any(
            w.penetration_depth(x2, y2) > w.penetration_depth(x, y) + 1e-9
        )

    @given(angles)
    @settings(max_examples=30, deadline=None)
    def test_volume_fractions_conserve_area(self, angle):
        w = Wedge(x_leading=5.0, base=8.0, angle_deg=angle)
        d = Domain(30, 20)
        assume(w.height < d.height - 1)
        vf = w.open_volume_fractions(d, supersample=8)
        solid = 0.5 * w.base * w.height
        assert vf.sum() == np.float64(vf.sum())
        assert abs((d.nx * d.ny - vf.sum()) - solid) < 0.05 * solid + 0.5


class TestAxisReflectionProperties:
    @given(
        st.lists(st.tuples(positions, velocities), min_size=1, max_size=50)
    )
    @settings(max_examples=80, deadline=None)
    def test_double_reflection_is_identity(self, pts):
        pos = np.array([p[0] for p in pts])
        vel = np.array([p[1] for p in pts])
        p1, v1 = reflect_specular_axis(pos, vel, 0.0, "above")
        # Reflecting again does nothing (all now on the gas side).
        p2, v2 = reflect_specular_axis(p1, v1, 0.0, "above")
        assert np.allclose(p1, p2)
        assert np.allclose(v1, v2)

    @given(
        st.lists(st.tuples(positions, velocities), min_size=1, max_size=50)
    )
    @settings(max_examples=80, deadline=None)
    def test_energy_invariant(self, pts):
        pos = np.array([p[0] for p in pts])
        vel = np.array([p[1] for p in pts])
        _, v1 = reflect_specular_axis(pos, vel, 0.0, "above")
        assert np.allclose(np.abs(v1), np.abs(vel))


class TestTheoryProperties:
    @given(
        st.floats(min_value=1.5, max_value=20.0),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=80, deadline=None)
    def test_shock_angle_bounds(self, mach, theta):
        theta_max, _ = theory.max_deflection(mach)
        assume(theta < theta_max * 0.98)
        beta = theory.shock_angle(mach, theta)
        mu = math.asin(1.0 / mach)
        assert mu < beta < math.pi / 2
        assert beta > theta  # shock steeper than the wedge

    @given(st.floats(min_value=1.01, max_value=50.0))
    @settings(max_examples=80, deadline=None)
    def test_density_ratio_bounds(self, mach_n):
        r = theory.normal_shock_density_ratio(mach_n)
        assert 1.0 < r < 6.0  # (gamma+1)/(gamma-1) for gamma = 7/5

    @given(st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_prandtl_meyer_monotone(self, mach):
        nu = theory.prandtl_meyer(mach)
        nu2 = theory.prandtl_meyer(mach + 0.5)
        assert nu2 > nu >= 0.0
