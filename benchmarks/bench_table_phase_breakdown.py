"""TAB1 -- the paper's computational-time distribution table.

"The distribution of computational time within the algorithm is as
follows: 1) collisionless motion of particles (including boundary
conditions) -- 14%  2) sort -- 27%  3) selection of collision partners
-- 20%  4) collision of selected partners -- 39%."

The bench runs the CM engine on the wedge problem at the calibration
VP ratio and reports the measured phase fractions.
"""

from repro.analysis.report import ExperimentRecord
from repro.cm.machine import CM2
from repro.cm.timing import PHASES
from repro.constants import PAPER_PHASE_FRACTIONS
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

MACHINE = CM2(n_processors=256)


def _wedge_cm_sim():
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=17,
    )
    return CMSimulation(cfg, machine=MACHINE)


def test_table_phase_breakdown(benchmark, emit):
    sim = _wedge_cm_sim()
    sim.run(10)

    def regenerate():
        return sim.phase_breakdown()

    pb = benchmark(regenerate)
    fractions = pb.fractions()

    rec = ExperimentRecord("TAB1", "computational-time distribution by phase")
    for phase in PHASES:
        rec.add(
            f"{phase} fraction",
            PAPER_PHASE_FRACTIONS[phase],
            fractions[phase],
            rel_tol=0.3,
        )
    emit(rec)
    assert rec.all_agree()
