#!/usr/bin/env python
"""The paper's validation experiment: Mach 4 flow over a 30-degree wedge.

Reproduces figures 1-6 end to end on the paper's 98 x 64 grid -- the
``wedge`` scenario from the registry: runs the near-continuum and
rarefied (Kn = 0.02) solutions, extracts every number the paper reads
off the figures, and writes the density fields to ``wedge_mach4_out/``.

Scale: by default the run uses 12 particles/cell (a few minutes); pass
``--full`` for the paper's ~80/cell, 1200 + 2000 step schedule (hours).

Run:
    python examples/wedge_mach4.py [--full]
"""

import argparse
import math
import pathlib
import time

from repro import Simulation
from repro.analysis.contour import render_ascii, save_field_npz
from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import (
    expansion_fan_samples,
    fit_shock_angle,
    post_shock_plateau,
    shock_thickness,
    wake_recompression_factor,
)
from repro.physics import theory
from repro.scenarios import get

SPEC = get("wedge")
# The paper placement at the spec's 98-column grid: x_leading = 20,
# base = 25, 30 degrees.  The analysis helpers below take the body and
# domain explicitly, so build them once from the spec.
WEDGE = SPEC.build_body()


def run_case(lambda_mfp: float, density: float, schedule, seed: int = 1989):
    transient, averaging = schedule
    sim = SPEC.build_simulation(
        {"lambda_mfp": lambda_mfp, "density": density, "seed": seed}
    )
    label = "near-continuum" if lambda_mfp == 0 else f"lambda={lambda_mfp}"
    print(f"\n=== {label}: {sim.particles.n} particles ===")
    t0 = time.time()
    sim.run(transient)
    print(f"  transient ({transient} steps): {time.time() - t0:.0f} s")
    sim.run(averaging, sample=True)
    print(f"  averaged  ({averaging} steps): {time.time() - t0:.0f} s total")
    return sim


def analyze(sim: Simulation, label: str) -> ExperimentRecord:
    rho = sim.density_ratio_field()
    fit = fit_shock_angle(rho, WEDGE)
    plateau = post_shock_plateau(rho, WEDGE, fit)
    thick = shock_thickness(rho, WEDGE, fit, plateau=plateau)
    wake = wake_recompression_factor(rho, WEDGE, sim.config.domain)

    beta = theory.shock_angle_deg(4.0, 30.0)
    ratio = theory.oblique_shock_density_ratio(4.0, math.radians(30.0))

    rec = ExperimentRecord(label, f"Mach 4 / 30 deg wedge ({label})")
    rec.add("shock angle (deg)", beta, fit.angle_deg, rel_tol=0.07)
    rec.add("post-shock density ratio", ratio, plateau, rel_tol=0.1)
    rec.add("shock thickness (cells)", None, thick)
    rec.add("wake recompression factor", None, wake)

    m2 = theory.post_oblique_shock_mach(4.0, math.radians(30.0))
    meas, pred = expansion_fan_samples(
        rho, WEDGE, (10.0, 20.0, 30.0), mach_post_shock=m2, plateau=plateau
    )
    for t, m, p in zip((10, 20, 30), meas, pred):
        rec.add(f"PM fan density after {t} deg turn", float(p), float(m), rel_tol=0.3)
    return rec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale run (~80 particles/cell, 1200+2000 steps)",
    )
    args = parser.parse_args()

    density = 80.0 if args.full else 12.0
    schedule = (1200, 2000) if args.full else SPEC.resolve_schedule()
    out = pathlib.Path("wedge_mach4_out")
    out.mkdir(exist_ok=True)

    continuum = run_case(0.0, density, schedule)
    rarefied = run_case(0.5, density, schedule)

    rec_c = analyze(continuum, "continuum")
    rec_r = analyze(rarefied, "rarefied")
    print("\n" + rec_c.to_text())
    print("\n" + rec_r.to_text())

    rho_c = continuum.density_ratio_field()
    rho_r = rarefied.density_ratio_field()
    save_field_npz(str(out / "continuum.npz"), density_ratio=rho_c)
    save_field_npz(str(out / "rarefied.npz"), density_ratio=rho_r)
    (out / "continuum_contours.txt").write_text(render_ascii(rho_c))
    (out / "rarefied_contours.txt").write_text(render_ascii(rho_r))
    print(f"\nfields and ASCII contours written to {out}/")

    fs_r = rarefied.config.freestream
    print(
        f"\nrarefied case: Kn = {fs_r.knudsen(WEDGE.base):.3f} "
        f"(paper 0.02), Re = {fs_r.reynolds(WEDGE.base):.0f} (paper 600)"
    )

    # Surface loads: the design quantity the paper's intro motivates.
    from repro.core.surface import oblique_shock_surface_pressure_ratio

    fs_c = continuum.config.freestream
    p_inf = fs_c.density * fs_c.rt
    p_ratio = continuum.surface.ramp_pressure()[2:-2].mean() / p_inf
    p_theory = oblique_shock_surface_pressure_ratio(
        fs_c.mach, WEDGE.angle_deg, fs_c.gamma
    )
    print(
        f"ramp surface pressure: {p_ratio:.2f} p_inf "
        f"(oblique-shock theory {p_theory:.2f}); "
        f"Cd = {continuum.surface.drag_coefficient(fs_c):.2f}"
    )


if __name__ == "__main__":
    main()
