"""Serialize-free particle migration between adjacent shards.

When a particle's post-motion position leaves its shard's slab, its
state must move to the neighbouring worker -- the software analogue of
the CM-2 router delivering a sorted particle to its new home processor.
The channels here are preallocated shared-memory rectangles (one float64
block for the continuous state, one int8 block for the permutation
vectors, per directed adjacent pair) written by the source worker in
phase A and read by the destination worker in phase B, with a barrier in
between.  No pickling, no queues: a migration is two block copies.

Adjacency is structural: only ``(k, k-1)`` and ``(k, k+1)`` channels
exist, which encodes the slab-width invariant that no particle out-runs
a neighbouring slab in one step (:data:`repro.parallel.shard.MIN_SLAB_WIDTH`);
the worker checks the invariant at pack time and fails loudly rather
than teleporting particles.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.particles import ParticleArrays, migration_float_width
from repro.errors import ConfigurationError, ExchangeOverflowError

#: Directions of a shard's outgoing channels.
LEFT = 0
RIGHT = 1


class MigrationChannels:
    """Paired migration buffers for every directed adjacent shard pair.

    Parameters
    ----------
    n_workers:
        Shard count; channels exist for ``k -> k-1`` (``LEFT``) and
        ``k -> k+1`` (``RIGHT``) only.
    rotational_dof:
        Molecule model's internal degrees of freedom (fixes the float
        row width and the permutation row width).
    capacity:
        Maximum migrants per channel per step.  Sized generously by the
        backend; an overflow raises (in :meth:`ship`, via
        ``pack_rows``) instead of dropping particles.
    alloc:
        ``alloc(shape, dtype) -> ndarray`` supplying the backing memory:
        shared-memory segments for process workers, plain heap arrays
        for the in-process (inline) mode.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`; arms the
        ``overflow`` and ``corrupt`` injection points in :meth:`ship`.
        ``None`` (the default) keeps the hot path fault-free at the
        cost of one ``is None`` test per ship.
    """

    def __init__(
        self,
        n_workers: int,
        rotational_dof: int,
        capacity: int,
        alloc: Callable[[Tuple[int, ...], np.dtype], np.ndarray],
        fault_plan=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if capacity < 1:
            raise ConfigurationError("channel capacity must be >= 1")
        width = migration_float_width(rotational_dof)
        k = 3 + rotational_dof
        self.n_workers = n_workers
        self.capacity = capacity
        self._fault_plan = fault_plan
        #: Step currently being exchanged; published by the workers
        #: (only when a plan is armed) so the injection points can key
        #: faults by ``(step, shard)``.
        self._step: Optional[int] = None
        #: Migrant count per (source shard, direction), written by the
        #: source in phase A, read by the destination in phase B.
        self.counts = alloc((n_workers, 2), np.int64)
        #: Run-lifetime high-water mark per channel (telemetry: how
        #: close each channel came to its capacity).  Written by the
        #: source worker at ship time; one compare per ship.
        self.high_water = alloc((n_workers, 2), np.int64)
        self._float: Dict[Tuple[int, int], np.ndarray] = {}
        self._perm: Dict[Tuple[int, int], np.ndarray] = {}
        for src in range(n_workers):
            for direction in (LEFT, RIGHT):
                if self.dest(src, direction) is None:
                    continue
                self._float[(src, direction)] = alloc(
                    (capacity, width), np.float64
                )
                self._perm[(src, direction)] = alloc((capacity, k), np.int8)

    def dest(self, src: int, direction: int) -> int:
        """Destination shard of a channel, ``None`` at the domain edge."""
        dst = src - 1 if direction == LEFT else src + 1
        return dst if 0 <= dst < self.n_workers else None

    def _published_step(self) -> int:
        """The step the workers published for this exchange.

        The publish-before-ship contract is load-bearing for fault
        keying: ``step`` may legitimately be ``0`` (a fault scheduled
        for the very first step must fire there), so an unpublished
        step must fail loudly rather than silently alias to step 0.
        """
        if self._step is None:
            raise ConfigurationError(
                "a fault plan is armed but no step was published before "
                "ship(); workers must set channels._step each exchange"
            )
        return self._step

    def buffers(self, src: int, direction: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(float_block, perm_block)`` of one directed channel."""
        try:
            return self._float[(src, direction)], self._perm[(src, direction)]
        except KeyError:
            raise ConfigurationError(
                f"no migration channel from shard {src} in direction "
                f"{direction} (only adjacent shards are wired)"
            ) from None

    # -- the two halves of a migration ---------------------------------

    def ship(
        self, parts: ParticleArrays, idx: np.ndarray, src: int, direction: int
    ) -> int:
        """Pack the particles at ``idx`` into one outgoing channel.

        Called by the source worker in phase A (before it backfills the
        departed rows away).  Overwrites the channel's previous count,
        so every existing channel must be shipped every step -- zero
        migrants included -- to keep the counts current.

        Raises :class:`~repro.errors.ExchangeOverflowError` when the
        migrant count exceeds the channel capacity (sized at bind time;
        the error names the knob), carrying the step/shard/counts
        context a supervisor needs.
        """
        fb, pb = self.buffers(src, direction)
        cap = min(self.capacity, fb.shape[0])
        fault = None
        if self._fault_plan is not None and idx.shape[0] > 0:
            fault = self._fault_plan.take(
                "overflow", self._published_step(), src
            )
            if fault is not None:
                cap = fault.capacity
        if idx.shape[0] > cap:
            raise ExchangeOverflowError(
                "migration channel overflow; raise "
                "ShardedBackend(channel_capacity=...) for this flow",
                step=self._step,
                shard=src,
                direction="left" if direction == LEFT else "right",
                migrants=int(idx.shape[0]),
                capacity=cap,
                injected=fault is not None,
            )
        m = parts.pack_rows(idx, fb, pb)
        if self._fault_plan is not None and m > 0:
            step = self._published_step()
            f = self._fault_plan.take("corrupt", step, src)
            if f is not None:
                fb[:m] = self._fault_plan.corruption_pattern(
                    step, src, fb[:m].shape
                )
        self.counts[src, direction] = m
        if m > self.high_water[src, direction]:
            self.high_water[src, direction] = m
        return m

    def receive(self, parts: ParticleArrays, dst: int) -> int:
        """Append everything shipped toward shard ``dst`` this step.

        Called in phase B, after the mid-step barrier.  Arrival order
        is fixed (left neighbour first, then right) so the resulting
        particle order -- and therefore the downstream sort and pairing
        -- is identical run to run and identical between the process
        and inline execution modes.
        """
        total = 0
        if dst > 0:
            m = int(self.counts[dst - 1, RIGHT])
            fb, pb = self.buffers(dst - 1, RIGHT)
            parts.append_rows(fb, pb, m)
            total += m
        if dst < self.n_workers - 1:
            m = int(self.counts[dst + 1, LEFT])
            fb, pb = self.buffers(dst + 1, LEFT)
            parts.append_rows(fb, pb, m)
            total += m
        return total
