"""An executable model of the rejected cells-to-processors mapping.

The paper dismisses the cell mapping in two paragraphs of analysis;
this module *runs* its motion step on a real particle snapshot so the
ABL3 bench can report measured numbers:

* migration traffic routed through the 8 serialized NEWS events,
* the SIMD pacing penalty (every event as slow as its busiest cell),
* memory provisioning (slots per processor sized by the densest cell),
* and the equivalent particle-mapping cost for the same snapshot.

Only the motion/migration step is modelled -- it is where the two
mappings differ; the collision work is load-balanced by the sort in the
particle mapping and paced by the fullest cell in the cell mapping,
which the occupancy statistics of :mod:`repro.cm.mapping` already
quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cm.news import serialized_neighbour_exchange
from repro.cm.timing import W_ALU
from repro.core.particles import ParticleArrays
from repro.errors import MachineError
from repro.geometry.domain import Domain


@dataclass(frozen=True)
class CellMappedStepReport:
    """Measured cost/utilization of one cell-mapped motion step."""

    n_particles: int
    migration_fraction: float
    exchange_cost: float            # serialized NEWS events (raw units)
    compute_cost: float             # paced by the fullest cell
    memory_slots_per_processor: int # provisioning for the densest cell
    mean_event_utilization: float
    particle_mapping_cost: float    # same step, particle mapping

    @property
    def total_cost(self) -> float:
        return self.exchange_cost + self.compute_cost

    @property
    def cost_ratio(self) -> float:
        """Cell-mapped / particle-mapped cost for the identical step."""
        if self.particle_mapping_cost <= 0:
            raise MachineError("particle mapping cost must be positive")
        return self.total_cost / self.particle_mapping_cost


def cell_mapped_motion_step(
    particles: ParticleArrays,
    domain: Domain,
    bits_per_particle: int = 9 * 32,
    motion_ops: float = 16.0,
) -> CellMappedStepReport:
    """Execute the cell mapping's motion step on a snapshot.

    Computes, per cell, how many particles leave toward each of the 8
    neighbours in one time step, runs the serialized exchange, and
    accounts the compute at the pace of the fullest cell.
    """
    n = particles.n
    if n == 0:
        raise MachineError("empty snapshot")
    i0, j0 = domain.cell_coords(particles.x, particles.y)
    x1 = np.clip(particles.x + particles.u, 0.0, domain.width - 1e-9)
    y1 = np.clip(particles.y + particles.v, 0.0, domain.height - 1e-9)
    i1, j1 = domain.cell_coords(x1, y1)
    di = np.clip(i1 - i0, -1, 1)
    dj = np.clip(j1 - j0, -1, 1)

    outgoing: Dict[Tuple[int, int], np.ndarray] = {}
    migrating = (di != 0) | (dj != 0)
    for off in {(int(a), int(b)) for a, b in zip(di[migrating], dj[migrating])}:
        mask = migrating & (di == off[0]) & (dj == off[1])
        grid = np.zeros((domain.nx, domain.ny), dtype=np.int64)
        np.add.at(grid, (i0[mask], j0[mask]), 1)
        outgoing[off] = grid

    _incoming, stats = serialized_neighbour_exchange(
        outgoing, bits_per_particle=bits_per_particle
    )

    pops = np.zeros((domain.nx, domain.ny), dtype=np.int64)
    np.add.at(pops, (i0, j0), 1)
    peak_pop = int(pops.max())
    # SIMD compute: every processor steps through the fullest cell's
    # particle slots, 32-bit ops.
    compute = W_ALU * 32.0 * motion_ops * peak_pop
    # Particle mapping: vpr slots per processor with a processor per
    # mean-population cell-equivalent (same machine size: one processor
    # per cell, n/cells particles per processor on average).
    vpr = -(-n // domain.n_cells)
    particle_cost = W_ALU * 32.0 * motion_ops * vpr

    return CellMappedStepReport(
        n_particles=n,
        migration_fraction=float(np.count_nonzero(migrating)) / n,
        exchange_cost=stats["total_cost"],
        compute_cost=compute,
        memory_slots_per_processor=peak_pop,
        mean_event_utilization=stats["mean_event_utilization"],
        particle_mapping_cost=particle_cost,
    )
