"""The randomized sort by cell key (sub-step 3, part 2).

"The sort is a crucial step in the implementation of this particle
simulation algorithm. ... The primary purpose of the sort is to put all
particles occupying a given cell into neighbouring addresses thus making
it easy both to identify collision candidates and to sample macroscopic
quantities from cells."  The subtler consequence: with one particle per
virtual processor the sort achieves "a perfect dynamic load balance for
the collision routine" -- processing power is redistributed to match the
cell populations every step.

The NumPy engine sorts with a stable argsort; the CM engine layers cost
accounting on the same result via :mod:`repro.cm.sort`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core.cells import randomized_sort_keys
from repro.core.particles import ParticleArrays


@dataclass(frozen=True)
class SortStepResult:
    """Bookkeeping from one sort step.

    Attributes
    ----------
    order:
        Applied permutation (pre-sort index of each sorted slot).
    rank_shift:
        Mean absolute change of sorted rank per particle -- the
        "general communication" driver: a particle whose rank moved
        less than the VP block size stays on its physical processor.
    """

    order: np.ndarray
    rank_shift: float


def sort_by_cell(
    particles: ParticleArrays,
    rng: Optional[np.random.Generator] = None,
    scale: int = DEFAULT_SORT_SCALE,
    mix_bits: Optional[np.ndarray] = None,
) -> SortStepResult:
    """Sort the population by randomized cell key, in place.

    After this call, particles of one cell occupy a contiguous run of
    addresses in random intra-cell order, ready for even/odd pairing.
    """
    keys = randomized_sort_keys(
        particles.cell, rng=rng, scale=scale, mix_bits=mix_bits
    )
    order = np.argsort(keys, kind="stable")
    n = order.size
    rank_shift = float(np.abs(order - np.arange(n)).mean()) if n else 0.0
    particles.reorder_inplace(order)
    return SortStepResult(order=order, rank_shift=rank_shift)
