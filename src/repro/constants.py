"""Physical and numerical constants used throughout the reproduction.

The simulation works in the normalized units of the Baganoff scheme
(see DESIGN.md section 4):

* lengths are measured in **cell widths** (the grid cell is the unit of
  length),
* the time step is the unit of time (``DT = 1``),
* velocities are therefore measured in cell widths per time step.

The gas is an ideal diatomic gas (3 translational + 2 rotational degrees
of freedom), giving the ratio of specific heats ``GAMMA = 7/5`` used by
all the theoretical comparisons (oblique shock, Rankine-Hugoniot,
Prandtl-Meyer).
"""

from __future__ import annotations

import math

#: Time step in normalized units.  The Baganoff normalization absorbs the
#: time step into the velocity scale, so positions update as ``x += u``.
DT: float = 1.0

#: Translational degrees of freedom of the model molecule.
TRANSLATIONAL_DOF: int = 3

#: Rotational degrees of freedom of the (diatomic) model molecule.
ROTATIONAL_DOF: int = 2

#: Total internal + translational degrees of freedom.
TOTAL_DOF: int = TRANSLATIONAL_DOF + ROTATIONAL_DOF

#: Ratio of specific heats for a diatomic ideal gas,
#: ``gamma = (dof + 2) / dof`` with ``dof = 5``.
GAMMA: float = (TOTAL_DOF + 2) / TOTAL_DOF

#: Number of components in the collision algorithm's relative-velocity
#: vector: three translational relative components plus two rotational
#: components (eq. (18) of the paper).
RELATIVE_COMPONENTS: int = 5

#: Inverse-power-law exponent of a Maxwell molecule.  For Maxwell
#: molecules the collision probability is independent of the relative
#: speed (eq. (8) of the paper).
MAXWELL_ALPHA: float = 4.0

#: Ratio of the mean molecular speed to the most probable speed for a
#: Maxwellian distribution: ``c_bar / c_mp = 2 / sqrt(pi)``.
MEAN_TO_MOST_PROBABLE: float = 2.0 / math.sqrt(math.pi)

#: Upper bound on the per-pair collision probability below which the
#: "at most one collision per time step" assumption of eq. (4) holds.
#: The paper requires the time step to be 3--4x smaller than the mean
#: collision time.
MAX_COLLISION_PROBABILITY: float = 1.0 / 3.0

#: Default scale factor used to randomize the sort keys (see
#: "Selection of Collision Partners" in the paper): the cell index is
#: multiplied by this factor and a random value below it is added, so the
#: sort no longer preserves intra-cell ordering.
DEFAULT_SORT_SCALE: int = 8

#: Number of random transpositions needed to fully refresh a 5-element
#: permutation per Aldous & Diaconis (n log n with n = 5).  The paper
#: performs one transposition per collision and notes ~10 collisions
#: fully decorrelate the permutation.
PERMUTATION_REFRESH_TRANSPOSITIONS: int = 10

#: Paper-reported per-particle time on the 32k-processor CM-2 at 512k
#: particles (microseconds per particle per time step).
PAPER_CM2_US_PER_PARTICLE: float = 7.2

#: Paper-reported per-particle time of the hand-vectorized Cray-2
#: implementation (microseconds per particle per time step).
PAPER_CRAY2_US_PER_PARTICLE: float = 0.8

#: Paper-reported distribution of computational time across the four
#: sub-steps of the algorithm (fractions of total time).
PAPER_PHASE_FRACTIONS: dict = {
    "motion": 0.14,      # collisionless motion including boundary conditions
    "sort": 0.27,        # randomized sort by cell index
    "selection": 0.20,   # selection of collision partners
    "collision": 0.39,   # collision of selected partners
}

#: Grid dimensions of the paper's validation runs (98 cells streamwise by
#: 64 cells transverse).
PAPER_GRID_SHAPE: tuple = (98, 64)

#: Wedge placement in the paper's runs: leading edge 20 cells from the
#: upstream boundary, 25 cells wide at the base.
PAPER_WEDGE_LEADING_EDGE: float = 20.0
PAPER_WEDGE_BASE_CELLS: float = 25.0

#: Wedge half-angle of the paper's validation runs, degrees.
PAPER_WEDGE_ANGLE_DEG: float = 30.0

#: Freestream Mach number of the paper's validation runs.
PAPER_MACH: float = 4.0

#: Theoretical oblique-shock angle for Mach 4 flow over a 30 degree wedge
#: (the paper reads 45 degrees off figure 1).
PAPER_SHOCK_ANGLE_DEG: float = 45.0

#: Theoretical post-shock/freestream density ratio from the
#: Rankine-Hugoniot relations for the same flow (paper quotes 3.7).
PAPER_DENSITY_RATIO: float = 3.7

#: Shock thickness read off figure 1 (near-continuum), in cell widths.
PAPER_SHOCK_THICKNESS_CONTINUUM: float = 3.0

#: Shock thickness read off figure 4 (rarefied, Kn = 0.02), cell widths.
PAPER_SHOCK_THICKNESS_RAREFIED: float = 5.0

#: Freestream mean free path of the rarefied run, in cell widths.
PAPER_RAREFIED_MFP: float = 0.5

#: Knudsen number of the rarefied run (mean free path / wedge length).
PAPER_KNUDSEN: float = 0.02

#: Reynolds number of the rarefied run.
PAPER_REYNOLDS: float = 600.0

#: Total particles in the paper's production runs.
PAPER_TOTAL_PARTICLES: int = 512 * 1024

#: Particles actually in the flow (the remainder sit in the reservoir).
PAPER_FLOW_PARTICLES: int = 460_000

#: Paper run schedule: steps to steady state, then averaging steps.
PAPER_STEADY_STEPS: int = 1200
PAPER_AVERAGE_STEPS: int = 2000

#: CM-2 physical processors used for the paper's runs.
PAPER_CM2_PROCESSORS: int = 32 * 1024
