"""Properties of non-uniform slab decompositions and the rebalancer.

PR 2 only ever built uniform splits, so :class:`ShardSlabs`'s contract
for arbitrary edge tuples was untested.  The adaptive rebalancer makes
non-uniform decompositions routine; these properties pin what the
backend relies on:

* ``partition_order`` stays an exact, stable gather/re-partition
  round-trip under *any* valid edge tuple (the bind/gather seam of the
  sharded backend);
* invalid edge tuples (width below ``MIN_SLAB_WIDTH``, edges outside
  ``[0, nx]``) are rejected at construction;
* ``rebalance`` is a deterministic pure function of the load vector
  and honors all three clamps (damping, adjacency, minimum width).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.parallel.shard import MIN_SLAB_WIDTH, ShardSlabs


@st.composite
def slab_decompositions(draw):
    """An arbitrary valid (possibly non-uniform) decomposition."""
    widths = draw(
        st.lists(
            st.integers(min_value=MIN_SLAB_WIDTH, max_value=9),
            min_size=1,
            max_size=5,
        )
    )
    edges = np.concatenate(([0], np.cumsum(widths)))
    return ShardSlabs.from_edges(int(edges[-1]), edges)


@st.composite
def decompositions_with_loads(draw):
    slabs = draw(slab_decompositions())
    loads = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            min_size=slabs.nx,
            max_size=slabs.nx,
        )
    )
    return slabs, np.asarray(loads)


class TestNonUniformPartitionOrder:
    @given(slab_decompositions(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_gather_repartition_round_trip_exact(self, slabs, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 200))
        x = rng.uniform(0.0, slabs.nx, size=n)
        order, splits = slabs.partition_order(x)

        # The reordering is a permutation grouping particles by shard,
        # and every split segment lies inside its slab.
        assert sorted(order.tolist()) == list(range(n))
        gathered = x[order]
        for k in range(slabs.n_workers):
            seg = gathered[splits[k]:splits[k + 1]]
            lo, hi = slabs.bounds(k)
            if seg.size:
                assert seg.min() >= lo
                assert seg.max() < hi

        # Re-partitioning the gathered order is the identity: the seam
        # this pins is bind(gather(bind(x))) == bind(x) bitwise.
        order2, splits2 = slabs.partition_order(gathered)
        assert np.array_equal(order2, np.arange(n))
        assert np.array_equal(splits, splits2)
        assert np.array_equal(gathered[order2], gathered)

    @given(slab_decompositions())
    @settings(max_examples=30, deadline=None)
    def test_stability_preserves_within_shard_order(self, slabs):
        # Two particles in the same slab keep their relative order.
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, slabs.nx, size=64)
        order, _ = slabs.partition_order(x)
        shard = slabs.shard_of(x)
        for k in range(slabs.n_workers):
            idx = order[shard[order] == k]
            assert np.array_equal(idx, np.sort(idx))


class TestEdgeValidation:
    def test_min_width_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardSlabs.from_edges(10, (0, 1, 10))
        with pytest.raises(ConfigurationError):
            ShardSlabs.from_edges(10, (0, 9, 10))

    def test_span_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardSlabs.from_edges(10, (1, 5, 10))
        with pytest.raises(ConfigurationError):
            ShardSlabs.from_edges(10, (0, 5, 9))

    def test_valid_non_uniform_accepted(self):
        s = ShardSlabs.from_edges(12, (0, 2, 9, 12))
        assert s.n_workers == 3
        assert s.bounds(1) == (2.0, 9.0)


class TestRebalanceProperties:
    @given(decompositions_with_loads(),
           st.integers(min_value=MIN_SLAB_WIDTH, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_clamp_respecting(self, case, max_shift):
        slabs, loads = case
        new = slabs.rebalance(loads, max_shift=max_shift)
        again = slabs.rebalance(loads, max_shift=max_shift)
        assert new.edges == again.edges  # pure function of the loads

        W = slabs.n_workers
        assert new.nx == slabs.nx
        assert new.n_workers == W
        assert new.edges[0] == 0 and new.edges[-1] == slabs.nx
        widths = np.diff(new.edges)
        assert (widths >= MIN_SLAB_WIDTH).all()
        for k in range(1, W):
            # Damping clamp (the min-width repair may add at most
            # MIN_SLAB_WIDTH on top of the raw clamp).
            assert abs(new.edges[k] - slabs.edges[k]) <= (
                max_shift + MIN_SLAB_WIDTH
            )
            # Adjacency: ceded columns only move between neighbours.
            assert slabs.edges[k - 1] <= new.edges[k] <= slabs.edges[k + 1]

    @given(decompositions_with_loads())
    @settings(max_examples=30, deadline=None)
    def test_noop_returns_self(self, case):
        slabs, loads = case
        new = slabs.rebalance(loads)
        if new.edges == slabs.edges:
            assert new is slabs

    def test_balanced_loads_do_not_move(self):
        slabs = ShardSlabs.split(40, 4)
        assert slabs.rebalance(np.ones(40)) is slabs

    def test_skewed_loads_move_toward_the_mass(self):
        slabs = ShardSlabs.split(40, 2)
        loads = np.zeros(40)
        loads[:10] = 1.0
        new = slabs.rebalance(loads, max_shift=8)
        assert new.edges[1] < slabs.edges[1]

    def test_max_shift_below_min_width_rejected(self):
        slabs = ShardSlabs.split(40, 2)
        with pytest.raises(ConfigurationError):
            slabs.rebalance(np.ones(40), max_shift=MIN_SLAB_WIDTH - 1)

    def test_per_shard_loads_accepted(self):
        slabs = ShardSlabs.split(40, 2)
        new = slabs.rebalance([300.0, 100.0], max_shift=6)
        assert new.edges[1] < slabs.edges[1]

    def test_bad_loads_rejected(self):
        slabs = ShardSlabs.split(40, 2)
        with pytest.raises(ConfigurationError):
            slabs.rebalance(np.full(40, np.nan))
        with pytest.raises(ConfigurationError):
            slabs.rebalance(-np.ones(40))
        with pytest.raises(ConfigurationError):
            slabs.rebalance(np.ones(7))
