"""repro: reproduction of Dagum (1989), "Implementation of a Hypersonic
Rarefied Flow Particle Simulation on the Connection Machine".

The package implements, from scratch:

* the Stanford (Baganoff / McDonald) direct particle simulation (DSMC)
  algorithm with the paper's fine-grained data-parallel structure
  (:mod:`repro.core`),
* a Connection Machine 2 emulation substrate with virtual processors,
  scans, sort, router, fixed-point arithmetic and a calibrated
  performance model (:mod:`repro.cm`, :mod:`repro.fixedpoint`),
* the gas physics and 2-D inviscid theory used for validation
  (:mod:`repro.physics`),
* the wind-tunnel geometry with the wedge body and fractional cell
  volumes (:mod:`repro.geometry`),
* the baseline collision schemes the paper compares against
  (:mod:`repro.baselines`), and
* shock metrology that extracts the numbers the paper reads off its
  figures (:mod:`repro.analysis`).

Quickstart::

    from repro import Simulation, SimulationConfig
    sim = Simulation(SimulationConfig(seed=7))
    sim.run(300)                 # transient to steady state
    sim.run(400, sample=True)    # time-average the solution
    rho = sim.density_ratio_field()
"""

from repro.constants import GAMMA
from repro.core.particles import ParticleArrays
from repro.core.simulation import Simulation, SimulationConfig, StepDiagnostics
from repro.core.engine_cm import CMSimulation
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, hard_sphere, maxwell_molecule

__version__ = "1.0.0"

__all__ = [
    "GAMMA",
    "ParticleArrays",
    "Simulation",
    "SimulationConfig",
    "StepDiagnostics",
    "CMSimulation",
    "Domain",
    "Wedge",
    "Freestream",
    "MolecularModel",
    "maxwell_molecule",
    "hard_sphere",
    "__version__",
]
