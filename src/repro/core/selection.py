"""The McDonald-Baganoff collision selection rule (sub-step 3, part 4).

Unlike Bird's per-cell time counter, "a probability of collision is
computed for each pair of collision candidates and collisions are
carried out in accordance with this probability.  The decision to
perform a collision is applied on the individual candidate pairs and not
on the cell as a whole.  Consequently ... the selection rule can be
parallelized at a particle level" while conserving energy and momentum
per collision.

Equations (3)-(8) of the paper:

    t_c      = 1 / (n sigma c_bar)                       (3)
    P_c      = dt / t_c          (valid for dt << t_c)    (4)
    P_c      = n sigma g dt                               (5)
    P_c ~    n g^(1 - 4/alpha)                            (6)
    P_c/P_co = (n/n_oo) (g/g_oo)^(1-4/alpha)              (7)
    P_c/P_co = n/n_oo            (Maxwell, alpha = 4)     (8)

The freestream anchor ``P_co`` comes from
:attr:`repro.physics.freestream.Freestream.collision_probability`.
Near-continuum runs (lambda = 0) saturate every candidate at P = 1:
"all collision candidates must collide and the number of collisions in a
cell is just equal to half the number of particles in the cell."

Cut cells: the local number density divides by the cell's **fractional
open volume** ("where cells are divided by the wedge special allowance
must be made for the fractional cell volume when employing the selection
rule").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.collision import collide_rows_with_velocities
from repro.core.pairing import CandidatePairs, ReflectionPairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel

#: Cells whose open fraction falls below this are treated as fully
#: blocked for density purposes (they should hold no particles; the
#: floor avoids division blow-ups on stray reflections mid-resolution).
MIN_VOLUME_FRACTION = 1.0 / 64.0


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the selection rule for one step.

    Attributes
    ----------
    accept:
        Boolean per *pair* (aligned with the pairing arrays): True for
        pairs that will actually collide.
    probability:
        The computed per-pair probability (0 for non-candidates), before
        the random draw -- kept for diagnostics and tests.
    relative_speed:
        Per-pair translational relative speed g (0 for non-candidates).
    """

    accept: np.ndarray
    probability: np.ndarray
    relative_speed: np.ndarray

    @property
    def n_collisions(self) -> int:
        return int(np.count_nonzero(self.accept))


def pair_relative_speed(
    particles: ParticleArrays, pairs: CandidatePairs
) -> np.ndarray:
    """Translational relative speed |c1 - c2| of every formed pair.

    With scratch enabled the differences land in pooled buffers
    (``sel_du``/``sel_dv``/``sel_dw``) -- on the adjacent hot path that
    makes the whole computation allocation-free (strided reads, pooled
    writes).  The arithmetic is identical either way.
    """
    n_pairs = pairs.n_pairs
    scratch = particles.scratch
    if scratch is not None:
        du = scratch.array("sel_du", n_pairs)
        dv = scratch.array("sel_dv", n_pairs)
        dw = scratch.array("sel_dw", n_pairs)
    else:
        du = np.empty(n_pairs)
        dv = np.empty(n_pairs)
        dw = np.empty(n_pairs)
    if pairs.adjacent:
        # Pair i occupies rows (2i, 2i+1): strided views replace the
        # six scattered gathers of the generic path.
        m = 2 * n_pairs
        np.subtract(particles.u[0:m:2], particles.u[1:m:2], out=du)
        np.subtract(particles.v[0:m:2], particles.v[1:m:2], out=dv)
        np.subtract(particles.w[0:m:2], particles.w[1:m:2], out=dw)
    else:
        a, b = pairs.first, pairs.second
        np.subtract(particles.u[a], particles.u[b], out=du)
        np.subtract(particles.v[a], particles.v[b], out=dv)
        np.subtract(particles.w[a], particles.w[b], out=dw)
    du *= du
    dv *= dv
    dw *= dw
    du += dv
    du += dw
    return np.sqrt(du, out=du)


def density_lookup_table(
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-cell density table for the selection rule's pair gather.

    Divides the cell populations by the (floored) open volume fraction
    -- the cut-cell allowance of eq. (7)/(8).  Shared by the solo fused
    kernel and the ensemble engine, whose table spans ``R * n_cells``
    composite cells (counts and fractions tiled per replica block).
    """
    counts = np.asarray(cell_counts, dtype=np.float64)
    if volume_fractions is not None:
        vf = np.maximum(
            np.asarray(volume_fractions, dtype=np.float64),
            MIN_VOLUME_FRACTION,
        )
        return counts / vf
    return counts


def collision_probabilities(
    particles: ParticleArrays,
    pairs: CandidatePairs,
    freestream: Freestream,
    model: MolecularModel,
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
) -> tuple:
    """Per-pair collision probability via eq. (7)/(8).

    Parameters
    ----------
    cell_counts:
        Particles per cell (length n_cells) for *this* population.
    volume_fractions:
        Open area fraction per cell (flattened, length n_cells);
        ``None`` means all cells fully open.

    Returns ``(probability, relative_speed)`` arrays over pairs.
    """
    n_pairs = pairs.n_pairs
    if n_pairs == 0:
        return np.zeros(0), np.zeros(0)

    # Compute over ALL formed pairs, then zero the non-candidates at
    # the end: full-array arithmetic beats boolean-masked gathers on
    # every step (candidates are the vast majority after the sort).
    cand = pairs.same_cell
    if pairs.adjacent:
        cells = particles.cell[0 : 2 * n_pairs : 2]
    else:
        cells = particles.cell[pairs.first]

    g = pair_relative_speed(particles, pairs)

    if freestream.is_near_continuum:
        # The lambda -> 0 validation limit: every candidate collides.
        g *= cand
        return cand.astype(np.float64), g

    # Per-cell density table first (n_cells entries), then one gather
    # per pair -- not a division per pair.
    density_table = density_lookup_table(cell_counts, volume_fractions)
    scratch = particles.scratch
    if scratch is not None:
        # mode="clip": cell indices are clipped into range upstream
        # (assign_cells); "raise" would buffer the out array.
        prob = scratch.array("sel_prob", n_pairs)
        np.take(density_table, cells, out=prob, mode="clip")
    else:
        prob = np.take(density_table, cells)
    prob *= freestream.collision_probability / freestream.density
    expo = model.speed_exponent
    if expo != 0.0:
        g_ref = np.sqrt(2.0) * freestream.mean_speed  # mean relative speed
        prob *= model.speed_factor(g, g_ref)
    np.minimum(prob, 1.0, out=prob)
    prob *= cand
    g *= cand
    return prob, g


def select_collisions(
    particles: ParticleArrays,
    pairs: CandidatePairs,
    freestream: Freestream,
    model: MolecularModel,
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    draws: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Apply the selection rule: probability, then an acceptance draw.

    ``draws`` lets the CM engine supply its own uniform numbers (from
    the quick-and-dirty bit stream); otherwise ``rng`` provides them.
    """
    prob, g = collision_probabilities(
        particles, pairs, freestream, model, cell_counts, volume_fractions
    )
    if draws is None:
        if rng is None:
            raise ConfigurationError("need rng or draws")
        draws = rng.random(pairs.n_pairs)
    else:
        draws = np.asarray(draws, dtype=np.float64)
        if draws.shape != (pairs.n_pairs,):
            raise ConfigurationError("draws must have one entry per pair")
    scratch = particles.scratch
    if scratch is not None:
        accept = scratch.array("sel_accept", pairs.n_pairs, dtype=bool)
        np.less(draws, prob, out=accept)
    else:
        accept = draws < prob
    return SelectionResult(accept=accept, probability=prob, relative_speed=g)


@dataclass(frozen=True)
class FusedSelectCollideResult:
    """Diagnostics from one fused selection+collision pass.

    Attributes
    ----------
    n_candidates:
        Pairs evaluated by the selection rule (every reflection pair is
        same-cell, so all formed pairs are candidates).
    n_collisions:
        Pairs accepted and collided.
    probability_sum:
        Sum of the per-pair collision probabilities (mean probability =
        ``probability_sum / n_candidates``).
    t_boundary:
        ``perf_counter`` stamp taken between the acceptance draw and
        the collision physics -- the driver splits the fused pass into
        the paper's ``selection`` / ``collision`` ledger phases at this
        timestamp.
    """

    n_candidates: int
    n_collisions: int
    probability_sum: float
    t_boundary: float


def fused_select_collide(
    particles: ParticleArrays,
    rpairs: ReflectionPairs,
    freestream: Freestream,
    model: MolecularModel,
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    internal_exchange_probability: float = 1.0,
) -> FusedSelectCollideResult:
    """Selection rule and collision physics in one gather/scatter pass.

    The incremental kernel's hot path.  The classic pipeline gathers
    each pair's velocities once for the relative speed, throws them
    away, and re-gathers them (plus rotational state) in the collision
    kernel.  Here the selection rule touches velocities only when the
    molecular model actually needs them: for Maxwell molecules (eq. 8)
    the probability is a pure density lookup by pair cell, so the full
    population is never gathered at all -- only the *accepted subset*
    is, and those values flow straight into
    :func:`repro.core.collision.collide_rows_with_velocities`.  For
    speed-dependent models (eq. 7) the six translational gathers happen
    once into the scratch pool, feed the probability, and the accepted
    subset is taken from the already-gathered pair-aligned arrays.
    Either way there are no full-population candidate index arrays and
    no second pass over the pair set.

    RNG consumption order is the same as ``select_collisions`` followed
    by ``collide_pairs``: acceptance draws (one per formed pair), then
    collision signs, then the optional internal-exchange draws, then
    the permutation-refresh transpositions.  A seeded generator
    therefore produces bitwise identical post-collision state to the
    unfused reference on the same pair list -- pinned by a unit test.
    """
    if rng is None:
        raise ConfigurationError("fused_select_collide requires rng")
    a, b = rpairs.first, rpairs.second
    n_pairs = rpairs.n_pairs
    scratch = particles.scratch

    def buf(name, dtype=np.float64, n=n_pairs):
        if scratch is not None:
            return scratch.array(name, n, dtype=dtype)
        return np.empty(n, dtype=dtype)

    needs_speed = (
        not freestream.is_near_continuum and model.speed_exponent != 0.0
    )
    if needs_speed:
        u0, u1 = buf("fs_u0"), buf("fs_u1")
        v0, v1 = buf("fs_v0"), buf("fs_v1")
        w0, w1 = buf("fs_w0"), buf("fs_w1")
        np.take(particles.u, a, out=u0, mode="clip")
        np.take(particles.u, b, out=u1, mode="clip")
        np.take(particles.v, a, out=v0, mode="clip")
        np.take(particles.v, b, out=v1, mode="clip")
        np.take(particles.w, a, out=w0, mode="clip")
        np.take(particles.w, b, out=w1, mode="clip")

    prob = buf("fs_prob")
    if freestream.is_near_continuum:
        # The lambda -> 0 validation limit: every candidate collides.
        prob[:n_pairs] = 1.0
    else:
        density_table = density_lookup_table(cell_counts, volume_fractions)
        np.take(density_table, rpairs.cell, out=prob, mode="clip")
        prob *= freestream.collision_probability / freestream.density
        if needs_speed:
            # Only the speed-dependent models need the relative speed;
            # reuse the gathered components without destroying them.
            du, dv, dw = buf("fs_du"), buf("fs_dv"), buf("fs_dw")
            np.subtract(u0, u1, out=du)
            np.subtract(v0, v1, out=dv)
            np.subtract(w0, w1, out=dw)
            du *= du
            dv *= dv
            dw *= dw
            du += dv
            du += dw
            g = np.sqrt(du, out=du)
            g_ref = np.sqrt(2.0) * freestream.mean_speed
            prob *= model.speed_factor(g, g_ref)
        np.minimum(prob, 1.0, out=prob)

    draws = buf("fs_draws")
    rng.random(out=draws)
    accept = buf("fs_accept", dtype=bool)
    np.less(draws, prob, out=accept)
    probability_sum = float(prob.sum())
    accepted = np.flatnonzero(accept)
    n_acc = accepted.shape[0]
    t_boundary = time.perf_counter()

    a_rows = buf("fs_arows", dtype=np.intp, n=n_acc)
    b_rows = buf("fs_brows", dtype=np.intp, n=n_acc)
    np.take(a, accepted, out=a_rows, mode="clip")
    np.take(b, accepted, out=b_rows, mode="clip")
    au0, au1 = buf("fs_au0", n=n_acc), buf("fs_au1", n=n_acc)
    av0, av1 = buf("fs_av0", n=n_acc), buf("fs_av1", n=n_acc)
    aw0, aw1 = buf("fs_aw0", n=n_acc), buf("fs_aw1", n=n_acc)
    if needs_speed:
        # Accepted-subset gathers from the pair-aligned arrays already
        # in cache: the fusion win over re-gathering the population.
        np.take(u0, accepted, out=au0, mode="clip")
        np.take(u1, accepted, out=au1, mode="clip")
        np.take(v0, accepted, out=av0, mode="clip")
        np.take(v1, accepted, out=av1, mode="clip")
        np.take(w0, accepted, out=aw0, mode="clip")
        np.take(w1, accepted, out=aw1, mode="clip")
    else:
        # Maxwell fast path: velocities were never gathered for the
        # probability, so gather just the accepted rows -- an O(A)
        # touch instead of O(P).
        np.take(particles.u, a_rows, out=au0, mode="clip")
        np.take(particles.u, b_rows, out=au1, mode="clip")
        np.take(particles.v, a_rows, out=av0, mode="clip")
        np.take(particles.v, b_rows, out=av1, mode="clip")
        np.take(particles.w, a_rows, out=aw0, mode="clip")
        np.take(particles.w, b_rows, out=aw1, mode="clip")

    stats = collide_rows_with_velocities(
        particles, a_rows, b_rows, au0, au1, av0, av1, aw0, aw1,
        rng=rng,
        internal_exchange_probability=internal_exchange_probability,
    )
    return FusedSelectCollideResult(
        n_candidates=n_pairs,
        n_collisions=stats.n_collisions,
        probability_sum=probability_sum,
        t_boundary=t_boundary,
    )
