"""Unit tests for velocity distribution sampling and diagnostics."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.distributions import (
    component_variance,
    energy_shares,
    excess_kurtosis,
    sample_maxwellian,
    sample_rectangular,
    sigma_from_cmp,
    speed_distribution_chi2,
    temperature_from_velocities,
)


class TestSamplers:
    def test_maxwellian_variance(self, rng):
        c_mp = 0.2
        v = sample_maxwellian(rng, 200_000, c_mp)
        assert v.shape == (200_000, 3)
        assert np.allclose(v.var(axis=0), c_mp**2 / 2, rtol=0.02)

    def test_maxwellian_drift(self, rng):
        v = sample_maxwellian(rng, 100_000, 0.2, drift=(0.5, -0.1, 0.0))
        assert v[:, 0].mean() == pytest.approx(0.5, abs=0.005)
        assert v[:, 1].mean() == pytest.approx(-0.1, abs=0.005)

    def test_rectangular_matches_maxwellian_variance(self, rng):
        # The reservoir trick's requirement: same variance.
        c_mp = 0.14
        g = sample_maxwellian(rng, 200_000, c_mp)
        r = sample_rectangular(rng, 200_000, c_mp)
        assert np.allclose(g.var(axis=0), r.var(axis=0), rtol=0.03)

    def test_rectangular_is_bounded(self, rng):
        c_mp = 0.14
        r = sample_rectangular(rng, 10_000, c_mp)
        bound = sigma_from_cmp(c_mp) * math.sqrt(3.0) + 1e-12
        assert np.abs(r).max() <= bound

    def test_component_count(self, rng):
        assert sample_maxwellian(rng, 10, 0.1, components=2).shape == (10, 2)

    def test_zero_samples(self, rng):
        assert sample_maxwellian(rng, 0, 0.1).shape == (0, 3)

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigurationError):
            sample_maxwellian(rng, -1, 0.1)
        with pytest.raises(ConfigurationError):
            sigma_from_cmp(0.0)


class TestDiagnostics:
    def test_kurtosis_gaussian_near_zero(self, rng):
        x = rng.normal(size=(200_000, 1))
        assert abs(excess_kurtosis(x)[0]) < 0.05

    def test_kurtosis_uniform_near_minus_1_2(self, rng):
        x = rng.uniform(-1, 1, size=(200_000, 1))
        assert excess_kurtosis(x)[0] == pytest.approx(-1.2, abs=0.05)

    def test_kurtosis_constant_column(self):
        assert excess_kurtosis(np.ones((50, 1)))[0] == 0.0

    def test_temperature_recovery(self, rng):
        c_mp = 0.3
        v = sample_maxwellian(rng, 300_000, c_mp, drift=(1.0, 0, 0))
        rt = temperature_from_velocities(v)
        assert rt == pytest.approx(c_mp**2 / 2, rel=0.02)
        assert temperature_from_velocities(v, c_mp_reference=True) == pytest.approx(
            c_mp, rel=0.02
        )

    def test_energy_shares_equilibrium(self, rng):
        # Equipartition: 3/5 translational, 2/5 rotational.
        c_mp = 0.2
        t = sample_maxwellian(rng, 200_000, c_mp, drift=(0.7, 0, 0))
        r = sample_maxwellian(rng, 200_000, c_mp, components=2)
        f_tr, f_rot = energy_shares(t, r)
        assert f_tr == pytest.approx(0.6, abs=0.01)
        assert f_rot == pytest.approx(0.4, abs=0.01)

    def test_energy_shares_monatomic(self, rng):
        t = sample_maxwellian(rng, 1000, 0.2)
        f_tr, f_rot = energy_shares(t, np.empty((1000, 0)))
        assert f_tr == 1.0 and f_rot == 0.0

    def test_chi2_accepts_true_maxwellian(self, rng):
        v = sample_maxwellian(rng, 100_000, 0.2)
        assert speed_distribution_chi2(v, 0.2) < 3.0

    def test_chi2_rejects_rectangular(self, rng):
        v = sample_rectangular(rng, 100_000, 0.2)
        assert speed_distribution_chi2(v, 0.2) > 10.0

    def test_chi2_needs_samples(self, rng):
        with pytest.raises(ConfigurationError):
            speed_distribution_chi2(np.zeros((10, 3)), 0.2)

    def test_variance_shape_validation(self):
        with pytest.raises(ConfigurationError):
            component_variance(np.zeros(5))
