"""The paper's validation experiment at reduced scale.

A half-size Mach 4 / 30-degree wedge run must reproduce the figure 1
checks: shock angle ~45 degrees, post-shock density ratio ~3.7, and the
rarefied run's thicker shock.  This is the slowest test in the suite
(~30 s); the benchmarks repeat it at larger scale with tighter
tolerances.
"""

import math

import numpy as np
import pytest

from repro.analysis.shock import (
    fit_shock_angle,
    post_shock_plateau,
    shock_thickness,
)
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def continuum_run():
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=14.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=2026,
    )
    sim = Simulation(cfg)
    sim.run(220)
    sim.run(200, sample=True)
    return sim


class TestFigure1Checks:
    def test_shock_angle_matches_theory(self, continuum_run):
        sim = continuum_run
        rho = sim.density_ratio_field()
        fit = fit_shock_angle(rho, sim.config.wedge)
        expected = theory.shock_angle_deg(4.0, 30.0)
        assert fit.angle_deg == pytest.approx(expected, abs=3.0)

    def test_density_ratio_matches_rankine_hugoniot(self, continuum_run):
        sim = continuum_run
        rho = sim.density_ratio_field()
        plateau = post_shock_plateau(rho, sim.config.wedge)
        expected = theory.oblique_shock_density_ratio(4.0, math.radians(30.0))
        assert plateau == pytest.approx(expected, rel=0.08)

    def test_freestream_undisturbed_above_shock(self, continuum_run):
        sim = continuum_run
        rho = sim.density_ratio_field()
        # Far field above the shock: still freestream.
        assert rho[5:15, 25:30].mean() == pytest.approx(1.0, abs=0.08)

    def test_shock_is_thin(self, continuum_run):
        sim = continuum_run
        rho = sim.density_ratio_field()
        t = shock_thickness(rho, sim.config.wedge)
        # Paper: ~3 cell widths (resolution-limited) near continuum.
        assert t < 4.5
