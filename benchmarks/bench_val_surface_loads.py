"""VAL2 -- surface loads: the quantity the paper's motivation cares about.

The introduction motivates DSMC with vehicle design (NASP, AOTVs); the
designer's outputs are surface pressure and drag.  They fall out of the
boundary conditions (reflection impulses) and validate against the
attached-oblique-shock surface pressure ``p2`` and the wedge pressure
drag -- an end-to-end check through motion, boundaries, sort, selection
and collision at once.
"""

from repro.analysis.report import ExperimentRecord
from repro.core.surface import oblique_shock_surface_pressure_ratio

from benchmarks.common import WEDGE


def test_val_surface_loads(benchmark, continuum_solution, emit):
    sim = continuum_solution
    fs = sim.config.freestream

    def regenerate():
        return (
            sim.surface.ramp_pressure(),
            sim.surface.drag_coefficient(fs),
            sim.surface.back_face_pressure(),
        )

    pressures, cd, base = benchmark(regenerate)

    p_inf = fs.density * fs.rt
    ratio_theory = oblique_shock_surface_pressure_ratio(
        fs.mach, WEDGE.angle_deg, fs.gamma
    )
    interior = pressures[2:-2] / p_inf
    q = 0.5 * fs.density * fs.speed**2
    cp_theory = (ratio_theory - 1.0) * p_inf / q

    rec = ExperimentRecord("VAL2", "wedge surface pressure and drag")
    rec.add(
        "ramp pressure / p_inf",
        ratio_theory,
        float(interior.mean()),
        rel_tol=0.12,
        note="post-shock static pressure on the ramp (inviscid theory)",
    )
    rec.add(
        "ramp pressure uniformity (std/mean)",
        None,
        float(interior.std() / interior.mean()),
    )
    rec.add(
        "ramp Cp",
        cp_theory,
        float(
            (pressures[2:-2].mean() - p_inf) / q
        ),
        rel_tol=0.15,
    )
    rec.add(
        "base pressure / ramp pressure",
        None,
        float(base / pressures[2:-2].mean()),
        note="near-vacuum wake: small",
    )
    rec.add("drag coefficient (frontal area)", None, cd)
    emit(rec)

    assert abs(interior.mean() - ratio_theory) / ratio_theory < 0.12
    assert cd > 0.0
