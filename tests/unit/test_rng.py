"""Unit tests for the random utilities."""

import numpy as np
import pytest

from repro.rng import (
    DEFAULT_SEED,
    make_rng,
    random_permutation_table,
    random_signs,
    random_transposition_pairs,
    spawn_streams,
)


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=4)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_integer_seeds_are_deterministic(self):
        assert np.array_equal(
            make_rng(7).random(3), make_rng(7).random(3)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g


class TestSpawnStreams:
    def test_streams_are_independent_and_deterministic(self):
        a1, b1 = spawn_streams(9, 2)
        a2, b2 = spawn_streams(9, 2)
        assert np.array_equal(a1.random(5), a2.random(5))
        assert not np.array_equal(a1.random(5), b1.random(5))

    def test_zero_streams(self):
        assert spawn_streams(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(2)
        streams = spawn_streams(g, 3)
        assert len(streams) == 3


class TestRandomSigns:
    def test_only_plus_minus_one(self, rng):
        s = random_signs(rng, (1000, 5))
        assert set(np.unique(s).tolist()) == {-1, 1}

    def test_balanced(self, rng):
        s = random_signs(rng, 100_000)
        assert abs(s.mean()) < 0.02


class TestPermutationTable:
    def test_rows_are_permutations(self, rng):
        t = random_permutation_table(rng, 500, length=5)
        assert t.shape == (500, 5)
        sorted_rows = np.sort(t, axis=1)
        assert np.array_equal(
            sorted_rows, np.broadcast_to(np.arange(5, dtype=np.int8), (500, 5))
        )

    def test_uniform_first_element(self, rng):
        # Each value should appear in position 0 about n/5 times.
        t = random_permutation_table(rng, 50_000, length=5)
        counts = np.bincount(t[:, 0], minlength=5)
        assert np.all(np.abs(counts - 10_000) < 600)

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            random_permutation_table(rng, -1)

    def test_zero_rows(self, rng):
        assert random_permutation_table(rng, 0).shape == (0, 5)


class TestTranspositionDraws:
    def test_in_range(self, rng):
        (j,) = random_transposition_pairs(rng, 1000, length=5)
        assert j.min() >= 0 and j.max() <= 4
