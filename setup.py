"""Setuptools shim.

Kept alongside pyproject.toml so the package installs on minimal,
offline environments where the `wheel` package (needed by pip's PEP 660
editable build path) is unavailable:

    python setup.py develop    # editable install without wheel
"""

from setuptools import setup

setup()
