"""Even/odd collision-candidate pairing (sub-step 3, part 3).

"Collision candidates are identified on an 'even/odd' basis, i.e. all
even numbered partners within a cell are eligible for collision with
their odd numbered neighbour.  This, in conjunction with the use of
virtual processors, proves to be a very efficient arrangement because
collision candidates are now guaranteed to be in the same physical
processor."

After the randomized sort, the particle at sorted address ``2i`` is
paired with address ``2i+1``; the pair is a *candidate* only when both
occupy the same cell.  Pairs straddling a cell boundary (at most one per
cell per step) are skipped -- the re-randomized sort re-rolls the
pairing next step, so no particle is systematically excluded.  Candidacy
still has to pass the probabilistic selection rule before an actual
collision happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CandidatePairs:
    """Even/odd pairing of a cell-sorted population.

    Attributes
    ----------
    first, second:
        Sorted addresses ``2i`` and ``2i+1`` of each pair (the trailing
        unpaired particle of an odd-sized population is dropped).
    same_cell:
        Mask of pairs whose members share a cell: the collision
        *candidates*.
    adjacent:
        True when pair ``i`` is guaranteed to occupy rows ``(2i,
        2i+1)`` (always the case for :func:`even_odd_pairs`).  Lets the
        selection and collision kernels replace scattered gathers with
        strided views over the pair blocks.
    """

    first: np.ndarray
    second: np.ndarray
    same_cell: np.ndarray
    adjacent: bool = False

    @property
    def n_pairs(self) -> int:
        return self.first.shape[0]

    @property
    def n_candidates(self) -> int:
        return int(np.count_nonzero(self.same_cell))

    def candidate_indices(self) -> tuple:
        """(first, second) addresses of the same-cell candidate pairs."""
        return self.first[self.same_cell], self.second[self.same_cell]


def even_odd_pairs(cell_sorted: np.ndarray, scratch=None) -> CandidatePairs:
    """Pair sorted addresses 2i with 2i+1 and test cell agreement.

    ``cell_sorted`` is the cell-index column *after* the sort.  An
    optional :class:`repro.core.particles.ScratchBuffers` makes the
    call allocation-free: the address arrays become strided views of a
    cached ``arange`` and the candidacy mask reuses a pooled buffer.
    """
    cell_sorted = np.asarray(cell_sorted)
    n_pairs = cell_sorted.shape[0] // 2
    even = cell_sorted[0 : 2 * n_pairs : 2]
    odd = cell_sorted[1 : 2 * n_pairs : 2]
    if scratch is not None:
        base = scratch.arange(2 * n_pairs)
        first = base[0::2]
        second = base[1::2]
        same = scratch.array("pairs_same", n_pairs, dtype=bool)
        np.equal(even, odd, out=same)
    else:
        first = np.arange(n_pairs, dtype=np.int64) * 2
        second = first + 1
        same = even == odd
    return CandidatePairs(
        first=first, second=second, same_cell=same, adjacent=True
    )


def pairing_efficiency(pairs: CandidatePairs) -> float:
    """Fraction of formed pairs that are same-cell candidates.

    With ~N/2 particles per cell >> 1 this approaches 1; sparse cells
    lose pairs at boundaries.  Reported by diagnostics so runs can see
    when the grid is too empty for good collision statistics.
    """
    if pairs.n_pairs == 0:
        return 0.0
    return pairs.n_candidates / pairs.n_pairs
