"""Even/odd collision-candidate pairing (sub-step 3, part 3).

"Collision candidates are identified on an 'even/odd' basis, i.e. all
even numbered partners within a cell are eligible for collision with
their odd numbered neighbour.  This, in conjunction with the use of
virtual processors, proves to be a very efficient arrangement because
collision candidates are now guaranteed to be in the same physical
processor."

After the randomized sort, the particle at sorted address ``2i`` is
paired with address ``2i+1``; the pair is a *candidate* only when both
occupy the same cell.  Pairs straddling a cell boundary (at most one per
cell per step) are skipped -- the re-randomized sort re-rolls the
pairing next step, so no particle is systematically excluded.  Candidacy
still has to pass the probabilistic selection rule before an actual
collision happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CandidatePairs:
    """Even/odd pairing of a cell-sorted population.

    Attributes
    ----------
    first, second:
        Sorted addresses ``2i`` and ``2i+1`` of each pair (the trailing
        unpaired particle of an odd-sized population is dropped).
    same_cell:
        Mask of pairs whose members share a cell: the collision
        *candidates*.
    adjacent:
        True when pair ``i`` is guaranteed to occupy rows ``(2i,
        2i+1)`` (always the case for :func:`even_odd_pairs`).  Lets the
        selection and collision kernels replace scattered gathers with
        strided views over the pair blocks.
    """

    first: np.ndarray
    second: np.ndarray
    same_cell: np.ndarray
    adjacent: bool = False

    @property
    def n_pairs(self) -> int:
        return self.first.shape[0]

    @property
    def n_candidates(self) -> int:
        return int(np.count_nonzero(self.same_cell))

    def candidate_indices(self) -> tuple:
        """(first, second) addresses of the same-cell candidate pairs."""
        return self.first[self.same_cell], self.second[self.same_cell]


def even_odd_pairs(cell_sorted: np.ndarray, scratch=None) -> CandidatePairs:
    """Pair sorted addresses 2i with 2i+1 and test cell agreement.

    ``cell_sorted`` is the cell-index column *after* the sort.  An
    optional :class:`repro.core.particles.ScratchBuffers` makes the
    call allocation-free: the address arrays become strided views of a
    cached ``arange`` and the candidacy mask reuses a pooled buffer.
    """
    cell_sorted = np.asarray(cell_sorted)
    n_pairs = cell_sorted.shape[0] // 2
    even = cell_sorted[0 : 2 * n_pairs : 2]
    odd = cell_sorted[1 : 2 * n_pairs : 2]
    if scratch is not None:
        base = scratch.arange(2 * n_pairs)
        first = base[0::2]
        second = base[1::2]
        same = scratch.array("pairs_same", n_pairs, dtype=bool)
        np.equal(even, odd, out=same)
    else:
        first = np.arange(n_pairs, dtype=np.int64) * 2
        second = first + 1
        same = even == odd
    return CandidatePairs(
        first=first, second=second, same_cell=same, adjacent=True
    )


@dataclass(frozen=True)
class ReflectionPairs:
    """Per-cell reflection pairing of an *indexed* canonical order.

    Produced by :func:`reflection_pairs` for the incremental sort
    kernel: every pair is same-cell by construction (no boundary
    straddle, no ``same_cell`` mask) and the members are particle *row*
    indices gathered through the canonical order, not sorted
    addresses.

    Attributes
    ----------
    first, second:
        Particle rows of each pair's two members.
    cell:
        The (shared) cell index of each pair -- the selection kernel's
        density lookup key, precomputed here because the pairing
        already expanded it.
    """

    first: np.ndarray
    second: np.ndarray
    cell: np.ndarray

    @property
    def n_pairs(self) -> int:
        return self.first.shape[0]

    @property
    def n_candidates(self) -> int:
        # Reflection pairs are same-cell by construction.
        return self.first.shape[0]


def reflection_slots(m: int, s: int) -> list:
    """Slot pairs of one cell of ``m`` members under reflection ``s``.

    The scalar reference for :func:`reflection_pairs` (exhaustively
    testable): pair the cell's slots ``0..m-1`` using the involution
    ``a + b = s (mod m)``.  For odd ``s`` the map ``b = (s - a) mod m``
    is a perfect matching of all slots when ``m`` is even (and leaves
    exactly one fixed point unpaired when ``m`` is odd); for even ``s``
    the two fixed points of the involution are paired *with each
    other* (even ``m``) so no slot is wasted.  Every ``s`` yields
    ``m // 2`` disjoint pairs, each slot's partner is uniform over the
    cell across ``s`` draws, and a slot is never paired with itself.
    """
    q, odd = s >> 1, s & 1
    out = []
    for kk in range(m // 2):
        if odd:
            a, b = (q - kk) % m, (q + 1 + kk) % m
        else:
            d = kk + 1
            a, b = (q - d) % m, (q + d) % m
            if 2 * d == m:
                # Degenerate reflection rank: a == b.  Pair the two
                # fixed points of the involution (q and q + m/2)
                # together instead of dropping them.
                a = q % m
        out.append((a, b))
    return out


def reflection_pairs(
    order: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    rng: np.random.Generator = None,
    scratch=None,
    s: np.ndarray = None,
) -> ReflectionPairs:
    """Randomized same-cell pairing over a canonical indexed order.

    The incremental kernel's replacement for sort-then-even/odd: the
    canonical order is deterministic (no intra-cell shuffle), so the
    per-step randomness moves into the *pairing* -- each cell draws one
    reflection offset ``s`` uniform over its occupancy and pairs slot
    ``a`` with slot ``b`` where ``a + b = s (mod m)``
    (:func:`reflection_slots`).  One draw per cell per step replaces a
    full random permutation of the population, and every formed pair is
    same-cell, so the pairing efficiency is exactly
    ``sum(m_c // 2) / (n // 2)`` -- no candidates lost to cell-boundary
    straddle.

    RNG contract: consumes exactly one ``rng.integers`` call over all
    cells (empty cells draw against a bound of 1), so the stream
    position after pairing depends only on the per-cell ``counts`` --
    which are path-independent -- never on the order's repair/rebuild
    history.

    Returns particle-row pairs gathered through ``order``; ``scratch``
    backs the returned arrays (transient intermediates are fine -- the
    retained-memory guarantee is what the perf guard enforces).

    Two generalizations serve the replica-batched ensemble engine:
    ``s`` accepts externally drawn reflection offsets (one per cell;
    the ensemble packs per-replica draws into one array so pairing
    never straddles replica blocks), and ``order=None`` declares that
    slot addresses *are* particle rows (the population is physically
    cell-sorted), skipping the two gather passes.
    """
    n_cells = counts.shape[0]
    if s is None:
        # One bounded draw per cell, including empty ones: deterministic
        # stream consumption given counts.
        s = rng.integers(0, np.maximum(counts, 1))
    elif s.shape[0] != n_cells:
        raise ValueError(
            f"external reflection draws must be per-cell: got {s.shape[0]} "
            f"draws for {n_cells} cells"
        )
    pair_counts = counts >> 1
    n_pairs = int(pair_counts.sum())
    if scratch is not None:
        first = scratch.array("rp_first", n_pairs, dtype=np.intp)
        second = scratch.array("rp_second", n_pairs, dtype=np.intp)
        pair_cell = scratch.array("rp_cell", n_pairs, dtype=np.int64)
    else:
        first = np.empty(n_pairs, dtype=np.intp)
        second = np.empty(n_pairs, dtype=np.intp)
        pair_cell = np.empty(n_pairs, dtype=np.int64)
    if n_pairs == 0:
        return ReflectionPairs(first=first, second=second, cell=pair_cell)
    # Transient P- and C-sized expansions (np.repeat has no out=); the
    # guard budget tracks retained memory, not peak.
    pair_cell[:] = np.repeat(np.arange(n_cells, dtype=np.int64),
                             pair_counts)
    pair_start = np.cumsum(pair_counts) - pair_counts
    kk = np.arange(n_pairs, dtype=np.int64) - np.repeat(pair_start,
                                                        pair_counts)
    m = counts[pair_cell]
    sp = s[pair_cell]
    q = sp >> 1
    odd = sp & 1
    a_loc = q - kk - 1 + odd
    b_loc = q + 1 + kk
    # Degenerate reflection rank (even s, even m, last pair): handled
    # per *cell*, not per pair -- at most one pair per cell qualifies,
    # so a C-sized mask beats a P-sized one.
    deg_cells = np.flatnonzero(
        ((counts & 1) == 0) & ((s & 1) == 0) & (pair_counts > 0)
    )
    if deg_cells.shape[0]:
        a_loc[pair_start[deg_cells] + pair_counts[deg_cells] - 1] = (
            s[deg_cells] >> 1
        )
    # Range reduction without the division behind ``%``: a_loc sits in
    # (-m, m) and b_loc in [1, 2m), so one conditional +/- m folds each
    # into [0, m).  ``x >> 63`` is all-ones exactly when x < 0, making
    # ``x += (x >> 63) & m`` a branch-free conditional add.
    a_loc += (a_loc >> 63) & m
    b_loc -= m
    b_loc += (b_loc >> 63) & m
    base = offsets[pair_cell]
    a_loc += base
    b_loc += base
    if order is None:
        # Physically sorted population: slots are rows.
        first[:] = a_loc
        second[:] = b_loc
    else:
        np.take(order, a_loc, out=first, mode="clip")
        np.take(order, b_loc, out=second, mode="clip")
    return ReflectionPairs(first=first, second=second, cell=pair_cell)


def pairing_efficiency(pairs: CandidatePairs) -> float:
    """Fraction of formed pairs that are same-cell candidates.

    With ~N/2 particles per cell >> 1 this approaches 1; sparse cells
    lose pairs at boundaries.  Reported by diagnostics so runs can see
    when the grid is too empty for good collision statistics.
    """
    if pairs.n_pairs == 0:
        return 0.0
    return pairs.n_candidates / pairs.n_pairs
