"""Integration tests of adaptive slab rebalancing.

The contract under test (ISSUE 6: close the load-balance loop):

* ``rebalance=None`` (the ``--balance off`` path) is bitwise identical
  to a backend that never heard of rebalancing, and a configured but
  never-triggering rebalancer is bitwise identical to ``None``.
* A repartition re-homes particle ownership and nothing else: the
  global particle multiset is bitwise unchanged across a forced
  rebalance, and per-shard populations land inside the new slabs.
* Process workers and the inline mode stay bitwise identical while
  rebalancing (the epoch is carried by the same deterministic
  channels as a normal step).
* A checkpoint taken mid-run with non-uniform edges restores the same
  decomposition and continues bitwise at the same worker count;
  legacy archives without the edge tuple restore as the uniform split.
"""

from __future__ import annotations

import zipfile

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.io.snapshots import load_simulation, save_simulation
from repro.parallel.backend import ShardedBackend
from repro.parallel.rebalance import RebalanceConfig
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.sharded

PARTICLE_COLUMNS = ("x", "y", "u", "v", "w", "rot", "perm", "cell")


def _config(seed: int = 42, nx: int = 32, ny: int = 16) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=nx, ny=ny),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0),
        wedge=Wedge(x_leading=8.0, base=9.0, angle_deg=30.0),
        seed=seed,
    )


#: An eager config: decide every step, act on any measurable skew.
EAGER = RebalanceConfig(every=1, threshold=1.0)


def _run(steps: int, rebalance=None, processes: bool = False,
         seed: int = 42):
    sim = Simulation(
        _config(seed),
        backend=ShardedBackend(2, processes=processes, rebalance=rebalance),
    )
    sim.run(steps)
    sim.gather()
    return sim


def _state(sim) -> dict:
    return {col: getattr(sim.particles, col).copy() for col in PARTICLE_COLUMNS}


def _sorted_multiset(parts) -> np.ndarray:
    """Row-canonical view of the population (order-independent)."""
    rows = np.column_stack([parts.x, parts.y, parts.u, parts.v, parts.w])
    return rows[np.lexsort(rows.T)]


class TestDisabledIsIdentity:
    def test_never_triggering_config_is_bitwise_off(self):
        """A rebalancer that never fires changes nothing.

        The threshold is unreachable, so every cadence tick measures
        and declines; the run must be bitwise identical to
        ``rebalance=None`` (which is itself the pre-PR code path: no
        shared state, no RNG, no particle motion outside the step).
        """
        off = _run(15, rebalance=None)
        armed = _run(15, rebalance=RebalanceConfig(every=5, threshold=1e9))
        try:
            assert armed.backend.rebalance_count == 0
            a, b = _state(off), _state(armed)
            for col in PARTICLE_COLUMNS:
                assert np.array_equal(a[col], b[col]), col
            assert off.backend.slab_edges == armed.backend.slab_edges
        finally:
            off.close()
            armed.close()


class TestRebalanceExecution:
    def test_wedge_triggers_and_reduces_imbalance(self):
        from repro.telemetry.observables import load_imbalance

        sim = _run(20, rebalance=EAGER)
        try:
            be = sim.backend
            assert be.rebalance_count > 0
            assert be.rebalance_columns_moved > 0
            imb = load_imbalance(be.shard_loads())
            assert imb <= 1.15
        finally:
            sim.close()

    def test_forced_rebalance_conserves_the_particle_multiset(self):
        sim = _run(8, rebalance=None)
        try:
            be = sim.backend
            before = _sorted_multiset(sim.particles)
            moved = be.maybe_rebalance(sim.step_count, force=True)
            assert moved  # the shock has skewed the loads by step 8
            event = be.take_rebalance_event()
            assert event["executed"] and event["rows_moved"] > 0
            sim.gather()
            after = _sorted_multiset(sim.particles)
            assert np.array_equal(before, after)

            # Every shard's particles sit inside its new slab.
            edges = be.slab_edges
            for k, cols in enumerate(be.shard_columns()):
                if cols["x"].size:
                    assert cols["x"].min() >= edges[k]
                    assert cols["x"].max() < edges[k + 1]
        finally:
            sim.close()

    def test_process_mode_matches_inline_while_rebalancing(self):
        inline = _run(15, rebalance=EAGER, processes=False)
        procs = _run(15, rebalance=EAGER, processes=True)
        try:
            assert inline.backend.rebalance_count == procs.backend.rebalance_count
            assert inline.backend.slab_edges == procs.backend.slab_edges
            a, b = _state(inline), _state(procs)
            for col in PARTICLE_COLUMNS:
                assert np.array_equal(a[col], b[col]), col
        finally:
            inline.close()
            procs.close()

    def test_bad_edges_length_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend(2, edges=(0, 8, 16, 32))


class TestCheckpointContinuity:
    def test_non_uniform_checkpoint_restores_and_continues_bitwise(
        self, tmp_path
    ):
        def factory(n_workers, processes, flux_pending, edges=None):
            return ShardedBackend(
                n_workers,
                processes=processes,
                flux_pending=flux_pending,
                edges=edges,
                rebalance=EAGER,
            )

        # Uninterrupted reference: 14 + 6 rebalancing steps.  Step 14
        # is chosen because the eager rebalancer has the decomposition
        # genuinely non-uniform there (checked below) -- the case the
        # edge persistence exists for.
        ref = _run(20, rebalance=EAGER)

        sim = _run(14, rebalance=EAGER)
        try:
            assert sim.backend.slab_edges != (0, 16, 32)
            saved_edges = sim.backend.slab_edges
            path = tmp_path / "mid.npz"
            save_simulation(sim, path)
        finally:
            sim.close()

        restored = load_simulation(
            path, workers=2, processes=False, backend_factory=factory
        )
        try:
            assert restored.backend.slab_edges == saved_edges
            restored.run(6)
            restored.gather()
            a, b = _state(ref), _state(restored)
            for col in PARTICLE_COLUMNS:
                assert np.array_equal(a[col], b[col]), col
            assert ref.backend.slab_edges == restored.backend.slab_edges
        finally:
            ref.close()
            restored.close()

    def test_legacy_archive_without_edges_restores_uniform(self, tmp_path):
        sim = _run(14, rebalance=EAGER)
        try:
            assert sim.backend.slab_edges != (0, 16, 32)
            path = tmp_path / "v3.npz"
            save_simulation(sim, path)
        finally:
            sim.close()

        # Strip the edge member to fabricate a pre-v3-style archive.
        legacy = tmp_path / "legacy.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(
            legacy, "w"
        ) as dst:
            for name in src.namelist():
                if name != "slab_edges.npy":
                    dst.writestr(name, src.read(name))

        restored = load_simulation(legacy, workers=2, processes=False)
        try:
            assert restored.backend.slab_edges == (0, 16, 32)
        finally:
            restored.close()
