"""Per-phase wall-clock performance ledger for the NumPy engine.

The paper reports its runtime as a per-phase breakdown -- motion and
boundaries 14%, sort 27%, selection 20%, collision 39% of 7.2
microseconds per particle per step -- and the CM emulation reproduces
that structurally through :class:`repro.cm.timing.CostLedger`.  This
module is the *wall-clock* counterpart for the reference (NumPy)
engine: the step loop wraps each phase in :meth:`PerfLedger.phase` and
the ledger accumulates real elapsed seconds, so a run can print its own
motion/sort/selection/collision split next to the paper's and the
benchmark suite can track the hot path's trajectory across commits.

Overhead is two ``perf_counter`` calls per phase per step (tens of
nanoseconds), negligible against the O(N) kernels being timed; the
ledger can still be disabled for the purest timing runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: The paper's four timed phases, in execution order.  The ledger also
#: accepts extra phase names (e.g. "reservoir", "sampling") -- they are
#: reported separately and excluded from the four-phase fractions so the
#: split stays comparable with the paper's table.
PAPER_PHASES = ("motion", "sort", "selection", "collision")


class PerfLedger:
    """Accumulates wall-clock seconds by named phase.

    Typical use inside a step loop::

        perf = PerfLedger()
        with perf.phase("motion"):
            ...
        with perf.phase("sort"):
            ...
        perf.end_step()

    and afterwards ``perf.fractions()`` for the paper-style split or
    ``perf.us_per_particle(n)`` for the per-particle budget.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._last_step: Dict[str, float] = {}
        self._current: Dict[str, float] = {}
        self._steps = 0

    # -- recording --------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block and charge it to ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._current[name] = self._current.get(name, 0.0) + dt
            self._seconds[name] = self._seconds.get(name, 0.0) + dt

    def record(self, name: str, seconds: float) -> None:
        """Charge externally measured ``seconds`` to phase ``name``.

        The sharded backend times phases inside worker processes and
        merges the per-shard ledgers into the driver's ledger through
        this method (summed CPU-seconds per phase, so the paper-style
        four-phase split still reports globally).
        """
        if not self.enabled:
            return
        self._current[name] = self._current.get(name, 0.0) + seconds
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def end_step(self) -> None:
        """Close out one time step (freezes that step's phase split)."""
        self._steps += 1
        self._last_step = self._current
        self._current = {}

    def reset(self) -> None:
        """Drop all accumulated timings (e.g. after warm-up steps)."""
        self._seconds = {}
        self._last_step = {}
        self._current = {}
        self._steps = 0

    # -- reading ----------------------------------------------------------

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def last_step_seconds(self) -> Dict[str, float]:
        """Phase -> seconds of the most recently completed step."""
        return dict(self._last_step)

    def total_seconds(self) -> float:
        """Wall-clock seconds accumulated across all phases."""
        return sum(self._seconds.values())

    def phase_seconds(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def per_step_seconds(self) -> Dict[str, float]:
        """Phase -> mean seconds per recorded step."""
        if self._steps == 0:
            return {}
        return {p: s / self._steps for p, s in self._seconds.items()}

    def fractions(self) -> Dict[str, float]:
        """Share of each *paper* phase in the four-phase total.

        Extra phases (reservoir work, sampling) are excluded from the
        denominator so the split is directly comparable with the
        paper's 14/27/20/39 table.
        """
        total = sum(self._seconds.get(p, 0.0) for p in PAPER_PHASES)
        if total == 0.0:
            return {p: 0.0 for p in PAPER_PHASES}
        return {p: self._seconds.get(p, 0.0) / total for p in PAPER_PHASES}

    def us_per_particle(self, n_particles: int) -> Dict[str, float]:
        """Phase -> microseconds per particle per step (paper units)."""
        if self._steps == 0 or n_particles <= 0:
            return {}
        return {
            p: s / self._steps / n_particles * 1e6
            for p, s in self._seconds.items()
        }

    def summary(self, n_particles: Optional[int] = None) -> Dict[str, object]:
        """One serializable record of everything the ledger knows."""
        out: Dict[str, object] = {
            "steps": self._steps,
            "seconds_by_phase": dict(self._seconds),
            "per_step_seconds": self.per_step_seconds(),
            "fractions": self.fractions(),
        }
        if n_particles:
            out["us_per_particle"] = self.us_per_particle(n_particles)
        return out
