"""Internal (rotational/vibrational) relaxation extension tests.

The paper's Future Work: "the molecular model should be generalised to
allow ... relaxation into vibrational energy."  The extension is an
internal-exchange probability p: internal modes join the five-component
shuffle once per 1/p collisions on average, giving a controllable
collision number Z = 1/p while preserving exact conservation.
"""

import numpy as np
import pytest

from repro.core.collision import collide_pairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.distributions import energy_shares
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel
from repro.rng import make_rng


def cold_rotation_bath(seed=1, n=20_000):
    rng = make_rng(seed)
    fs = Freestream(mach=4.0, c_mp=0.3, lambda_mfp=0.5, density=8.0)
    pop = ParticleArrays.from_freestream(rng, n, fs, (0, 1), (0, 1))
    pop.u -= fs.speed
    pop.rot[:] = 0.0
    return pop, rng


def relax(pop, rng, rounds, p_exchange):
    for _ in range(rounds):
        order = rng.permutation(pop.n)
        n_pairs = pop.n // 2
        collide_pairs(
            pop,
            order[0 : 2 * n_pairs : 2],
            order[1 : 2 * n_pairs : 2],
            rng=rng,
            internal_exchange_probability=p_exchange,
        )


def rot_fraction(pop):
    _, f_rot = energy_shares(np.column_stack((pop.u, pop.v, pop.w)), pop.rot)
    return f_rot


class TestRelaxationRate:
    def test_frozen_internal_modes(self):
        pop, rng = cold_rotation_bath()
        e0 = pop.total_energy()
        relax(pop, rng, rounds=10, p_exchange=0.0)
        assert pop.rotational_energy() == 0.0
        assert pop.total_energy() == pytest.approx(e0, rel=1e-12)

    def test_slower_exchange_relaxes_slower(self):
        fractions = {}
        for p in (1.0, 0.2):
            pop, rng = cold_rotation_bath()
            relax(pop, rng, rounds=3, p_exchange=p)
            fractions[p] = rot_fraction(pop)
        assert fractions[0.2] < fractions[1.0]
        assert fractions[0.2] > 0.0

    def test_all_rates_reach_equipartition(self):
        for p in (1.0, 0.3):
            pop, rng = cold_rotation_bath()
            relax(pop, rng, rounds=60, p_exchange=p)
            assert rot_fraction(pop) == pytest.approx(0.4, abs=0.02)

    def test_conservation_holds_at_partial_exchange(self):
        pop, rng = cold_rotation_bath(n=4000)
        pop.rot[:] = rng.normal(0, 0.1, size=pop.rot.shape)
        e0 = pop.total_energy()
        m0 = pop.momentum()
        relax(pop, rng, rounds=10, p_exchange=0.37)
        assert pop.total_energy() == pytest.approx(e0, rel=1e-12)
        assert np.allclose(pop.momentum(), m0, atol=1e-9)

    def test_translational_still_mixes_when_frozen(self):
        # p = 0 must still isotropize the translational components.
        pop, rng = cold_rotation_bath()
        pop.v *= 0.1
        pop.w *= 0.1
        relax(pop, rng, rounds=20, p_exchange=0.0)
        variances = [pop.u.var(), pop.v.var(), pop.w.var()]
        assert max(variances) / min(variances) < 1.1

    def test_requires_rng(self):
        pop, rng = cold_rotation_bath(n=10)
        with pytest.raises(ConfigurationError):
            collide_pairs(
                pop,
                np.array([0]),
                np.array([1]),
                signs=np.ones((1, 5), dtype=np.int8),
                transpositions=np.zeros(2, dtype=np.int64),
                internal_exchange_probability=0.5,
            )


class TestModelValidation:
    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            MolecularModel(internal_exchange_probability=1.5)
        with pytest.raises(ConfigurationError):
            MolecularModel(internal_exchange_probability=-0.1)

    def test_collision_number_interpretation(self):
        # Z = 1/p: exponential approach of the rotational fraction with
        # rate ~p per collision round (each particle collides ~once per
        # round at P = 1 pairing).
        results = {}
        for p in (1.0, 0.5):
            pop, rng = cold_rotation_bath(seed=3)
            relax(pop, rng, rounds=2, p_exchange=p)
            results[p] = rot_fraction(pop)
        # Faster exchange covers more of the gap to 0.4.
        gap_full = 0.4 - results[1.0]
        gap_half = 0.4 - results[0.5]
        assert gap_half > gap_full
