"""FIG2 -- Figure 2: density surface, near-continuum: the wake shock.

"This figure clearly depicts the fully developed wake shock created
when the fluid which has expanded around the corner of the wedge meets
the bottom surface of the wind tunnel."  The bench regenerates the
density surface, verifies the wake recompression is present and strong,
and dumps the surface for inspection.
"""

from repro.analysis.contour import save_field_npz
from repro.analysis.fields import SurfaceSummary, wake_window
from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import wake_floor_ridge, wake_recompression_factor
from repro.constants import PAPER_DENSITY_RATIO

from benchmarks.common import DOMAIN, OUT_DIR, WEDGE


def test_fig2_density_surface_wake_shock(benchmark, continuum_solution, emit):
    sim = continuum_solution
    rho = sim.density_ratio_field()

    def regenerate():
        win = wake_window(WEDGE, DOMAIN)
        summary = SurfaceSummary.of(win.extract(rho))
        ridge = wake_floor_ridge(rho, WEDGE, DOMAIN)
        factor = wake_recompression_factor(rho, WEDGE, DOMAIN)
        return summary, ridge, factor

    summary, ridge, factor = benchmark(regenerate)

    rec = ExperimentRecord("FIG2", "near-continuum density surface (wake shock)")
    rec.add(
        "wake floor ridge (floor / mid-height density)",
        None,
        ridge,
        note="> 1: recompression layer attached to the floor (wake shock)",
    )
    rec.add(
        "wake recompression development (peak/trough)",
        None,
        factor,
        note="growth of the floor-band density through the wake",
    )
    rec.add(
        "surface max (shock layer)",
        PAPER_DENSITY_RATIO,
        float(rho[25:45, 2:20].max()),
        rel_tol=0.35,
        note="peak of the density surface sits in the shock layer",
    )
    rec.add("wake window min", None, summary.minimum,
            note="expansion trough behind the base")
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(str(OUT_DIR / "fig2_surface.npz"), density_ratio=rho)
    # The headline claim: the recompression layer is attached to the
    # floor (the developing wake shock of figure 2) and has grown a
    # strong density rise along the wake.
    assert ridge > 1.0
    assert factor > 2.0
