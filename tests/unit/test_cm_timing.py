"""Unit tests for the cost ledger and the calibrated timing model."""

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.cm.timing import (
    CM2TimingModel,
    CostLedger,
    CostModel,
    PHASES,
    PhaseBreakdown,
    _structural_step_costs,
)
from repro.constants import (
    PAPER_CM2_US_PER_PARTICLE,
    PAPER_PHASE_FRACTIONS,
    PAPER_TOTAL_PARTICLES,
)
from repro.errors import MachineError


class TestCostLedger:
    def test_phase_scoping(self):
        led = CostLedger()
        with led.phase("sort"):
            led.charge("alu", 10.0)
        assert led.phase_total("sort") == 10.0
        assert led.phase_total("motion") == 0.0

    def test_explicit_phase(self):
        led = CostLedger()
        led.charge("scan", 5.0, phase="selection")
        assert led.phase_total("selection") == 5.0

    def test_charge_without_phase_raises(self):
        with pytest.raises(MachineError):
            CostLedger().charge("alu", 1.0)

    def test_unknown_phase_or_category(self):
        led = CostLedger()
        with pytest.raises(MachineError):
            led.charge("alu", 1.0, phase="warmup")
        with pytest.raises(MachineError):
            led.charge("gpu", 1.0, phase="sort")

    def test_negative_cost_rejected(self):
        led = CostLedger()
        with pytest.raises(MachineError):
            led.charge("alu", -1.0, phase="sort")

    def test_nested_phases_restore(self):
        led = CostLedger()
        with led.phase("sort"):
            with led.phase("collision"):
                led.charge("alu", 1.0)
            led.charge("alu", 2.0)
        assert led.phase_total("collision") == 1.0
        assert led.phase_total("sort") == 2.0

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge("alu", 1.0, phase="sort")
        b.charge("alu", 2.0, phase="sort")
        a.end_step()
        b.end_step()
        m = a.merged_with(b)
        assert m.phase_total("sort") == 3.0
        assert m.steps == 2


class TestCostModel:
    def test_elementwise_scales_with_vpr(self):
        m = CM2(n_processors=4)
        for vpr in (1, 4):
            led = CostLedger()
            cost = CostModel(m.geometry(4 * vpr), led)
            with led.phase("motion"):
                cost.elementwise(bits=32, nops=1)
            assert led.phase_total("motion") == 32 * vpr

    def test_pair_exchange_offchip_only_at_vpr1(self):
        m = CM2(n_processors=8)
        led1 = CostLedger()
        c1 = CostModel(m.geometry(8), led1)
        with led1.phase("collision"):
            f1 = c1.pair_exchange(payload_bits=32)
        led2 = CostLedger()
        c2 = CostModel(m.geometry(16), led2)
        with led2.phase("collision"):
            f2 = c2.pair_exchange(payload_bits=32)
        assert f1 == 1.0 and f2 == 0.0
        assert led1.category_total("route_off") > 0
        assert led2.category_total("route_off") == 0


class TestTimingModel:
    def test_anchor_reproduces_paper_numbers(self):
        tm = CM2TimingModel()
        pb = tm.predict_curve([PAPER_TOTAL_PARTICLES])[PAPER_TOTAL_PARTICLES]
        assert pb.total == pytest.approx(PAPER_CM2_US_PER_PARTICLE, rel=1e-6)
        for p in PHASES:
            assert pb.fractions()[p] == pytest.approx(
                PAPER_PHASE_FRACTIONS[p], rel=1e-6
            )

    def test_figure7_shape_monotone_decreasing(self):
        tm = CM2TimingModel()
        counts = [32 * 1024 * 2**i for i in range(5)]
        curve = tm.predict_curve(counts)
        totals = [curve[n].total for n in counts]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_figure7_biggest_drop_is_vpr1_to_2(self):
        tm = CM2TimingModel()
        counts = [32 * 1024 * 2**i for i in range(5)]
        totals = [tm.predict_curve([n])[n].total for n in counts]
        drops = [a - b for a, b in zip(totals, totals[1:])]
        assert drops[0] == max(drops)

    def test_figure7_magnitude_close_to_paper(self):
        # Paper figure 7: ~10.5 us at 32k down to 7.2 us at 512k.
        tm = CM2TimingModel()
        t_32k = tm.predict_curve([32 * 1024])[32 * 1024].total
        assert 9.0 < t_32k < 12.0

    def test_ledger_conversion_requires_steps(self):
        tm = CM2TimingModel()
        with pytest.raises(MachineError):
            tm.per_particle_us(CostLedger(), 100)

    def test_structural_costs_cover_all_phases(self):
        raw = _structural_step_costs(CM2(), 64 * 1024)
        assert set(raw) == set(PHASES)
        assert all(v > 0 for v in raw.values())

    def test_scaled_machine_anchors_at_vpr16(self):
        m = CM2(n_processors=1024)
        tm = CM2TimingModel(machine=m)
        pb = tm.predict_curve([16 * 1024])[16 * 1024]
        assert pb.total == pytest.approx(PAPER_CM2_US_PER_PARTICLE, rel=1e-6)


class TestPhaseBreakdown:
    def test_fractions_sum_to_one(self):
        pb = PhaseBreakdown(
            us_per_particle={p: 1.0 for p in PHASES}
        )
        assert sum(pb.fractions().values()) == pytest.approx(1.0)

    def test_empty_total(self):
        pb = PhaseBreakdown(us_per_particle={p: 0.0 for p in PHASES})
        assert pb.total == 0.0
        assert all(v == 0.0 for v in pb.fractions().values())
