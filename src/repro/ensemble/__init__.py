"""Replica-batched ensemble execution (R seeds as one wide state).

The ensemble engine steps R statistically independent replicas of a
scenario as one replica-blocked population, amortizing every NumPy
kernel dispatch over an R-times-wider array while keeping each replica
bitwise identical to a solo (R = 1) engine run keyed for the same
replica id.  See ``docs/algorithm.md`` ("Ensemble mode") for the layout
choice and the determinism contract.
"""

from repro.core.sampling import (
    EnsembleSampler,
    EnsembleStatistic,
    ensemble_statistic,
)
from repro.ensemble.engine import (
    EnsembleEngine,
    EnsembleStepDiagnostics,
    replica_scenario_runs,
    replica_state,
    verify_replica_equality,
)

__all__ = [
    "EnsembleEngine",
    "EnsembleSampler",
    "EnsembleStatistic",
    "EnsembleStepDiagnostics",
    "ensemble_statistic",
    "replica_scenario_runs",
    "replica_state",
    "verify_replica_equality",
]
