"""The randomized sort by cell key (sub-step 3, part 2).

"The sort is a crucial step in the implementation of this particle
simulation algorithm. ... The primary purpose of the sort is to put all
particles occupying a given cell into neighbouring addresses thus making
it easy both to identify collision candidates and to sample macroscopic
quantities from cells."  The subtler consequence: with one particle per
virtual processor the sort achieves "a perfect dynamic load balance for
the collision routine" -- processing power is redistributed to match the
cell populations every step.

**The fused counting-sort kernel.**  The cell index is a small dense
integer (98x64 = 6272 cells), so a comparison sort is overkill: the
natural O(N) algorithm is a counting sort -- per-cell histogram, prefix
sum to bucket offsets, stable placement.  NumPy exposes exactly that
machinery: ``np.argsort(kind="stable")`` on a <= 16-bit integer key runs
the library's radix/counting path (histogram + prefix scan per byte), an
order of magnitude faster than the comparison sort it falls back to for
wider dtypes.  :func:`sort_by_cell` therefore narrows the key to 16 bits
whenever the cell range allows and keeps the wide comparison sort only
as a fallback for huge grids.

The paper's intra-cell randomization ("a random number less than the
scale factor is added" to the scaled cell index) is preserved, but
implemented as bucket shuffling: apply a uniform random permutation of
*all* particles first, then counting-sort the permuted cell keys stably.
Each cell's bucket receives its members in uniformly random relative
order -- exactly the distribution the scaled-key trick approximates --
while the key stays narrow and the histogram (``counts``) falls out of
the same pass, eliminating the separate ``cell_populations`` bincount
the step loop used to pay.

The CM engine supplies explicit ``mix_bits`` instead of an rng; that
path keeps the paper's literal ``cell * scale + bits`` key (narrowed
when it fits) so the emulated sort order is bit-identical to the seed
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core.cells import randomized_sort_keys
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError

#: Largest key value that still takes NumPy's radix/counting sort path
#: (stable argsort of uint16); beyond this the kernel falls back to the
#: wide comparison sort.  Keys are validated non-negative upstream.
NARROW_KEY_LIMIT = int(np.iinfo(np.uint16).max)


@dataclass(frozen=True)
class SortStepResult:
    """Bookkeeping from one sort step.

    Attributes
    ----------
    order:
        Applied permutation (pre-sort index of each sorted slot).
    rank_shift:
        Mean absolute change of sorted rank per particle -- the
        "general communication" driver: a particle whose rank moved
        less than the VP block size stays on its physical processor.
    counts:
        Per-cell populations (length ``n_cells``) when the caller
        passed ``n_cells`` -- the histogram half of the fused kernel,
        reusable downstream (selection probabilities, diagnostics)
        without a second bincount.  ``None`` otherwise.
    """

    order: np.ndarray
    rank_shift: float
    counts: Optional[np.ndarray] = None


def counting_sort_order(
    cell: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    scratch=None,
    max_key: Optional[int] = None,
) -> np.ndarray:
    """Stable O(N) sort permutation of small-integer cell keys.

    With ``shuffle=True`` (and an rng) the returned order additionally
    randomizes intra-cell positions uniformly: a global permutation
    ``p`` is drawn, the permuted keys are counting-sorted stably, and
    the two permutations are composed, so equal keys land in the order
    ``p`` visits them.  ``shuffle=False`` is the plain stable sort (the
    ablation / ``scale=1`` configuration).

    ``scratch`` (a :class:`repro.core.particles.ScratchBuffers`) makes
    the kernel allocation-free apart from the argsort's own output;
    ``max_key`` skips the O(N) max scan when the caller knows the key
    range (e.g. ``domain.n_cells - 1``).
    """
    n = cell.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if max_key is None:
        # Only scanned when the caller did not vouch for the key range
        # (the step loop passes ``max_key`` and skips both scans).  A
        # negative key would corrupt silently via the unsafe uint16
        # narrowing, so it must be rejected here.
        if int(cell.min()) < 0:
            raise ConfigurationError("cell indices must be non-negative")
        max_key = int(cell.max())
    narrow = max_key <= NARROW_KEY_LIMIT

    if not (shuffle and rng is not None):
        if narrow:
            if scratch is not None:
                key16 = scratch.array("sort_key16", n, dtype=np.uint16)
            else:
                key16 = np.empty(n, dtype=np.uint16)
            np.copyto(key16, cell, casting="unsafe")
            return np.argsort(key16, kind="stable")
        return np.argsort(cell, kind="stable")

    if scratch is not None:
        p = scratch.permutation(n, rng)
        key16 = scratch.array("sort_key16", n, dtype=np.uint16)
        order = scratch.array("sort_order", n, dtype=np.intp)
    else:
        p = rng.permutation(n)
        key16 = np.empty(n, dtype=np.uint16)
        order = np.empty(n, dtype=np.intp)
    if narrow:
        np.copyto(key16, cell, casting="unsafe")
        # Gather the pre-shuffled keys; "clip" because p is a
        # permutation (always in range) and "raise" would buffer.
        shuffled = scratch.array("sort_shuf16", n, dtype=np.uint16) \
            if scratch is not None else np.empty(n, dtype=np.uint16)
        np.take(key16, p, out=shuffled, mode="clip")
        s = np.argsort(shuffled, kind="stable")
    else:
        s = np.argsort(cell[p], kind="stable")
    np.take(p, s, out=order, mode="clip")
    return order


def blocked_cell_key(
    cell: np.ndarray,
    starts: np.ndarray,
    n_cells: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Composite replica-blocked sort key: ``cell + block * n_cells``.

    The ensemble engine sorts R replica blocks as one population by
    lifting the cell index into a key whose high digit is the *block
    position* (not the replica id -- position keeps the key dense in
    ``[0, R * n_cells)`` so the narrow radix path applies whenever
    ``R * n_cells <= NARROW_KEY_LIMIT + 1``).  A stable sort of this key
    can never move a particle across its replica block, and within a
    block it is exactly the solo stable cell sort -- the property the
    bitwise replica-equality contract rests on.
    """
    n = cell.shape[0]
    if int(starts[-1]) != n:
        raise ConfigurationError("starts[-1] must equal the population")
    key = out if out is not None else np.empty(n, dtype=np.int64)
    for r in range(starts.shape[0] - 1):
        b0, b1 = int(starts[r]), int(starts[r + 1])
        np.add(cell[b0:b1], r * n_cells, out=key[b0:b1])
    return key


def sort_by_cell(
    particles: ParticleArrays,
    rng: Optional[np.random.Generator] = None,
    scale: int = DEFAULT_SORT_SCALE,
    mix_bits: Optional[np.ndarray] = None,
    n_cells: Optional[int] = None,
    kernel: str = "counting",
    counts_out: Optional[np.ndarray] = None,
) -> SortStepResult:
    """Sort the population by cell with randomized intra-cell order.

    After this call, particles of one cell occupy a contiguous run of
    addresses in random intra-cell order, ready for even/odd pairing.

    ``scale`` retains its seed-implementation meaning: ``scale = 1``
    disables the intra-cell mixing (stable no-op on equal cells, the
    ablation configuration); ``scale > 1`` enables it.  When
    ``mix_bits`` is given the literal scaled-key sort of the seed
    implementation runs (the CM engine's "quick & dirty" bits path,
    bit-identical ordering); otherwise mixing uses the fused
    shuffle-then-counting-sort kernel, which is uniform rather than
    approximately uniform and keeps the sort key 16 bits wide.

    ``n_cells`` additionally requests the per-cell histogram in the
    result (derived from the sorted population by binary search);
    ``counts_out`` (int64, length ``n_cells``) receives that histogram
    in place -- shard workers pass a persistent buffer so the per-step
    counts never allocate.

    ``kernel`` selects the sort implementation: ``"counting"`` (the
    fused narrow-key kernel) or ``"scaled-key"`` (the original wide
    int64 stable argsort of ``cell * scale + offset`` -- kept as the
    measurable baseline for the hot-path benchmark and the ablation
    A/B flag ``Simulation(config, hotpath=False)``).
    """
    cell = particles.cell
    n = cell.shape[0]
    scratch = particles.scratch
    if kernel == "incremental":
        raise ConfigurationError(
            "kernel='incremental' keeps state across steps; drive it "
            "through IncrementalSorter (as the step loop does), not "
            "through sort_by_cell()"
        )
    if kernel not in ("counting", "scaled-key"):
        raise ConfigurationError(f"unknown sort kernel {kernel!r}")

    if mix_bits is not None:
        # Seed-faithful scaled-key path (CM mix bits).  Narrow the key
        # dtype when the scaled range fits: stability makes the
        # permutation bit-identical to the wide sort.
        keys = randomized_sort_keys(cell, rng=rng, scale=scale,
                                    mix_bits=mix_bits)
        if keys.size and keys.max() <= NARROW_KEY_LIMIT:
            keys = keys.astype(np.uint16)
        order = np.argsort(keys, kind="stable")
    elif kernel == "scaled-key":
        keys = randomized_sort_keys(cell, rng=rng, scale=scale)
        order = np.argsort(keys, kind="stable")
    else:
        if scale < 1 or (scale > 1 and rng is None):
            # Delegate the argument validation (raises) to the shared
            # key helper so the error contract matches the seed.
            randomized_sort_keys(cell, rng=rng, scale=scale)
        max_key = (n_cells - 1) if n_cells is not None else None
        order = counting_sort_order(
            cell, rng=rng, shuffle=(scale > 1), scratch=scratch,
            max_key=max_key,
        )

    if n:
        if scratch is not None:
            diff = scratch.array("sort_rankdiff", n, dtype=np.intp)
            np.subtract(order, scratch.arange(n), out=diff)
            np.abs(diff, out=diff)
            rank_shift = float(diff.mean())
        else:
            rank_shift = float(np.abs(order - np.arange(n)).mean())
    else:
        rank_shift = 0.0
    particles.reorder_inplace(order)

    counts = None
    if n_cells is not None:
        # The population is cell-sorted now, so the histogram is a
        # binary search over the n_cells bucket edges -- O(C log N)
        # instead of the O(N) bincount pass.
        edges = np.searchsorted(particles.cell, np.arange(n_cells + 1))
        if counts_out is not None:
            if counts_out.shape != (n_cells,):
                raise ConfigurationError(
                    f"counts_out must have shape ({n_cells},)"
                )
            np.subtract(edges[1:], edges[:-1], out=counts_out)
            counts = counts_out
        else:
            counts = np.diff(edges)
    return SortStepResult(order=order, rank_shift=rank_shift, counts=counts)


# ---------------------------------------------------------------------------
# The incremental (temporal-coherence) kernel
# ---------------------------------------------------------------------------

#: Default moved-fraction ceiling for the O(movers) repair path.  The
#: bench's repair-vs-rebuild sweep (``benchmarks/bench_incremental.py``)
#: shows the uint16 radix rebuild is so cheap on a contiguous host
#: array (~3 ms at N ~= 234k) that repair -- whose merge still pays a
#: handful of O(N) int64 passes regardless of how few rows moved --
#: never beats it at that scale (~9 ms even at 0.5% moved).  At the
#: paper's time step roughly half the population moves every step
#: anyway, so the rebuild path is the expected steady state; the low
#: threshold keeps the repair path effectively dormant on realistic
#: workloads while preserving it (and its path-independence contract)
#: for strongly sub-stepped / near-equilibrium configurations and for
#: row-surgery bookkeeping.
DEFAULT_REBUILD_THRESHOLD = 0.05


@dataclass(frozen=True)
class IncrementalSortResult:
    """Bookkeeping from one :class:`IncrementalSorter` step.

    Attributes
    ----------
    order:
        Canonical permutation view (length ``n``): ``order[slot]`` is
        the particle *row* occupying sorted slot ``slot``.  Slots are
        sorted by ``(cell, row)`` -- cell-contiguous, deterministic.
        The particle columns themselves are **not** physically
        reordered; downstream kernels gather through ``order``.
    counts / offsets:
        Per-cell populations (length ``n_cells``) and their exclusive
        prefix sum (length ``n_cells + 1``): cell ``c`` owns slots
        ``offsets[c]:offsets[c + 1]``.  Views into sorter-owned
        buffers, valid until the next ``update``.
    moved:
        Number of rows whose cell changed since the previous step (or
        whose row was touched by surgery); equals ``n`` after an
        invalidation.
    moved_fraction:
        ``moved / n`` (1.0 when the cached state was invalid).
    rebuilt:
        True when this step ran the full stable-argsort rebuild rather
        than the O(movers) merge repair.
    """

    order: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray
    moved: int
    moved_fraction: float
    rebuilt: bool
    n: int


class IncrementalSorter:
    """Maintain a cell-contiguous particle *order* across steps.

    The temporal-coherence kernel (``kernel="incremental"``): instead of
    re-sorting the whole population every step and physically shuffling
    all nine particle columns, this keeps one :data:`order` permutation
    canonically sorted by ``(cell, row)`` and repairs it.  After motion,
    ``detect`` compares the new cell indices against a cached copy --
    the *movers* are the rows whose cell changed plus any rows touched
    by row surgery (removal backfill, appended arrivals) since the last
    step.  ``update`` then either merge-repairs the order in O(kept +
    movers log movers) or, past :attr:`rebuild_threshold` (or after an
    invalidation), rebuilds it with the narrow-key stable argsort.

    Both paths produce the **identical** canonical order and the sorter
    consumes **no random numbers**, so the maintained order is bitwise
    path-independent: repair versus rebuild versus restore-from-snapshot
    cannot change a trajectory.  Pairing randomness moves downstream
    into :func:`repro.core.pairing.reflection_pairs`, which randomizes
    *pair assignment within each cell* per step instead of randomizing
    storage order -- the same statistical contract as the counting
    kernel's bucket shuffle without ever moving particle data.

    Row surgery is tracked through ``ParticleArrays.order_listener``:
    ``prepare`` binds the sorter to a population by identity and every
    ``remove_inplace`` / ``append_inplace`` / ``append_rows`` on it
    marks the touched rows dirty (wholesale reorderings invalidate).
    Binding to a *different* object (snapshot restore, gather) simply
    invalidates -- the next step pays one rebuild, no persisted state.

    This is a host-performance mode outside the CM-2 cost model; the
    paper-faithful rank-sort analogue remains ``kernel="counting"``.
    """

    def __init__(
        self,
        n_cells: int,
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
    ) -> None:
        if n_cells < 1:
            raise ConfigurationError("n_cells must be positive")
        if not (0.0 <= rebuild_threshold <= 1.0):
            raise ConfigurationError(
                "rebuild_threshold must be within [0, 1]"
            )
        self.n_cells = int(n_cells)
        self.rebuild_threshold = float(rebuild_threshold)
        #: Cumulative full-rebuild count (telemetry: ``sort_rebuilds``).
        self.rebuilds = 0
        self._counts = np.zeros(self.n_cells, dtype=np.int64)
        self._offsets = np.zeros(self.n_cells + 1, dtype=np.int64)
        # Capacity-grown per-row state.  These must persist across
        # steps, so they live here rather than in the population's
        # ping-pong scratch pool (whose buffers are step-transient).
        self._prev_cell = np.empty(0, dtype=np.int64)
        self._dirty = np.empty(0, dtype=bool)
        self._mover = np.empty(0, dtype=bool)
        self._order = np.empty(0, dtype=np.intp)
        self._key16 = np.empty(0, dtype=np.uint16)
        self._valid = False
        self._order_n = 0
        self._particles: Optional[ParticleArrays] = None
        self._moved = 0
        self._moved_fraction = 1.0

    # -- ParticleArrays.order_listener protocol --------------------------

    def on_remove(self, holes: np.ndarray, src: np.ndarray, n_new: int) -> None:
        """Backfill removal: holes received tail survivors -> dirty."""
        if self._valid:
            self._dirty[holes] = True

    def on_append(self, n_before: int, m: int) -> None:
        """Rows ``n_before:n_before + m`` appended -> dirty."""
        if not self._valid:
            return
        self._grow(n_before + m)
        self._dirty[n_before : n_before + m] = True

    def on_invalidate(self) -> None:
        """Wholesale re-ordering: cached order is meaningless now."""
        self._valid = False

    # -- stepping --------------------------------------------------------

    def prepare(self, particles: ParticleArrays) -> None:
        """Bind to ``particles`` (by identity) and size the buffers.

        Binding to a new object -- snapshot restore, a gathered
        population, a fresh simulation -- detaches the old listener,
        attaches to the new population and invalidates, so the next
        ``update`` rebuilds from scratch.  No order state is ever
        persisted or migrated: canonical order + path independence
        make one rebuild the complete recovery story.
        """
        if particles is not self._particles:
            old = self._particles
            if old is not None and old.order_listener is self:
                old.order_listener = None
            self._particles = particles
            particles.order_listener = self
            self._valid = False
        self._grow(particles.n)

    def detect(self, particles: ParticleArrays) -> float:
        """Find the movers; returns the moved fraction.

        Call after the cell-indexing pass (``assign_cells``).  A mover
        is a row whose cell differs from the cached previous cell or
        that was touched by row surgery since the last ``update``.
        """
        self.prepare(particles)
        n = particles.n
        if not self._valid:
            self._moved = n
            self._moved_fraction = 1.0
            return 1.0
        mover = self._mover[:n]
        np.not_equal(particles.cell, self._prev_cell[:n], out=mover)
        np.logical_or(mover, self._dirty[:n], out=mover)
        self._moved = int(np.count_nonzero(mover))
        self._moved_fraction = (self._moved / n) if n else 0.0
        return self._moved_fraction

    def update(self, particles: ParticleArrays) -> IncrementalSortResult:
        """Bring the canonical order up to date; refresh counts/offsets.

        Repairs when the cached order is valid and the moved fraction
        is within :attr:`rebuild_threshold`; rebuilds otherwise.  Both
        paths yield the same ``(cell, row)``-sorted permutation.
        """
        n = particles.n
        cell = particles.cell
        rebuilt = True
        if (
            self._valid
            and n
            and self._moved_fraction <= self.rebuild_threshold
        ):
            rebuilt = not self._repair(n, cell)
        if rebuilt:
            self._rebuild(n, cell)
            self.rebuilds += 1
        self._prev_cell[:n] = cell
        self._dirty[:n] = False
        self._valid = True
        self._order_n = n
        self._counts[:] = np.bincount(cell, minlength=self.n_cells)
        self._offsets[0] = 0
        np.cumsum(self._counts, out=self._offsets[1:])
        return IncrementalSortResult(
            order=self._order[:n],
            counts=self._counts,
            offsets=self._offsets,
            moved=self._moved,
            moved_fraction=self._moved_fraction,
            rebuilt=rebuilt,
            n=n,
        )

    def step(self, particles: ParticleArrays) -> IncrementalSortResult:
        """Convenience: ``detect`` + ``update`` in one call."""
        self.detect(particles)
        return self.update(particles)

    # -- internals -------------------------------------------------------

    def _grow(self, n: int) -> None:
        cap = self._prev_cell.shape[0]
        if cap >= n:
            return
        new_cap = max(n, 2 * cap, 1024)
        for name in ("_prev_cell", "_dirty", "_mover", "_order", "_key16"):
            old = getattr(self, name)
            buf = np.empty(new_cap, dtype=old.dtype)
            buf[: old.shape[0]] = old
            setattr(self, name, buf)

    def _rebuild(self, n: int, cell: np.ndarray) -> None:
        """Full canonical rebuild: stable argsort of the narrow key."""
        if self.n_cells - 1 <= NARROW_KEY_LIMIT:
            key16 = self._key16[:n]
            np.copyto(key16, cell, casting="unsafe")
            self._order[:n] = np.argsort(key16, kind="stable")
        else:
            self._order[:n] = np.argsort(cell, kind="stable")

    def _repair(self, n: int, cell: np.ndarray) -> bool:
        """Merge the sorted movers back into the kept canonical runs.

        The kept rows (present, not movers) are a subsequence of the
        previous canonical order, hence already sorted by ``(cell,
        row)``; the movers are sorted by the same key and the two
        sorted sequences are merged by rank (``searchsorted``), an
        O(kept + movers log movers) scatter.  Composite keys are
        ``cell * n + row`` -- strictly increasing within each sequence
        and globally unique, so the merge has no ties.  Returns False
        (caller rebuilds) if the partition does not account for every
        row -- a defensive guard, not an expected path.
        """
        n_old = self._order_n
        oo = self._order[:n_old]
        mover = self._mover[:n]
        # Slots whose row survived (row < n) and did not move.  The
        # clipped gather keeps stale slot values (>= n after a net
        # shrink) from indexing out of range; they are masked off.
        keep = ~mover[np.minimum(oo, n - 1)] & (oo < n)
        kept_rows = oo[keep]
        mover_rows = np.flatnonzero(mover)
        k, m = kept_rows.shape[0], mover_rows.shape[0]
        if k + m != n:
            return False
        mover_rows = mover_rows[np.argsort(cell[mover_rows], kind="stable")]
        kept_keys = cell[kept_rows] * n + kept_rows
        mover_keys = cell[mover_rows] * n + mover_rows
        pos_k = np.arange(k) + np.searchsorted(mover_keys, kept_keys)
        pos_m = np.arange(m) + np.searchsorted(kept_keys, mover_keys)
        order = self._order[:n]
        order[pos_k] = kept_rows
        order[pos_m] = mover_rows
        return True
