#!/usr/bin/env python
"""No-slip walls (Future Work): boundary layers in the wind tunnel.

"Specifically, the boundary conditions should include no slip adiabatic
and isothermal walls."  This example runs the empty tunnel with all
three wall models and prints the near-wall velocity profile: specular
walls keep full slip (plug flow to the wall), diffuse/adiabatic walls
drag the gas and grow a boundary layer.  The isothermal wall is also
run cold to show wall heat extraction.

Run:
    python examples/noslip_walls.py
"""

import time

from repro import Domain, Freestream, Simulation, SimulationConfig

DOMAIN = Domain(60, 24)
FS = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)
STEPS = (250, 250)


def run(wall_model: str, wall_c_mp: float = None):
    cfg = SimulationConfig(
        domain=DOMAIN, freestream=FS, wedge=None, seed=3
    )
    sim = Simulation(cfg)
    # Swap the wall model in the assembled boundary machinery.
    from repro.core.boundary import WindTunnelBoundaries

    sim.boundaries = WindTunnelBoundaries(
        domain=DOMAIN,
        freestream=FS,
        wedge=None,
        wall_model=wall_model,
        wall_c_mp=wall_c_mp,
    )
    sim.run(STEPS[0])
    sim.run(STEPS[1], sample=True)
    return sim


def main() -> None:
    cases = [
        ("specular", None),
        ("adiabatic", None),
        ("diffuse", FS.c_mp),        # isothermal at freestream T
        ("diffuse", 0.5 * FS.c_mp),  # cold isothermal wall
    ]
    print(f"freestream speed {FS.speed:.3f} cells/step; sampling the "
          f"streamwise velocity profile at x = 40-55\n")
    print(f"{'wall model':>22s} | u(y) / U for y = 0.5, 1.5, 2.5, 6.5, 11.5")
    for model, wall_c in cases:
        t0 = time.time()
        sim = run(model, wall_c)
        u, _, _ = sim.sampler.mean_velocity()
        profile = u[40:55, [0, 1, 2, 6, 11]].mean(axis=0) / FS.speed
        label = model if wall_c is None or wall_c == FS.c_mp else "diffuse(cold)"
        vals = "  ".join(f"{p:5.2f}" for p in profile)
        print(f"{label:>22s} | {vals}   ({time.time()-t0:.0f} s)")
    print(
        "\nReadings: specular walls keep u ~ U down to the wall (full "
        "slip);\nno-slip walls drag the first cells toward zero and the "
        "deficit\ndiffuses outward -- a developing boundary layer."
    )


if __name__ == "__main__":
    main()
