"""Velocity-distribution-function probes.

Macroscopic fields cannot distinguish a true kinetic shock from a
smeared fluid one; the *velocity distribution* inside the front can.
Kinetic theory (Mott-Smith) describes a shock interior as a bimodal
mixture of the upstream and downstream Maxwellians -- exactly what a
particle method resolves for free and what no Navier-Stokes solver can.

:class:`VDFProbe` collects the velocities of every particle found inside
a spatial window at each sampled step, and exposes the histogram and
shape diagnostics (mean, variance, the bimodal-mixture variance test)
that the tests and examples use to exhibit the kinetic structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError

_COMPONENTS = ("u", "v", "w")


class VDFProbe:
    """Accumulates a velocity component's samples inside a box.

    Parameters
    ----------
    x_range, y_range:
        The spatial window (cell widths).
    component:
        Which translational component to record ("u", "v" or "w").
    max_samples:
        Memory guard; sampling stops silently once reached (the
        histogram is converged long before).
    """

    def __init__(
        self,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        component: str = "u",
        max_samples: int = 2_000_000,
    ) -> None:
        if component not in _COMPONENTS:
            raise ConfigurationError(
                f"component must be one of {_COMPONENTS}"
            )
        if x_range[1] <= x_range[0] or y_range[1] <= y_range[0]:
            raise ConfigurationError("degenerate probe window")
        if max_samples < 100:
            raise ConfigurationError("max_samples too small to be useful")
        self.x_range = x_range
        self.y_range = y_range
        self.component = component
        self.max_samples = max_samples
        self._chunks: List[np.ndarray] = []
        self._count = 0

    # -- accumulation -----------------------------------------------------

    def sample(self, particles: ParticleArrays) -> int:
        """Record the window's particles from one snapshot."""
        if self._count >= self.max_samples:
            return 0
        mask = (
            (particles.x >= self.x_range[0])
            & (particles.x < self.x_range[1])
            & (particles.y >= self.y_range[0])
            & (particles.y < self.y_range[1])
        )
        vals = getattr(particles, self.component)[mask]
        if vals.size:
            self._chunks.append(vals.copy())
            self._count += vals.size
        return int(vals.size)

    # -- results ------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._count

    def values(self) -> np.ndarray:
        """All collected samples as one array."""
        if not self._chunks:
            raise ConfigurationError("probe collected no samples")
        return np.concatenate(self._chunks)

    def histogram(self, bins: int = 60, range_: Optional[tuple] = None):
        """(counts, edges) of the collected component."""
        return np.histogram(self.values(), bins=bins, range=range_)

    def moments(self) -> dict:
        """Mean, variance, skewness and excess kurtosis of the VDF."""
        x = self.values()
        mu = x.mean()
        c = x - mu
        m2 = (c**2).mean()
        if m2 == 0:
            raise ConfigurationError("degenerate (zero-variance) VDF")
        m3 = (c**3).mean()
        m4 = (c**4).mean()
        return {
            "mean": float(mu),
            "variance": float(m2),
            "skewness": float(m3 / m2**1.5),
            "excess_kurtosis": float(m4 / m2**2 - 3.0),
        }

    def mixture_excess_variance(
        self, equilibrium_variance: float
    ) -> float:
        """Bimodality signature: variance above the local equilibrium.

        A two-stream mixture of Maxwellians with bulk speeds U1 != U2
        has total variance  sigma_eq^2 + w(1-w)(U1-U2)^2 -- strictly
        larger than any single equilibrium at the same temperature.
        Returns ``variance / equilibrium_variance - 1``: ~0 for an
        equilibrium gas, significantly positive inside a kinetic shock.
        """
        if equilibrium_variance <= 0:
            raise ConfigurationError("equilibrium variance must be positive")
        return float(self.moments()["variance"] / equilibrium_variance - 1.0)


def maxwellian_reference(
    c_mp: float, drift: float, samples: np.ndarray
) -> np.ndarray:
    """Maxwellian pdf evaluated on sample points (for overlays)."""
    sigma2 = c_mp**2 / 2.0
    return np.exp(-((samples - drift) ** 2) / (2 * sigma2)) / np.sqrt(
        2 * np.pi * sigma2
    )
