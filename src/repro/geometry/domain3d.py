"""Three-dimensional wind-tunnel domain (the Future Work extension).

"The code should also be extended to 3D."  The 3-D domain is the 2-D
tunnel extruded ``nz`` cells in z with a periodic span: the wedge
becomes an infinite prism, which makes the 2-D solution the exact
reference for the 3-D run (span-collapsed fields must match) -- the
natural validation for the added dimension.

The paper's processor-mapping discussion already anticipates 3-D: a
cells-to-processors mapping would need 26 serialized neighbour
exchanges; the particles-to-processors mapping is untouched by the
extra dimension (the cell index just gets a third digit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.domain import Domain


@dataclass(frozen=True)
class Domain3D:
    """An ``nx x ny x nz`` tunnel of unit cubes, periodic in z.

    Cell ``(i, j, k)`` flattens to ``(i * ny + j) * nz + k``, keeping
    the x-y part of the index compatible with the 2-D layout so
    span-collapsing is a division.
    """

    nx: int = 98
    ny: int = 64
    nz: int = 8

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise GeometryError("domain must be at least 2x2 in x, y")
        if self.nz < 1:
            raise GeometryError("nz must be >= 1")

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    @property
    def width(self) -> float:
        return float(self.nx)

    @property
    def height(self) -> float:
        return float(self.ny)

    @property
    def depth(self) -> float:
        return float(self.nz)

    def xy_domain(self) -> Domain:
        """The x-y footprint as a 2-D domain (for shared geometry)."""
        return Domain(self.nx, self.ny)

    # -- indexing --------------------------------------------------------

    def cell_index(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Flattened 3-D cell index of each point (clipped inside)."""
        i = np.clip(np.floor(x).astype(np.int64), 0, self.nx - 1)
        j = np.clip(np.floor(y).astype(np.int64), 0, self.ny - 1)
        k = np.clip(np.floor(z).astype(np.int64), 0, self.nz - 1)
        return (i * self.ny + j) * self.nz + k

    def collapse_to_xy(self, cell3d: np.ndarray) -> np.ndarray:
        """Span-collapse a 3-D cell index to the 2-D (x, y) index."""
        return np.asarray(cell3d) // self.nz

    def coords_from_cell_index(self, idx: np.ndarray) -> tuple:
        """Invert the flattened index back to (i, j, k)."""
        idx = np.asarray(idx)
        k = idx % self.nz
        ij = idx // self.nz
        return ij // self.ny, ij % self.ny, k

    # -- predicates ---------------------------------------------------------

    def exited_downstream(self, x: np.ndarray) -> np.ndarray:
        """Mask of particles past the downstream sink plane."""
        return np.asarray(x) >= self.nx

    def wrap_z(self, z: np.ndarray) -> np.ndarray:
        """Apply the periodic span in place-compatible fashion."""
        return np.mod(z, self.depth)
