"""Unit tests for the no-slip wall models (the paper's Future Work)."""

import numpy as np
import pytest

from repro.core.boundary import WALL_MODELS, WindTunnelBoundaries
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.reflect import reflect_adiabatic_axis
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)


def crossing_population(rng, fs, n=4000, domain=None):
    domain = domain or Domain(30, 20)
    pop = ParticleArrays.from_freestream(
        rng, n, fs, (1, domain.width - 1), (1, domain.height - 1)
    )
    # Half the population has just crossed the floor.
    pop.y[: n // 2] = -0.2
    pop.v[: n // 2] = -0.3
    return pop


class TestAdiabaticKernel:
    def test_speed_preserved(self, rng):
        n = 2000
        pos = np.full(n, -0.1)
        u = rng.normal(0.4, 0.2, n)
        v = np.full(n, -0.3)
        w = rng.normal(0, 0.1, n)
        speed0 = np.sqrt(u**2 + v**2 + w**2)
        new_pos, (u2, v2, w2), crossed = reflect_adiabatic_axis(
            rng, pos, (u, v, w), wall=0.0, side="above", normal_axis=1
        )
        assert crossed.all()
        assert np.allclose(np.sqrt(u2**2 + v2**2 + w2**2), speed0)
        assert np.all(v2 >= 0.0)
        assert np.all(new_pos >= 0.0)

    def test_no_slip_tangential_mean(self, rng):
        # Full accommodation: outgoing tangential mean is zero even for
        # a strongly drifting incident stream.
        n = 40_000
        pos = np.full(n, -0.1)
        u = np.full(n, 0.5)
        v = np.full(n, -0.3)
        w = np.zeros(n)
        _, (u2, _v2, w2), _ = reflect_adiabatic_axis(
            rng, pos, (u, v, w), wall=0.0, side="above", normal_axis=1
        )
        assert abs(u2.mean()) < 0.01
        assert abs(w2.mean()) < 0.01

    def test_cosine_flux_distribution(self, rng):
        # cos(theta) ~ sqrt(U): mean normal cosine is 2/3.
        n = 100_000
        pos = np.full(n, -0.1)
        u = np.zeros(n)
        v = np.full(n, -1.0)
        w = np.zeros(n)
        _, (u2, v2, w2), _ = reflect_adiabatic_axis(
            rng, pos, (u, v, w), wall=0.0, side="above", normal_axis=1
        )
        cos_theta = v2 / np.sqrt(u2**2 + v2**2 + w2**2)
        assert cos_theta.mean() == pytest.approx(2.0 / 3.0, abs=0.01)

    def test_validation(self, rng):
        z = np.zeros(1)
        with pytest.raises(ConfigurationError):
            reflect_adiabatic_axis(rng, z, (z, z, z), 0.0, "sideways", 1)
        with pytest.raises(ConfigurationError):
            reflect_adiabatic_axis(rng, z, (z, z, z), 0.0, "above", 7)


class TestTunnelWallModels:
    def test_model_validation(self, fs):
        with pytest.raises(ConfigurationError):
            WindTunnelBoundaries(Domain(30, 20), fs, wall_model="slippery")
        with pytest.raises(ConfigurationError):
            WindTunnelBoundaries(Domain(30, 20), fs, wall_c_mp=0.0)

    @pytest.mark.parametrize("model", WALL_MODELS)
    def test_all_models_expel_particles(self, model, fs, rng):
        b = WindTunnelBoundaries(Domain(30, 20), fs, wall_model=model)
        pop = crossing_population(rng, fs)
        pop, stats = b.apply_rebuilding(pop, None, rng)
        assert pop.y.min() >= 0.0
        assert pop.y.max() <= 20.0

    def test_specular_conserves_wall_energy(self, fs, rng):
        b = WindTunnelBoundaries(Domain(30, 20), fs, wall_model="specular")
        pop = crossing_population(rng, fs)
        crossed = pop.y < 0
        e0 = (pop.u[crossed] ** 2 + pop.v[crossed] ** 2 + pop.w[crossed] ** 2).sum()
        ids0 = pop.n
        pop, _ = b.apply_rebuilding(pop, None, rng)
        # No removals expected in this setup: same population size.
        e1 = (pop.u[:ids0 // 2] ** 2 + pop.v[:ids0 // 2] ** 2 + pop.w[:ids0 // 2] ** 2).sum()
        assert e1 == pytest.approx(e0, rel=1e-12)

    def test_adiabatic_conserves_wall_energy_but_scrambles(self, fs, rng):
        b = WindTunnelBoundaries(Domain(30, 20), fs, wall_model="adiabatic")
        pop = crossing_population(rng, fs)
        n_half = pop.n // 2
        e0 = (pop.u[:n_half] ** 2 + pop.v[:n_half] ** 2 + pop.w[:n_half] ** 2).sum()
        u_before = pop.u[:n_half].copy()
        pop, _ = b.apply_rebuilding(pop, None, rng)
        e1 = (pop.u[:n_half] ** 2 + pop.v[:n_half] ** 2 + pop.w[:n_half] ** 2).sum()
        assert e1 == pytest.approx(e0, rel=1e-12)
        # But the directions are fully accommodated (no slip).
        assert abs(pop.u[:n_half].mean()) < 0.1 * abs(u_before.mean())

    def test_diffuse_thermalizes_to_wall_temperature(self, fs, rng):
        cold_wall = 0.05
        b = WindTunnelBoundaries(
            Domain(30, 20), fs, wall_model="diffuse", wall_c_mp=cold_wall
        )
        pop = crossing_population(rng, fs, n=40_000)
        n_half = pop.n // 2
        pop, _ = b.apply_rebuilding(pop, None, rng)
        # Tangential variance of the re-emitted half matches the wall.
        var = pop.u[:n_half].var()
        assert var == pytest.approx(cold_wall**2 / 2, rel=0.05)

    def test_maxwell_accommodation_zero_is_specular(self, fs, rng):
        b_m = WindTunnelBoundaries(
            Domain(30, 20), fs, wall_model="maxwell", accommodation=0.0
        )
        pop = crossing_population(rng, fs, n=2000)
        y0 = pop.y.copy()
        v0 = pop.v.copy()
        pop, _ = b_m.apply_rebuilding(pop, None, rng)
        crossed = y0 < 0
        assert np.allclose(pop.y[: crossed.sum()], -y0[crossed])
        assert np.allclose(pop.v[: crossed.sum()], -v0[crossed])

    def test_maxwell_accommodation_one_is_diffuse(self, fs, rng):
        b = WindTunnelBoundaries(
            Domain(30, 20), fs, wall_model="maxwell", accommodation=1.0,
            wall_c_mp=0.05,
        )
        pop = crossing_population(rng, fs, n=40_000)
        n_half = pop.n // 2
        pop, _ = b.apply_rebuilding(pop, None, rng)
        assert pop.u[:n_half].var() == pytest.approx(0.05**2 / 2, rel=0.05)

    def test_maxwell_partial_accommodation_blends(self, fs, rng):
        # Half accommodation: outgoing tangential mean halfway between
        # the incident drift (specular keeps it) and zero (diffuse).
        b = WindTunnelBoundaries(
            Domain(30, 20), fs, wall_model="maxwell", accommodation=0.5
        )
        pop = crossing_population(rng, fs, n=40_000)
        n_half = pop.n // 2
        drift0 = pop.u[:n_half].mean()
        pop, _ = b.apply_rebuilding(pop, None, rng)
        assert pop.u[:n_half].mean() == pytest.approx(0.5 * drift0, rel=0.1)

    def test_accommodation_validated(self, fs):
        with pytest.raises(ConfigurationError):
            WindTunnelBoundaries(
                Domain(30, 20), fs, wall_model="maxwell", accommodation=1.5
            )

    def test_diffuse_wall_cools_a_hot_gas(self, fs, rng):
        # Energy is NOT conserved at an isothermal wall: a hot gas
        # hitting a cold wall loses energy.
        cold_wall = 0.02
        b = WindTunnelBoundaries(
            Domain(30, 20), fs, wall_model="diffuse", wall_c_mp=cold_wall
        )
        pop = crossing_population(rng, fs, n=10_000)
        e0 = pop.total_energy()
        pop, _ = b.apply_rebuilding(pop, None, rng)
        assert pop.total_energy() < e0
