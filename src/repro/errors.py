"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Raised, for example, when a wedge does not fit inside the wind
    tunnel, when the freestream collision probability exceeds the
    validity bound of the selection rule, or when a fixed-point value
    overflows the Q8.23 format.
    """


class FixedPointOverflowError(ReproError):
    """A fixed-point operation overflowed the 32-bit word."""


class MachineError(ReproError):
    """An invalid operation on the Connection Machine emulation substrate.

    Raised for mismatched field lengths, sends outside the virtual
    processor set, or exceeding per-processor memory.
    """


class GeometryError(ConfigurationError):
    """Invalid geometric configuration (wedge outside domain, etc.)."""
