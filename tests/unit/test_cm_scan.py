"""Unit tests for the scan primitives (plain and segmented)."""

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.cm.scan import (
    copy_scan,
    max_scan,
    min_scan,
    plus_scan,
    segment_counts,
    segmented_copy_scan,
    segmented_max_scan,
    segmented_plus_scan,
)
from repro.cm.timing import CostLedger, CostModel
from repro.errors import MachineError


class TestPlainScans:
    def test_plus_scan_inclusive(self):
        v = np.array([1, 2, 3, 4])
        assert plus_scan(v).tolist() == [1, 3, 6, 10]

    def test_plus_scan_exclusive(self):
        v = np.array([1, 2, 3, 4])
        assert plus_scan(v, inclusive=False).tolist() == [0, 1, 3, 6]

    def test_max_scan(self):
        v = np.array([3, 1, 4, 1, 5])
        assert max_scan(v).tolist() == [3, 3, 4, 4, 5]

    def test_min_scan(self):
        v = np.array([3, 1, 4, 1, 5])
        assert min_scan(v).tolist() == [3, 1, 1, 1, 1]

    def test_copy_scan(self):
        assert copy_scan(np.array([7, 1, 2])).tolist() == [7, 7, 7]

    def test_empty_input(self):
        assert plus_scan(np.array([], dtype=np.int64)).size == 0

    def test_scan_charges_cost(self):
        geom = CM2(n_processors=4).geometry(8)
        ledger = CostLedger()
        cost = CostModel(geom, ledger)
        with ledger.phase("selection"):
            plus_scan(np.arange(8), cost=cost)
        assert ledger.phase_total("selection") > 0


class TestSegmentedScans:
    def test_segmented_plus(self):
        v = np.array([1, 1, 1, 1, 1, 1])
        heads = np.array([1, 0, 0, 1, 0, 0], dtype=bool)
        assert segmented_plus_scan(v, heads).tolist() == [1, 2, 3, 1, 2, 3]

    def test_segmented_plus_exclusive(self):
        v = np.array([1, 2, 3, 4])
        heads = np.array([1, 0, 1, 0], dtype=bool)
        assert segmented_plus_scan(v, heads, inclusive=False).tolist() == [
            0,
            1,
            0,
            3,
        ]

    def test_segmented_plus_matches_per_segment_cumsum(self, rng):
        v = rng.integers(-5, 6, size=200)
        heads = np.zeros(200, dtype=bool)
        heads[0] = True
        heads[rng.choice(np.arange(1, 200), size=20, replace=False)] = True
        got = segmented_plus_scan(v, heads)
        # Reference: loop per segment.
        expected = np.empty_like(v)
        seg_start = 0
        for i in range(200):
            if heads[i]:
                seg_start = i
            expected[i] = v[seg_start : i + 1].sum()
        assert np.array_equal(got, expected)

    def test_segmented_copy(self):
        v = np.array([9, 1, 2, 7, 3])
        heads = np.array([1, 0, 0, 1, 0], dtype=bool)
        assert segmented_copy_scan(v, heads).tolist() == [9, 9, 9, 7, 7]

    def test_segmented_max_integer(self):
        v = np.array([1, 5, 2, 7, 3, 9])
        heads = np.array([1, 0, 0, 1, 0, 0], dtype=bool)
        assert segmented_max_scan(v, heads).tolist() == [1, 5, 5, 7, 7, 9]

    def test_segmented_max_float(self):
        v = np.array([1.5, 0.5, 2.5, -1.0])
        heads = np.array([1, 0, 1, 0], dtype=bool)
        out = segmented_max_scan(v, heads)
        assert out.tolist() == [1.5, 1.5, 2.5, 2.5]

    def test_first_head_required(self):
        v = np.array([1, 2])
        heads = np.array([0, 1], dtype=bool)
        with pytest.raises(MachineError):
            segmented_plus_scan(v, heads)

    def test_shape_mismatch(self):
        with pytest.raises(MachineError):
            segmented_plus_scan(np.arange(3), np.array([True, False]))


class TestSegmentCounts:
    def test_counts_broadcast_to_members(self):
        heads = np.array([1, 0, 0, 1, 1, 0], dtype=bool)
        assert segment_counts(heads).tolist() == [3, 3, 3, 1, 2, 2]

    def test_single_segment(self):
        heads = np.array([1, 0, 0, 0], dtype=bool)
        assert segment_counts(heads).tolist() == [4, 4, 4, 4]

    def test_empty(self):
        assert segment_counts(np.array([], dtype=bool)).size == 0

    def test_cell_density_usage(self, rng):
        # The paper's use: particles sorted by cell; the per-particle
        # count equals its cell's population.
        cells = np.sort(rng.integers(0, 10, size=100))
        heads = np.empty(100, dtype=bool)
        heads[0] = True
        heads[1:] = cells[1:] != cells[:-1]
        counts = segment_counts(heads)
        pops = np.bincount(cells, minlength=10)
        assert np.array_equal(counts, pops[cells])
