"""The service HTTP API: stdlib ``http.server`` over the orchestrator.

Same no-dependency pattern as the telemetry
:class:`~repro.telemetry.exporters.MetricsServer`: a
``ThreadingHTTPServer`` bound to ``127.0.0.1`` (``port=0`` for an
ephemeral port in tests), handler threads calling into the
(lock-protected) orchestrator.  Routes:

==============================  =========================================
``POST /jobs``                  submit; 202 accepted, 200 cached,
                                429 backpressure, 400 bad config,
                                503 shutting down
``GET /jobs``                   list all jobs
``GET /jobs/<id>``              one job's status (404 unknown)
``POST /jobs/<id>/cancel``      cancel (409 already terminal)
``GET /jobs/<id>/result``       the DONE artifact (409 not done)
``GET /metrics``                Prometheus text exposition
``GET /healthz``                liveness + queue depth
==============================  =========================================

Every error response is JSON ``{"error": <type>, "detail": ...,
"context": {...}}`` so clients get the same typed taxonomy the Python
API raises (:class:`~repro.errors.BackpressureError` -> 429, etc.).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ReproError,
    ServiceError,
)
from repro.service.orchestrator import Orchestrator

#: Typed error -> HTTP status.  Order matters: subclasses first.
_STATUS = (
    (BackpressureError, 429),
    (JobNotFoundError, 404),
    (JobStateError, 409),
    (ConfigurationError, 400),
    (ServiceError, 503),
)


def _status_for(exc: ReproError) -> int:
    for cls, status in _STATUS:
        if isinstance(exc, cls):
            return status
    return 500


class ServiceAPI:
    """Background HTTP front end for an :class:`Orchestrator`."""

    def __init__(self, orchestrator: Orchestrator, port: int = 0) -> None:
        self.orchestrator = orchestrator
        api = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                api._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 (stdlib API)
                api._dispatch(self, "POST")

            def log_message(self, *args) -> None:
                """Silence per-request stderr logging."""

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-api",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    # -- request handling ------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str):
        try:
            status, body = self._route(handler, method)
        except ReproError as exc:
            status = _status_for(exc)
            body = {
                "error": type(exc).__name__,
                "detail": str(exc),
                "context": getattr(exc, "context", {}),
            }
        except Exception as exc:  # noqa: BLE001 - fail as a response
            status = 500
            body = {"error": type(exc).__name__, "detail": str(exc)}
        handler.send_response(status)
        if isinstance(body, dict) and "_raw" in body:
            ctype = body.get("_content_type", "text/plain; charset=utf-8")
            blob = body["_raw"].encode()
        else:
            ctype = "application/json"
            blob = json.dumps(body).encode()
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(blob)))
        handler.end_headers()
        handler.wfile.write(blob)

    def _route(self, handler, method: str):
        path = handler.path.rstrip("/") or "/"
        orch = self.orchestrator
        if method == "GET":
            if path == "/healthz":
                health = orch.health()
                return (200 if health["ok"] else 503), health
            if path == "/metrics":
                return 200, {
                    "_content_type": (
                        "text/plain; version=0.0.4; charset=utf-8"
                    ),
                    "_raw": orch.registry.to_prometheus(),
                }
            if path == "/jobs":
                return 200, {"jobs": orch.list_jobs()}
            if path.startswith("/jobs/") and path.endswith("/result"):
                job_id = path[len("/jobs/"):-len("/result")]
                return 200, orch.result(job_id)
            if path.startswith("/jobs/"):
                return 200, orch.status(path[len("/jobs/"):])
        elif method == "POST":
            if path == "/jobs":
                req = self._read_json(handler)
                out = orch.submit(
                    scenario=req.get("scenario"),
                    spec=req.get("spec"),
                    seed=req.get("seed"),
                    overrides=req.get("overrides"),
                    deadline=req.get("deadline"),
                    max_retries=req.get("max_retries"),
                    faults=req.get("faults"),
                )
                return (200 if out["cached"] else 202), out
            if path.startswith("/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/jobs/"):-len("/cancel")]
                return 200, orch.cancel(job_id)
        raise JobNotFoundError("no such route", path=path, method=method)

    @staticmethod
    def _read_json(handler) -> dict:
        length = int(handler.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    def close(self) -> None:
        """Shut the HTTP server down and join its thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
