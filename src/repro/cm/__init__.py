"""Connection Machine (CM-2) emulation substrate.

The paper's implementation targets a Thinking Machines CM-2: up to 64k
bit-serial processors (32k used in the paper), a hypercube router for
general communication, hardware scans, and *virtual processors* -- each
physical processor time-slices over ``VPR = n_virtual / n_physical``
virtual processors, which is how a 32k-processor machine runs 512k
particles with one particle per virtual processor.

This subpackage provides:

* :mod:`~repro.cm.machine` -- the machine description and the
  virtual-processor geometry (block mapping of VPs to physical
  processors);
* :mod:`~repro.cm.field` -- per-VP data fields with context (active)
  flags and cost-charged elementwise operations;
* :mod:`~repro.cm.scan` -- plus/max/copy scans and their segmented
  variants (Hillis & Steele data-parallel algorithms);
* :mod:`~repro.cm.sort` -- stable key sort with a router cost model;
* :mod:`~repro.cm.router` -- general permutation sends, separating
  on-chip from off-chip traffic (the mechanism behind the paper's
  Figure 7);
* :mod:`~repro.cm.timing` -- the cost ledger and the calibrated
  cycles-to-microseconds conversion;
* :mod:`~repro.cm.mapping` -- the cells-to-processors versus
  particles-to-processors load-balance study from the paper's
  "Data Structure - Processor Mapping" section.

The *physics* of the simulation never depends on this subpackage's cost
accounting; the accounting only reproduces the paper's performance
figures (Fig. 7 and the phase-breakdown table).
"""

from repro.cm.machine import CM2, VPGeometry
from repro.cm.timing import CostLedger, CM2TimingModel, PhaseBreakdown
from repro.cm.field import Field

__all__ = [
    "CM2",
    "VPGeometry",
    "Field",
    "CostLedger",
    "CM2TimingModel",
    "PhaseBreakdown",
]
