"""ABL1 -- ablation: the randomized sort keys.

The design choice under test: "it is important that candidate partners
change between time steps otherwise the situation arises where the same
partners collide repeatedly leading to correlated velocity
distributions.  To obtain this additional randomization, the cell index
of a particle is scaled by some constant factor and, before sorting, a
random number less than the scale factor is added to it."

The ablation disables the scaling (sort_scale = 1) and measures (a) how
often consecutive steps re-pair the same partners and (b) the resulting
velocity-distribution quality in a collision-dominated bath.
"""

import numpy as np

from repro.analysis.report import ExperimentRecord
from repro.core.cells import cell_populations
from repro.core.collision import collide_pairs
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.selection import select_collisions
from repro.core.sortstep import sort_by_cell
from repro.physics.distributions import excess_kurtosis
from repro.physics.freestream import Freestream
from repro.physics.molecules import maxwell_molecule
from repro.rng import make_rng


def _bath(rng, n=4000, n_cells=16):
    fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=2.0, density=n / n_cells)
    pop = ParticleArrays.from_freestream(
        rng, n, fs, (0, 1), (0, 1), rectangular=True
    )
    pop.cell = rng.integers(0, n_cells, size=n).astype(np.int64)
    return pop, fs


def _run(sort_scale: int, steps: int, seed: int = 5):
    """Collision-only loop; returns (repeat fraction, kurtosis)."""
    rng = make_rng(seed)
    pop, fs = _bath(rng)
    model = maxwell_molecule()
    tags = np.arange(pop.n)
    prev_pairs = None
    repeats = []
    # Attach a persistent identity to follow particles through sorts.
    identity = tags.copy()
    for _ in range(steps):
        order_res = sort_by_cell(pop, rng=rng, scale=sort_scale)
        identity = identity[order_res.order]
        pairs = even_odd_pairs(pop.cell)
        a, b = pairs.candidate_indices()
        pair_ids = set(
            map(tuple, np.sort(np.column_stack((identity[a], identity[b])), axis=1))
        )
        if prev_pairs is not None and pair_ids:
            repeats.append(len(pair_ids & prev_pairs) / len(pair_ids))
        prev_pairs = pair_ids
        counts = cell_populations(pop.cell, 16)
        sel = select_collisions(pop, pairs, fs, model, counts, rng=rng)
        collide_pairs(
            pop, pairs.first[sel.accept], pairs.second[sel.accept], rng=rng
        )
    k = float(np.mean(excess_kurtosis(np.column_stack((pop.u, pop.v, pop.w)))))
    return float(np.mean(repeats)), k


def test_abl_sort_randomization(benchmark, emit):
    repeat_rand, kurt_rand = _run(sort_scale=8, steps=70)
    repeat_frozen, kurt_frozen = benchmark.pedantic(
        _run, args=(1, 70), rounds=1, iterations=1
    )

    rec = ExperimentRecord("ABL1", "sort-key randomization ablation")
    rec.add(
        "repeated-partner fraction, randomized",
        None,
        repeat_rand,
        note="scale = 8 (the paper's mixing)",
    )
    rec.add(
        "repeated-partner fraction, frozen sort",
        None,
        repeat_frozen,
        note="scale = 1: same partners collide repeatedly",
    )
    rec.add(
        "repeat suppression factor",
        None,
        repeat_frozen / max(repeat_rand, 1e-9),
    )
    rec.add("final kurtosis, randomized", 0.0, kurt_rand, rel_tol=0.15)
    rec.add(
        "final kurtosis, frozen sort",
        None,
        kurt_frozen,
        note="correlated partners slow/skew the relaxation",
    )
    emit(rec)

    # The paper's rationale, quantified: frozen sorts re-pair the same
    # partners overwhelmingly often; the randomized sort rarely does.
    assert repeat_frozen > 0.5
    assert repeat_rand < 0.25
