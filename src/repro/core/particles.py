"""Particle state: structure-of-arrays, one particle per virtual processor.

The paper distinguishes the **physical state** of a particle -- position
``(x, y)``, translational velocity ``(u, v, w)`` and rotational velocity
``(r1, r2)``, "in two dimensions this representation requires seven
distinct values" -- from the **computational state**, which adds the
cell index and a five-element permutation vector used by the collision
routine.

The container is a structure of arrays (SoA), the layout both the CM's
per-processor fields and NumPy vectorization want.  All methods that
grow/shrink the population return (or build) new arrays; per-step
kernels mutate columns in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.distributions import sample_maxwellian, sample_rectangular
from repro.physics.freestream import Freestream
from repro.rng import random_permutation_table

#: Column names of the SoA container, in reorder/copy order.
COLUMN_NAMES = ("x", "y", "u", "v", "w", "rot", "perm", "cell", "z")

#: Scalar float64 columns carried by a migrating particle, in packing
#: order; the ``rot`` components follow them in the same float buffer
#: and the int8 ``perm`` row travels in a sibling buffer.  ``cell`` is
#: deliberately absent: the receiving shard re-derives it in its own
#: cell-indexing pass.
MIGRATION_FLOAT_COLUMNS = ("x", "y", "u", "v", "w", "z")


def migration_float_width(rotational_dof: int) -> int:
    """Columns of the float migration buffer for one molecule model."""
    return len(MIGRATION_FLOAT_COLUMNS) + rotational_dof


class ScratchBuffers:
    """Named, capacity-managed reusable temporaries for the step loop.

    Steady-state stepping must not heap-allocate O(N) arrays: the hot
    kernels (sort keys, shuffle permutations, acceptance draws) instead
    borrow buffers from this pool.  A buffer is identified by name and
    grows monotonically with ~30% slack, so after the start-up transient
    every request is satisfied by a view of an existing allocation.
    """

    def __init__(self, slack: float = 0.3, min_capacity: int = 64) -> None:
        if slack < 0.0:
            raise ConfigurationError("slack must be non-negative")
        self._slack = slack
        self._min_capacity = min_capacity
        self._arrays: Dict[str, np.ndarray] = {}

    def _capacity(self, n: int) -> int:
        return max(int(n * (1.0 + self._slack)) + 1, self._min_capacity)

    def array(
        self, name: str, n: int, dtype=np.float64, width: Optional[int] = None
    ) -> np.ndarray:
        """A length-``n`` scratch view (2-D ``(n, width)`` if given).

        Contents are unspecified; callers must overwrite fully.  The
        same name always maps to the same backing allocation, so two
        live uses of one name alias each other -- use distinct names.
        """
        buf = self._arrays.get(name)
        if (
            buf is None
            or buf.shape[0] < n
            or buf.dtype != np.dtype(dtype)
            or (width is not None and (buf.ndim != 2 or buf.shape[1] != width))
            or (width is None and buf.ndim != 1)
        ):
            shape = (self._capacity(n),) if width is None else (
                self._capacity(n), width
            )
            buf = np.empty(shape, dtype=dtype)
            self._arrays[name] = buf
        return buf[:n]

    def permutation(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """A fresh uniform random permutation of ``0..n-1``, reusable.

        Maintains one persistent buffer, reset to identity from a
        cached ``arange`` and Fisher-Yates shuffled in place on every
        call -- no allocation, and (unlike re-shuffling the previous
        permutation) the result is a pure function of the rng state, so
        checkpoint/restore continuations stay bitwise reproducible.
        """
        idx = self.array("__perm", n, dtype=np.intp)
        idx[:] = self.arange(n)
        rng.shuffle(idx)
        return idx

    def arange(self, n: int) -> np.ndarray:
        """A read-only ``arange(n)`` view (shared; do not modify)."""
        base = self._arrays.get("__arange")
        if base is None or base.shape[0] < n:
            base = np.arange(self._capacity(n), dtype=np.intp)
            self._arrays["__arange"] = base
        return base[:n]


@dataclass
class ParticleArrays:
    """SoA particle population.

    Attributes
    ----------
    x, y:
        Positions, cell widths.  float64 (the CM engine mirrors state in
        fixed point and round-trips through these columns).
    u, v, w:
        Translational velocity components, cell widths / step.  The z
        component ``w`` exists even in 2-D (three translational degrees
        of freedom).
    rot:
        ``(n, rotational_dof)`` rotational velocity components
        (eq. (9): E_rot = 1/2 m r.r).
    perm:
        ``(n, 3 + rotational_dof)`` int8 permutation vectors (the
        computational state; each row is a permutation of 0..k-1).
    cell:
        int64 flattened cell index (computational state; refreshed each
        step after motion).
    z:
        Optional z position for the 3-D extension (Future Work); in the
        2-D configuration it is a zero-filled column that the kernels
        ignore.
    """

    x: np.ndarray
    y: np.ndarray
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    rot: np.ndarray
    perm: np.ndarray
    cell: np.ndarray
    z: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.z is None:
            self.z = np.zeros_like(self.x)
        # Ping-pong backing store (None until enable_scratch()).
        self._front: Optional[Dict[str, np.ndarray]] = None
        self._back: Optional[Dict[str, np.ndarray]] = None
        self.scratch: Optional[ScratchBuffers] = None
        # True when the backing buffers are caller-owned (shared-memory
        # shard segments): capacity is then a hard ceiling, never
        # silently replaced by fresh heap arrays.
        self._fixed_capacity: bool = False
        #: Row-surgery listener (the incremental sort kernel).  When
        #: set, every operation that changes which particle occupies
        #: which row notifies it: ``on_remove(holes, src, n_new)`` for
        #: backfill removal, ``on_append(n_before, m)`` for appended
        #: rows, ``on_invalidate()`` for wholesale re-orderings.  The
        #: listener is identity-bound to *this* object; populations
        #: built by select/concatenate start with no listener.
        self.order_listener = None

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls, rotational_dof: int = 2) -> "ParticleArrays":
        """A zero-particle population (e.g. a drained reservoir)."""
        k = 3 + rotational_dof
        return cls(
            x=np.empty(0),
            y=np.empty(0),
            u=np.empty(0),
            v=np.empty(0),
            w=np.empty(0),
            rot=np.empty((0, rotational_dof)),
            perm=np.empty((0, k), dtype=np.int8),
            cell=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_freestream(
        cls,
        rng: np.random.Generator,
        n: int,
        freestream: Freestream,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        rotational_dof: int = 2,
        rectangular: bool = False,
    ) -> "ParticleArrays":
        """Seed ``n`` particles uniformly in a box at freestream state.

        ``rectangular=True`` uses the cheap uniform velocity sampler
        (reservoir style); otherwise proper Maxwellian sampling.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if x_range[1] < x_range[0] or y_range[1] < y_range[0]:
            raise ConfigurationError("invalid seeding box")
        sampler = sample_rectangular if rectangular else sample_maxwellian
        vel = sampler(rng, n, freestream.c_mp, drift=freestream.drift_vector())
        rot = sampler(rng, n, freestream.c_mp, components=rotational_dof)
        return cls(
            x=rng.uniform(x_range[0], x_range[1], size=n),
            y=rng.uniform(y_range[0], y_range[1], size=n),
            u=vel[:, 0].copy(),
            v=vel[:, 1].copy(),
            w=vel[:, 2].copy(),
            rot=rot,
            perm=random_permutation_table(rng, n, length=3 + rotational_dof),
            cell=np.zeros(n, dtype=np.int64),
        )

    # -- invariants / views --------------------------------------------------

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def rotational_dof(self) -> int:
        return self.rot.shape[1]

    def validate(self) -> None:
        """Check internal consistency (used by tests and debug runs).

        Catches length mismatches, corrupted permutation rows, and
        non-finite state (NaN/inf positions or velocities) -- the
        failure modes the fault-injection tests exercise.
        """
        n = self.n
        k = 3 + self.rotational_dof
        for name in ("y", "u", "v", "w", "cell", "z"):
            col = getattr(self, name)
            if col.shape[0] != n:
                raise ConfigurationError(f"column {name} has wrong length")
        for name in ("x", "y", "u", "v", "w", "z"):
            col = getattr(self, name)
            if col.size and not np.isfinite(col).all():
                raise ConfigurationError(f"column {name} has non-finite values")
        if self.rot.size and not np.isfinite(self.rot).all():
            raise ConfigurationError("rot has non-finite values")
        if self.rot.shape != (n, self.rotational_dof):
            raise ConfigurationError("rot has wrong shape")
        if self.perm.shape != (n, k):
            raise ConfigurationError("perm has wrong shape")
        if n:
            sorted_rows = np.sort(self.perm, axis=1)
            if not np.array_equal(
                sorted_rows, np.broadcast_to(np.arange(k, dtype=np.int8), (n, k))
            ):
                raise ConfigurationError("perm rows are not permutations")

    # -- energy / momentum bookkeeping -------------------------------------

    def kinetic_energy(self) -> float:
        """Total translational kinetic energy, m = 1."""
        return 0.5 * float(
            np.dot(self.u, self.u) + np.dot(self.v, self.v) + np.dot(self.w, self.w)
        )

    def rotational_energy(self) -> float:
        """Total rotational energy 1/2 m sum(r.r) (eq. (9))."""
        return 0.5 * float((self.rot**2).sum())

    def total_energy(self) -> float:
        """Kinetic plus rotational energy."""
        return self.kinetic_energy() + self.rotational_energy()

    def momentum(self) -> np.ndarray:
        """Total linear momentum vector (m = 1)."""
        return np.array([self.u.sum(), self.v.sum(), self.w.sum()])

    # -- population surgery ----------------------------------------------

    def select(self, mask_or_index: np.ndarray) -> "ParticleArrays":
        """A new population of the selected particles (copies)."""
        sel = mask_or_index
        if isinstance(sel, slice):
            # Basic slicing yields views; force fresh arrays.
            take = lambda col: col[sel].copy()  # noqa: E731
        else:
            # Boolean / fancy indexing already copies; a second .copy()
            # would double the memory traffic of every rebuild.
            take = lambda col: col[sel]  # noqa: E731
        return ParticleArrays(
            x=take(self.x),
            y=take(self.y),
            u=take(self.u),
            v=take(self.v),
            w=take(self.w),
            rot=take(self.rot),
            perm=take(self.perm),
            cell=take(self.cell),
            z=take(self.z),
        )

    # -- preallocated scratch backing (the zero-allocation hot path) -------

    @property
    def scratch_enabled(self) -> bool:
        return self._front is not None

    def enable_scratch(self, slack: float = 0.3) -> "ParticleArrays":
        """Re-home every column in capacity-backed ping-pong buffers.

        After this call the per-step population operations --
        :meth:`reorder_inplace`, :meth:`compact_inplace`,
        :meth:`append_inplace` -- run against two preallocated buffer
        sets (gather from the front set into the back set, then swap),
        so steady-state stepping performs no O(N) heap allocations.
        Capacity carries ``slack`` headroom over the current population
        and grows geometrically (amortized) if the population outgrows
        it.  Returns ``self`` for chaining.
        """
        if self.scratch_enabled:
            return self
        n = self.n
        cap = max(int(n * (1.0 + slack)) + 1, 64)
        self._front = {}
        self._back = {}
        for name in COLUMN_NAMES:
            col = getattr(self, name)
            shape = (cap,) + col.shape[1:]
            front = np.empty(shape, dtype=col.dtype)
            front[:n] = col
            self._front[name] = front
            self._back[name] = np.empty(shape, dtype=col.dtype)
            setattr(self, name, front[:n])
        self.scratch = ScratchBuffers(slack=slack)
        return self

    def enable_scratch_from(
        self,
        front: Dict[str, np.ndarray],
        back: Dict[str, np.ndarray],
    ) -> "ParticleArrays":
        """Re-home every column in caller-provided ping-pong buffer sets.

        The sharded backend allocates each shard's column buffers in
        shared memory (inherited by the worker process over fork) and
        hands them in here; thereafter the in-place population
        operations run against those segments exactly as
        :meth:`enable_scratch` runs against heap buffers, so the parent
        can read a quiescent shard's state without any serialization.

        Both dicts must map every :data:`COLUMN_NAMES` entry to an array
        of one common capacity with the column's dtype and trailing
        shape.  Unlike heap scratch, the capacity is **fixed**: the
        population outgrowing it raises instead of silently migrating to
        private heap arrays (which would break the sharing contract).
        """
        if self.scratch_enabled:
            raise ConfigurationError("scratch buffers already enabled")
        n = self.n
        cap = front["x"].shape[0]
        for name in COLUMN_NAMES:
            col = getattr(self, name)
            want = (cap,) + col.shape[1:]
            for bufset in (front, back):
                buf = bufset.get(name)
                if buf is None or buf.shape != want or buf.dtype != col.dtype:
                    raise ConfigurationError(
                        f"buffer {name!r} must have shape {want} and dtype "
                        f"{col.dtype}"
                    )
        if cap < n:
            raise ConfigurationError(
                f"buffers hold {cap} particles, population has {n}"
            )
        self._front = front
        self._back = back
        self._fixed_capacity = True
        for name in COLUMN_NAMES:
            front[name][:n] = getattr(self, name)
            setattr(self, name, front[name][:n])
        self.scratch = ScratchBuffers()
        return self

    @property
    def capacity(self) -> int:
        """Backing capacity (equals ``n`` when scratch is disabled)."""
        if self._front is None:
            return self.n
        return self._front["x"].shape[0]

    @property
    def front_buffers(self) -> Optional[Dict[str, np.ndarray]]:
        """The live front buffer set (``None`` without scratch).

        Reorders swap front and back per column, so which physical
        buffer holds a column's current data varies over time; the
        sharded backend reads this mapping to publish per-column front
        flags for the parent's shared-memory gather.  Callers must not
        mutate the returned dict.
        """
        return self._front

    def _ensure_capacity(self, n_new: int) -> None:
        """Grow both buffer sets to hold ``n_new`` (amortized, rare)."""
        if n_new <= self.capacity:
            return
        if self._fixed_capacity:
            raise ConfigurationError(
                f"population of {n_new} exceeds the fixed shared-memory "
                f"capacity {self.capacity}; rebuild the backend with a "
                "larger capacity_factor"
            )
        n = self.n
        cap = max(int(n_new * 1.3) + 1, 64)
        for name in COLUMN_NAMES:
            old_front = self._front[name]
            shape = (cap,) + old_front.shape[1:]
            front = np.empty(shape, dtype=old_front.dtype)
            front[:n] = old_front[:n]
            self._front[name] = front
            self._back[name] = np.empty(shape, dtype=old_front.dtype)
            setattr(self, name, front[:n])

    def _swap_to_back(self, n_new: int) -> None:
        """Flip front/back and point the columns at the new front."""
        self._front, self._back = self._back, self._front
        for name in COLUMN_NAMES:
            setattr(self, name, self._front[name][:n_new])

    def reorder_inplace(self, order: np.ndarray, columns=None) -> None:
        """Apply a sort order to every column (the post-sort layout).

        With scratch enabled this gathers into the preallocated back
        buffers and swaps -- no allocation; otherwise it falls back to
        plain fancy indexing (fresh arrays).  ``columns`` limits the
        reorder to the named columns (e.g. the reservoir mix, whose
        positional columns are meaningless placeholders).
        """
        names = COLUMN_NAMES if columns is None else columns
        if self.order_listener is not None:
            self.order_listener.on_invalidate()
        if self._front is None:
            for name in names:
                setattr(self, name, getattr(self, name)[order])
            return
        n = self.n
        for name in names:
            # mode="clip": the order comes from argsort, always in
            # range; "raise" would buffer the out array (an allocation).
            np.take(
                getattr(self, name), order, axis=0,
                out=self._back[name][:n], mode="clip",
            )
            self._front[name], self._back[name] = (
                self._back[name], self._front[name],
            )
            setattr(self, name, self._front[name][:n])

    def compact_inplace(self, keep_index: np.ndarray) -> None:
        """Shrink to the particles at ``keep_index`` (int array), in place.

        Requires scratch; the step loop's replacement for
        ``select(mask)`` when particles leave the domain.
        """
        if self._front is None:
            raise ConfigurationError("compact_inplace requires enable_scratch")
        if self.order_listener is not None:
            self.order_listener.on_invalidate()
        k = keep_index.shape[0]
        for name in COLUMN_NAMES:
            np.take(
                getattr(self, name), keep_index, axis=0,
                out=self._back[name][:k], mode="clip",
            )
        self._swap_to_back(k)

    def remove_inplace(self, remove_mask: np.ndarray) -> None:
        """Delete the masked particles by backfilling holes from the tail.

        O(removed) instead of the O(N) full compaction: every hole
        below the new length receives a surviving particle moved down
        from the tail.  Particle *order is not preserved* -- only safe
        where the next cell sort re-orders the population anyway (the
        step loop's downstream removal, the reservoir withdrawal).
        """
        if self._front is None:
            raise ConfigurationError("remove_inplace requires enable_scratch")
        n = self.n
        if remove_mask.shape != (n,):
            raise ConfigurationError("remove_mask must have one entry per particle")
        gone = np.flatnonzero(remove_mask)
        n_new = n - gone.shape[0]
        if gone.shape[0]:
            holes = gone[gone < n_new]
            src = n_new + np.flatnonzero(~remove_mask[n_new:])
            for name in COLUMN_NAMES:
                col = self._front[name]
                col[holes] = col[src]
            if self.order_listener is not None:
                self.order_listener.on_remove(holes, src, n_new)
        for name in COLUMN_NAMES:
            setattr(self, name, self._front[name][:n_new])

    def append_inplace(self, other: "ParticleArrays") -> None:
        """Append another population's particles into the backing store."""
        if self._front is None:
            raise ConfigurationError("append_inplace requires enable_scratch")
        if other.rotational_dof != self.rotational_dof:
            raise ConfigurationError("rotational dof mismatch")
        m = other.n
        if m == 0:
            return
        n = self.n
        self._ensure_capacity(n + m)
        for name in COLUMN_NAMES:
            self._front[name][n : n + m] = getattr(other, name)
            setattr(self, name, self._front[name][: n + m])
        if self.order_listener is not None:
            self.order_listener.on_append(n, m)

    # -- replica-blocked surgery (the ensemble engine) --------------------

    def remove_blocked_inplace(
        self, remove_mask: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        """Blocked variant of :meth:`remove_inplace` for ensemble state.

        ``starts`` holds the replica block boundaries (length R+1,
        ``starts[-1] == n``).  Every block is treated exactly as
        :meth:`remove_inplace` treats a solo population -- holes below
        the block's new length are backfilled from the block's own tail
        in the same source order -- so block ``r``'s surviving rows are
        bitwise identical to a solo removal on that block.  The
        shortened blocks are then re-packed contiguously into the back
        buffers (blocks stay adjacent, order preserved) and the buffer
        sets swapped.  Returns the new ``starts`` array.
        """
        if self._front is None:
            raise ConfigurationError(
                "remove_blocked_inplace requires enable_scratch"
            )
        n = self.n
        if remove_mask.shape != (n,):
            raise ConfigurationError(
                "remove_mask must have one entry per particle"
            )
        if int(starts[-1]) != n:
            raise ConfigurationError("starts[-1] must equal the population")
        if self.order_listener is not None:
            self.order_listener.on_invalidate()
        n_blocks = starts.shape[0] - 1
        new_starts = np.empty_like(np.asarray(starts, dtype=np.int64))
        new_starts[0] = 0
        for r in range(n_blocks):
            b0, b1 = int(starts[r]), int(starts[r + 1])
            gone = np.flatnonzero(remove_mask[b0:b1])
            n_new = (b1 - b0) - gone.shape[0]
            if gone.shape[0]:
                holes = gone[gone < n_new]
                src = n_new + np.flatnonzero(~remove_mask[b0 + n_new : b1])
                for name in COLUMN_NAMES:
                    col = self._front[name]
                    col[b0 + holes] = col[b0 + src]
            new_starts[r + 1] = new_starts[r] + n_new
        n_total = int(new_starts[-1])
        for name in COLUMN_NAMES:
            src_buf = self._front[name]
            dst_buf = self._back[name]
            for r in range(n_blocks):
                b0 = int(starts[r])
                d0, d1 = int(new_starts[r]), int(new_starts[r + 1])
                dst_buf[d0:d1] = src_buf[b0 : b0 + (d1 - d0)]
        self._swap_to_back(n_total)
        return new_starts

    def append_blocked_inplace(self, others, starts: np.ndarray) -> np.ndarray:
        """Blocked variant of :meth:`append_inplace` for ensemble state.

        ``others`` is one population per block (possibly empty); block
        ``r`` becomes its current rows followed by ``others[r]``'s rows,
        exactly as a solo :meth:`append_inplace` would place them.
        Rebuilds the blocked layout in the back buffers and swaps.
        Returns the new ``starts`` array.
        """
        if self._front is None:
            raise ConfigurationError(
                "append_blocked_inplace requires enable_scratch"
            )
        n = self.n
        if int(starts[-1]) != n:
            raise ConfigurationError("starts[-1] must equal the population")
        n_blocks = starts.shape[0] - 1
        if len(others) != n_blocks:
            raise ConfigurationError("one appended population per block")
        for o in others:
            if o.rotational_dof != self.rotational_dof:
                raise ConfigurationError("rotational dof mismatch")
        if self.order_listener is not None:
            self.order_listener.on_invalidate()
        new_starts = np.empty_like(np.asarray(starts, dtype=np.int64))
        new_starts[0] = 0
        for r in range(n_blocks):
            block = int(starts[r + 1]) - int(starts[r])
            new_starts[r + 1] = new_starts[r] + block + others[r].n
        n_total = int(new_starts[-1])
        self._ensure_capacity(n_total)
        for name in COLUMN_NAMES:
            src_buf = self._front[name]
            dst_buf = self._back[name]
            for r in range(n_blocks):
                b0, b1 = int(starts[r]), int(starts[r + 1])
                d0 = int(new_starts[r])
                dst_buf[d0 : d0 + (b1 - b0)] = src_buf[b0:b1]
                m = others[r].n
                if m:
                    dst_buf[d0 + (b1 - b0) : d0 + (b1 - b0) + m] = getattr(
                        others[r], name
                    )
        self._swap_to_back(n_total)
        return new_starts

    # -- migration pack/unpack (the sharded exchange) ---------------------

    def pack_rows(
        self,
        idx: np.ndarray,
        float_out: np.ndarray,
        perm_out: np.ndarray,
    ) -> int:
        """Copy the particles at ``idx`` into migration buffers.

        Writes the :data:`MIGRATION_FLOAT_COLUMNS` scalars and the
        ``rot`` components into ``float_out`` and the ``perm`` rows
        into ``perm_out`` (first ``len(idx)`` rows of each).  Pure
        float64/int8 copies, so every state field round-trips bitwise
        through :meth:`append_rows` -- including values quantized to
        the CM engine's Q8.23 grid.  Returns the row count.
        """
        m = int(idx.shape[0])
        dof = self.rotational_dof
        if float_out.shape[0] < m or perm_out.shape[0] < m:
            raise ConfigurationError(
                f"migration buffer overflow: {m} migrants exceed the "
                f"buffer capacity {min(float_out.shape[0], perm_out.shape[0])}"
            )
        if float_out.shape[1] != migration_float_width(dof):
            raise ConfigurationError(
                f"float buffer must have {migration_float_width(dof)} columns"
            )
        for c, name in enumerate(MIGRATION_FLOAT_COLUMNS):
            float_out[:m, c] = getattr(self, name)[idx]
        base = len(MIGRATION_FLOAT_COLUMNS)
        float_out[:m, base : base + dof] = self.rot[idx]
        perm_out[:m] = self.perm[idx]
        return m

    def append_rows(
        self,
        float_in: np.ndarray,
        perm_in: np.ndarray,
        m: int,
    ) -> None:
        """Append ``m`` migrants from buffers filled by :meth:`pack_rows`.

        Requires scratch backing (the shard populations always have
        it).  The appended particles' ``cell`` entries are left stale;
        the step loop's cell-indexing pass overwrites every entry
        before anything reads them.
        """
        if self._front is None:
            raise ConfigurationError("append_rows requires enable_scratch")
        if m == 0:
            return
        n = self.n
        dof = self.rotational_dof
        self._ensure_capacity(n + m)
        for c, name in enumerate(MIGRATION_FLOAT_COLUMNS):
            self._front[name][n : n + m] = float_in[:m, c]
        base = len(MIGRATION_FLOAT_COLUMNS)
        self._front["rot"][n : n + m] = float_in[:m, base : base + dof]
        self._front["perm"][n : n + m] = perm_in[:m]
        for name in COLUMN_NAMES:
            setattr(self, name, self._front[name][: n + m])
        if self.order_listener is not None:
            self.order_listener.on_append(n, m)

    @staticmethod
    def concatenate(a: "ParticleArrays", b: "ParticleArrays") -> "ParticleArrays":
        """Concatenate two populations (e.g. flow + plunger refill)."""
        if a.rotational_dof != b.rotational_dof:
            raise ConfigurationError("rotational dof mismatch")
        return ParticleArrays(
            x=np.concatenate((a.x, b.x)),
            y=np.concatenate((a.y, b.y)),
            u=np.concatenate((a.u, b.u)),
            v=np.concatenate((a.v, b.v)),
            w=np.concatenate((a.w, b.w)),
            rot=np.concatenate((a.rot, b.rot)),
            perm=np.concatenate((a.perm, b.perm)),
            cell=np.concatenate((a.cell, b.cell)),
            z=np.concatenate((a.z, b.z)),
        )

    def copy(self) -> "ParticleArrays":
        """Deep copy of the population."""
        return self.select(slice(None))
