"""Unit tests for the inviscid theory oracle against textbook values."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.physics import theory


class TestObliqueShock:
    def test_paper_case_mach4_wedge30(self):
        # The validation targets of figure 1: beta ~ 45 deg, rho2/rho1
        # ~ 3.7.
        beta = theory.shock_angle_deg(4.0, 30.0)
        assert beta == pytest.approx(45.0, abs=0.5)
        ratio = theory.oblique_shock_density_ratio(4.0, math.radians(30.0))
        assert ratio == pytest.approx(3.7, abs=0.05)

    def test_weak_solution_by_default(self):
        weak = theory.shock_angle(3.0, math.radians(20.0))
        strong = theory.shock_angle(3.0, math.radians(20.0), strong=True)
        assert weak < strong

    def test_zero_deflection_gives_mach_wave(self):
        beta = theory.shock_angle(2.0, 0.0)
        assert beta == pytest.approx(math.asin(0.5))

    def test_detachment_detected(self):
        theta_max, _ = theory.max_deflection(2.0)
        with pytest.raises(ConfigurationError):
            theory.shock_angle(2.0, theta_max + 0.05)

    def test_max_deflection_textbook_mach2(self):
        # gamma = 1.4, M = 2: theta_max ~ 22.97 deg.
        theta_max, _ = theory.max_deflection(2.0)
        assert math.degrees(theta_max) == pytest.approx(22.97, abs=0.1)

    def test_subsonic_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.shock_angle(0.9, 0.1)

    def test_deflection_consistency(self):
        beta = theory.shock_angle(4.0, math.radians(25.0))
        assert theory.deflection_angle(4.0, beta) == pytest.approx(
            math.radians(25.0), abs=1e-9
        )


class TestNormalShock:
    def test_textbook_mach2(self):
        # gamma = 1.4: rho2/rho1 = 2.667, p2/p1 = 4.5.
        assert theory.normal_shock_density_ratio(2.0) == pytest.approx(
            8 / 3, rel=1e-12
        )
        assert theory.normal_shock_pressure_ratio(2.0) == pytest.approx(4.5)

    def test_strong_shock_density_limit(self):
        # rho2/rho1 -> (gamma+1)/(gamma-1) = 6 as M -> inf.
        assert theory.normal_shock_density_ratio(100.0) == pytest.approx(
            6.0, rel=0.01
        )

    def test_post_shock_mach_subsonic(self):
        m2 = theory.post_normal_shock_mach(2.0)
        assert m2 == pytest.approx(0.5774, abs=1e-3)

    def test_temperature_ratio_consistent(self):
        t = theory.normal_shock_temperature_ratio(2.0)
        assert t == pytest.approx(4.5 / (8 / 3))

    def test_subsonic_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.normal_shock_density_ratio(1.0)

    def test_post_oblique_mach_mach4_wedge30(self):
        m2 = theory.post_oblique_shock_mach(4.0, math.radians(30.0))
        # Behind a Mach-4 / 30deg-wedge shock the flow stays supersonic
        # (~1.7), which is what lets the expansion fan exist.
        assert 1.4 < m2 < 2.0


class TestPrandtlMeyer:
    def test_nu_of_one_is_zero(self):
        assert theory.prandtl_meyer(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_textbook_value_mach2(self):
        # nu(2.0) = 26.38 deg for gamma = 1.4.
        assert math.degrees(theory.prandtl_meyer(2.0)) == pytest.approx(
            26.38, abs=0.02
        )

    def test_inverse_roundtrip(self):
        for m in (1.5, 2.5, 4.0, 6.0):
            nu = theory.prandtl_meyer(m)
            assert theory.mach_from_prandtl_meyer(nu) == pytest.approx(m, rel=1e-9)

    def test_expansion_reduces_density(self):
        ratio = theory.expansion_density_ratio(2.0, math.radians(20.0))
        assert 0.0 < ratio < 1.0

    def test_zero_turn_is_identity(self):
        assert theory.expansion_density_ratio(3.0, 0.0) == pytest.approx(1.0)

    def test_subsonic_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.prandtl_meyer(0.8)

    def test_out_of_range_nu(self):
        with pytest.raises(ConfigurationError):
            theory.mach_from_prandtl_meyer(10.0)

    def test_negative_turn_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.expansion_density_ratio(2.0, -0.1)


class TestShockThickness:
    def test_continuum_is_resolution_limited(self):
        # lambda = 0: the measured thickness is the sampling floor.
        assert theory.shock_thickness_scale(0.0) == pytest.approx(3.0)

    def test_rarefied_is_thicker(self):
        assert theory.shock_thickness_scale(0.5) > theory.shock_thickness_scale(0.0)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.shock_thickness_scale(-0.1)
