"""Fixed-point arithmetic substrate (the CM-2 integer implementation).

The paper stores the physical state of a particle in a 32-bit fixed
point format with 23 bits of precision, and corrects the truncation
error of divide-by-two with stochastic rounding.  This subpackage
provides that arithmetic on NumPy ``int32`` arrays:

* :class:`~repro.fixedpoint.qformat.QFormat` -- the representation
  (integer/fraction bit split, encode/decode, overflow checks);
* halving with truncating or stochastically rounded semantics;
* the "quick & dirty" low-order-bit random numbers the paper draws from
  the particle state words.
"""

from repro.fixedpoint.qformat import (
    QFormat,
    Q8_23,
    quick_dirty_bits,
    quick_dirty_uniform,
)

__all__ = ["QFormat", "Q8_23", "quick_dirty_bits", "quick_dirty_uniform"]
