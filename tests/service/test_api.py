"""HTTP API round-trips: routes, status codes, typed error mapping."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ServiceError,
)
from repro.service import Orchestrator, ServiceAPI, ServiceClient
from repro.service import store as st
from tests.service.conftest import fast_config

pytestmark = pytest.mark.service


@pytest.fixture
def service(tmp_path):
    """(orchestrator, api, client) on an ephemeral localhost port."""
    orch = Orchestrator(tmp_path / "svc", fast_config())
    api = ServiceAPI(orch, port=0)
    client = ServiceClient(f"http://127.0.0.1:{api.port}")
    yield orch, api, client
    api.close()
    if not orch._dead:
        orch.shutdown()


class TestRoutes:
    def test_healthz(self, service):
        _, _, client = service
        health = client.health()
        assert health["ok"] is True
        assert health["queue_depth"] == 0

    def test_submit_wait_result_round_trip(
        self, service, tiny_overrides
    ):
        _, _, client = service
        out = client.submit(
            scenario="wedge", seed=21, overrides=tiny_overrides
        )
        assert out["cached"] is False
        final = client.wait(out["job_id"], timeout=120)
        assert final["state"] == st.DONE
        result = client.result(out["job_id"])
        assert result["steps"] == tiny_overrides["average"]
        # Cached resubmission comes back HTTP 200 with cached=True.
        again = client.submit(
            scenario="wedge", seed=21, overrides=tiny_overrides
        )
        assert again["cached"] is True
        assert again["job_id"] == out["job_id"]
        jobs = client.list_jobs()
        assert [j["job_id"] for j in jobs] == [out["job_id"]]

    def test_metrics_exposition(self, service):
        _, _, client = service
        text = client.metrics()
        assert "# TYPE repro_service_submissions_total counter" in text

    def test_unknown_route_is_404(self, service):
        _, api, _ = service
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{api.port}/teapot"
            )
        assert err.value.code == 404


class TestErrorMapping:
    def test_unknown_job_is_404_typed(self, service):
        _, _, client = service
        with pytest.raises(JobNotFoundError):
            client.status("nope")
        with pytest.raises(JobNotFoundError):
            client.result("nope")

    def test_bad_overrides_are_400_typed(self, service):
        _, _, client = service
        with pytest.raises(ConfigurationError, match="bogus"):
            client.submit(scenario="wedge", overrides={"bogus": 1})

    def test_malformed_json_body_is_400(self, service):
        _, api, _ = service
        req = urllib.request.Request(
            f"http://127.0.0.1:{api.port}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"] == "ConfigurationError"

    def test_backpressure_is_429_typed(self, tmp_path, tiny_overrides):
        orch = Orchestrator(
            tmp_path, fast_config(queue_limit=1), start=False
        )
        api = ServiceAPI(orch, port=0)
        client = ServiceClient(f"http://127.0.0.1:{api.port}")
        try:
            client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )
            with pytest.raises(BackpressureError) as err:
                client.submit(
                    scenario="wedge", seed=2, overrides=tiny_overrides
                )
            assert err.value.context["limit"] == 1
        finally:
            api.close()
            orch.shutdown()

    def test_cancel_terminal_job_is_409_typed(
        self, tmp_path, tiny_overrides
    ):
        orch = Orchestrator(tmp_path, fast_config(), start=False)
        api = ServiceAPI(orch, port=0)
        client = ServiceClient(f"http://127.0.0.1:{api.port}")
        try:
            out = client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )
            client.cancel(out["job_id"])
            with pytest.raises(JobStateError):
                client.cancel(out["job_id"])
        finally:
            api.close()
            orch.shutdown()

    def test_shut_down_service_is_503_typed(
        self, service, tiny_overrides
    ):
        orch, _, client = service
        orch.shutdown()
        with pytest.raises(ServiceError):
            client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )
