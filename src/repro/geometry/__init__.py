"""Geometry substrate: wind-tunnel domain, wedge body, reflections.

The paper sets up physical space "to simulate a wind tunnel": hard
(specularly reflecting) walls top and bottom, a soft (sink) boundary
downstream, a plunger-type hard boundary upstream, and an inclined flat
plate (wedge) in the test section.  Cells cut by the wedge surface get
fractional volumes used by the collision selection rule and the density
sampling.
"""

from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.geometry.bodies import BODY_KINDS, Cylinder, Step, body_from_dict
from repro.geometry import reflect

__all__ = [
    "Domain",
    "Wedge",
    "Cylinder",
    "Step",
    "BODY_KINDS",
    "body_from_dict",
    "reflect",
]
