"""ENSEMBLE -- replica-batched stepping vs R sequential solo runs.

Runs R = 8 replicas of the Mach-4 wedge problem (~30k particles in
total across the fleet at the benchmark density) two ways from the same seeds: once as
R sequential solo engine runs (``EnsembleEngine`` with one replica
each -- the classical seed-sweep workflow) and once as a single batched
engine stepping all R replicas as one replica-blocked population.  The
physics is bitwise identical either way (asserted by the ensemble CI
job); the batched run amortizes every NumPy kernel dispatch over an
R-times-wider array, which is where the aggregate-throughput speedup
comes from at per-replica populations small enough for dispatch
overhead to matter.

Reports aggregate particle-steps/second for both modes, the per-phase
ledger of the batched run, and the speedup.

Standalone: ``PYTHONPATH=src python benchmarks/bench_ensemble.py``
writes ``BENCH_ensemble.json`` at the repository root.

CI smoke mode: ``--steps 5 --check-against BENCH_ensemble.json`` runs
a short measurement and exits non-zero if the batched path's
us/particle/step regressed more than ``--tolerance`` (default 25%)
against the committed record.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.simulation import SimulationConfig
from repro.ensemble import EnsembleEngine
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

WARMUP_STEPS = 5
TIMED_STEPS = 30
N_REPLICAS = 8
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def default_config(
    density: float = 0.65, seed: int = 1989
) -> SimulationConfig:
    """The paper's Mach-4 wedge geometry at ~30k particles total (R=8).

    The density targets ~3.7k particles per replica: small enough that
    a solo run is dominated by per-kernel dispatch overhead, which is
    precisely the regime the batched engine exists for.  (At 10x the
    population both modes are memory-bound and batching buys nothing.)
    """
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


def _time_steps(engine: EnsembleEngine, steps: int) -> tuple:
    """Per-step wall times (array) and summed particle-steps."""
    engine.run(WARMUP_STEPS)
    engine.perf.reset()
    step_times = np.empty(steps)
    particle_steps = 0
    for i in range(steps):
        t0 = time.perf_counter()
        engine.step()
        step_times[i] = time.perf_counter() - t0
        particle_steps += engine.particles.n
    return step_times, particle_steps


def run_benchmark(
    config: SimulationConfig | None = None,
    steps: int = TIMED_STEPS,
    n_replicas: int = N_REPLICAS,
) -> dict:
    """Measure batched vs sequential stepping; return the record.

    Both modes are reduced to a median-per-step wall time (shared CI
    machines have multi-second slow windows that would otherwise
    dominate a single mean), taken over *aggregate fleet steps*: the
    sequential baseline's per-step times are summed across the R solo
    runs at matching step indices first.  Solo step times are bimodal
    (plunger-refill steps cost several times a quiet step), so a
    per-engine median would silently drop the expensive steps from the
    baseline while the batched engine -- whose every step carries all
    R replicas' work -- kept them; aligning by step index compares the
    same physics schedule on both sides.
    """
    config = config or default_config()

    # Sequential baseline: R independent solo engines (replica r keyed
    # identically to the batched run's member r), timed back to back.
    seq_step_times = np.zeros(steps)
    seq_particle_steps = 0
    for rid in range(n_replicas):
        solo = EnsembleEngine(config, replica_ids=[rid])
        times, ps = _time_steps(solo, steps)
        seq_step_times += times
        seq_particle_steps += ps
    seq_seconds = float(np.median(seq_step_times)) * steps

    batched = EnsembleEngine(config, n_replicas=n_replicas)
    bat_times, bat_particle_steps = _time_steps(batched, steps)
    bat_seconds = float(np.median(bat_times)) * steps
    per_step = batched.perf.per_step_seconds()
    fractions = batched.perf.fractions()

    n_total = batched.particles.n
    result = {
        "bench": "ensemble",
        "config": {
            "domain": [config.domain.nx, config.domain.ny],
            "mach": config.freestream.mach,
            "density": config.freestream.density,
            "lambda_mfp": config.freestream.lambda_mfp,
            "seed": config.seed,
        },
        "n_replicas": n_replicas,
        "n_particles_total": n_total,
        "n_particles_per_replica": n_total // n_replicas,
        "timed_steps": steps,
        "sequential": {
            "seconds": seq_seconds,
            "us_per_particle_step": seq_seconds / seq_particle_steps * 1e6,
            "particle_steps_per_sec": seq_particle_steps / seq_seconds,
        },
        "batched": {
            "seconds": bat_seconds,
            "us_per_particle_step": bat_seconds / bat_particle_steps * 1e6,
            "particle_steps_per_sec": bat_particle_steps / bat_seconds,
            "phase_seconds_per_step": per_step,
            "phase_fractions": fractions,
        },
        "speedup": seq_seconds / bat_seconds,
    }
    return result


def check_against(result: dict, baseline_path: pathlib.Path,
                  tolerance: float) -> bool:
    """True if the batched path is within ``tolerance`` of baseline."""
    baseline = json.loads(baseline_path.read_text())
    ref = baseline["batched"]["us_per_particle_step"]
    got = result["batched"]["us_per_particle_step"]
    ratio = got / ref
    print(
        f"regression check: {got:.3f} vs baseline {ref:.3f} "
        f"us/particle/step ({ratio:.2f}x, tolerance {1 + tolerance:.2f}x)"
    )
    return ratio <= 1.0 + tolerance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--steps", type=int, default=TIMED_STEPS,
        help="timed steps per mode (smoke runs use ~5)",
    )
    parser.add_argument(
        "--replicas", type=int, default=N_REPLICAS,
        help=f"ensemble width (default {N_REPLICAS})",
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help="committed BENCH_ensemble.json to compare with; "
             "exits 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown (default 0.25)",
    )
    args = parser.parse_args(argv)

    smoke = args.check_against is not None
    result = run_benchmark(steps=args.steps, n_replicas=args.replicas)
    if not smoke:
        out = REPO_ROOT / "BENCH_ensemble.json"
        out.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"{result['n_replicas']} replicas x "
        f"{result['n_particles_per_replica']} particles"
    )
    for name in ("sequential", "batched"):
        r = result[name]
        print(
            "{:<10s}: {:10.0f} particle-steps/s  "
            "({:.3f} us/particle/step)".format(
                name, r["particle_steps_per_sec"],
                r["us_per_particle_step"],
            )
        )
    for pname, frac in result["batched"]["phase_fractions"].items():
        print(
            "  {:<10s} {:6.1%}  ({:.2f} ms/step)".format(
                pname, frac,
                result["batched"]["phase_seconds_per_step"][pname] * 1e3,
            )
        )
    print("speedup : {:.2f}x".format(result["speedup"]))
    if smoke:
        if not check_against(result, args.check_against, args.tolerance):
            print("FAIL: batched stepping slower than committed baseline")
            return 1
        print("OK: within tolerance of the committed baseline")
    else:
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
