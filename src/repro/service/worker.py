"""The job worker: one process, one :class:`SupervisedRun`.

The orchestrator forks one worker process per running job.  The worker
owns the job directory (``<data_dir>/<job_id>/``):

* ``run/`` -- the supervised run directory (checkpoints, ``run.json``,
  the resilience ``journal.jsonl``), which is what makes every layer of
  recovery possible: step-level faults are absorbed by
  :class:`~repro.resilience.supervisor.SupervisedRun` itself, and a
  *worker* death leaves checkpoints behind for the next attempt to
  resume from;
* ``worker.jsonl`` -- the heartbeat journal.  The worker stamps
  progress after every chunk of steps; the orchestrator's watchdog
  reads the file's mtime, so a worker that stops stamping (wedged,
  stalled, or fault-injected) is detected and killed without any
  cooperation from the worker.  Each heartbeat also carries the live
  numbers (``step``, ``n_flow``, ``us_per_particle``) that the fleet
  scraper and the ``/jobs/<id>/stream`` routes serve to watchers;
* ``events.jsonl`` / ``metrics.prom`` / ``trace.json`` -- the job's
  telemetry artifacts: every job runs with a
  :class:`~repro.telemetry.hub.Telemetry` hub attached (unless the
  payload disables it), so per-job metric series, physics observables
  and Perfetto span traces exist for live streaming and for
  :mod:`repro.telemetry.stitch` to merge into the fleet timeline;
* ``result.json`` -- the terminal artifact, written atomically
  (tmp + rename) so a crash can never leave a half-result that parses.

Exit codes are the worker's half of the orchestration protocol:
``0`` done (``result.json`` exists), ``3`` drained to a checkpoint
after SIGTERM (graceful shutdown or cancel), anything else a failure
the orchestrator retries or fails the job on.  The worker never
decides job state -- it reports, the orchestrator transitions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import signal
import sys
import time
import traceback
from collections import Counter
from typing import Optional

import numpy as np

from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import SupervisedRun
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.events import EventStream
from repro.telemetry.hub import Telemetry

#: Worker exit codes (the orchestrator's dispatch protocol).
EXIT_DONE = 0
EXIT_FAILED = 1
EXIT_DRAINED = 3
#: Injected ``worker_kill`` deaths use a recognizable code in tests.
EXIT_KILLED = 86


class WorkerLog(EventStream):
    """Per-job heartbeat/progress journal (``worker.jsonl``)."""

    filename = "worker.jsonl"


def _atomic_write_json(path: pathlib.Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    tmp.replace(path)


def result_summary(run: SupervisedRun, attempt: int) -> dict:
    """The job's terminal artifact: headline numbers + a state digest.

    ``density_sha256`` hashes the raw bytes of the time-averaged
    density field, so "a resumed job is bitwise identical to an
    unfailed run" is checkable by comparing two result files.
    """
    sim = run.sim
    sim.gather()
    rho = np.ascontiguousarray(sim.density_ratio_field())
    recoveries = sum(
        1 for e in run.journal.events if e.get("kind") == "recovery"
    )
    return {
        "steps": int(sim.step_count),
        "n_flow": int(sim.particles.n),
        "seed": sim.config.seed if isinstance(sim.config.seed, int) else None,
        "scenario": sim.config.scenario,
        "density_mean": float(rho.mean()),
        "density_max": float(rho.max()),
        "density_sha256": hashlib.sha256(rho.tobytes()).hexdigest(),
        "recoveries": recoveries,
        "attempt": int(attempt),
    }


def _load_fired(job_dir: pathlib.Path) -> Counter:
    """Service faults already fired in earlier attempts of this job.

    An injected fault models *one* event (one crash, one stall); the
    retry that resumes the job must not relive it, so the worker
    records each firing before acting on it and filters that many
    fired specs out of the rebuilt plan.  A multiset, not a set: three
    identical kill specs model three separate deaths.
    """
    path = job_dir / "faults_fired.jsonl"
    fired: Counter = Counter()
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                rec = json.loads(line)
                fired[(rec["kind"], rec["step"])] += 1
    return fired


def _mark_fired(job_dir: pathlib.Path, spec: FaultSpec) -> None:
    with open(
        job_dir / "faults_fired.jsonl", "a", encoding="utf-8"
    ) as fh:
        fh.write(json.dumps({"kind": spec.kind, "step": spec.step}) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


class _HeartbeatStats:
    """Live numbers riding on each heartbeat record.

    ``us_per_particle`` is the mean over the steps since the previous
    heartbeat, taken as deltas of the telemetry histogram's running
    sum/count -- the per-chunk series ``repro watch`` sparklines.
    """

    def __init__(self, run: SupervisedRun) -> None:
        self._run = run
        self._sum = 0.0
        self._count = 0

    def sample(self) -> dict:
        run = self._run
        out = {"n_flow": int(run.sim.particles.n)}
        tel = getattr(run, "telemetry", None)
        if tel is not None:
            hist = tel.registry.histogram("repro_step_us_per_particle")
            d_sum = hist.sum - self._sum
            d_count = hist.count - self._count
            self._sum, self._count = hist.sum, hist.count
            if d_count > 0:
                out["us_per_particle"] = d_sum / d_count
        return out


def _close_telemetry(run: SupervisedRun) -> None:
    """Flush the job's telemetry artifacts (trace.json, final .prom)."""
    tel = getattr(run, "telemetry", None)
    if tel is not None:
        try:
            tel.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


def _phases(schedule) -> list:
    transient, average = int(schedule[0]), int(schedule[1])
    return [
        {"steps": n, "sample": s}
        for n, s in ((transient, False), (average, True))
        if n
    ]


def execute_job(job_dir, payload: dict) -> int:
    """Run one job to a checkpointed stop; returns the exit code.

    ``payload`` carries the full spec dict, the effective seed and
    overrides, the resolved ``(transient, average)`` schedule, the
    supervision knobs and an optional fault list.  A job directory
    with an existing supervised run is *resumed* from its newest
    checkpoint -- retry attempts and orchestrator restarts both land
    here, and the serial engine's deterministic streams make the
    continuation bitwise identical to an unfailed run.
    """
    job_dir = pathlib.Path(job_dir)
    job_dir.mkdir(parents=True, exist_ok=True)
    log = WorkerLog(job_dir)
    attempt = int(payload.get("attempt", 1))
    drain = {"requested": False}

    def _on_sigterm(signum, frame):  # noqa: ARG001 (stdlib signature)
        drain["requested"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)

    plan: Optional[FaultPlan] = None
    faults = payload.get("faults") or ()
    if faults:
        remaining = _load_fired(job_dir)
        specs = []
        for s in (FaultSpec.from_dict(f) for f in faults):
            key = (s.kind, s.step)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                continue
            specs.append(s)
        if specs:
            plan = FaultPlan(specs)

    chunk = max(1, int(payload.get("heartbeat_every", 10)))
    try:
        run, first_phases, total_end = _build_run(job_dir, payload, chunk)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        _fail(job_dir, log, attempt, exc)
        return EXIT_FAILED

    log.emit(
        "started",
        attempt=attempt,
        pid=os.getpid(),
        step=run.sim.step_count,
        total=total_end,
    )
    beat = _HeartbeatStats(run)
    try:
        first = first_phases is not None
        while True:
            step = run.sim.step_count
            log.emit(
                "heartbeat",
                step=step,
                attempt=attempt,
                total=total_end,
                **beat.sample(),
            )
            if plan is not None:
                kill = plan.take("worker_kill", step)
                if kill is not None:
                    # A hard death: no cleanup, no checkpoint beyond
                    # what the cadence already wrote.
                    _mark_fired(job_dir, kill)
                    os._exit(EXIT_KILLED)
                stall = plan.take("worker_stall", step)
                if stall is not None:
                    # Stop heartbeating long enough for the watchdog;
                    # the parent SIGKILLs us mid-sleep.
                    _mark_fired(job_dir, stall)
                    time.sleep(stall.seconds)
            if drain["requested"]:
                log.emit("drained", step=step, attempt=attempt)
                _close_telemetry(run)
                run.close()
                return EXIT_DRAINED
            if step >= total_end:
                break
            run.run_schedule(
                first_phases if first else None, max_steps=chunk
            )
            first = False
        result = result_summary(run, attempt)
        _atomic_write_json(job_dir / "result.json", result)
        log.emit("done", step=run.sim.step_count, attempt=attempt)
        _close_telemetry(run)
        run.close()
        return EXIT_DONE
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        _fail(job_dir, log, attempt, exc)
        _close_telemetry(run)
        try:
            run.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        return EXIT_FAILED


def _build_run(job_dir: pathlib.Path, payload: dict, chunk: int):
    """(Re)build the supervised run; returns (run, first_phases, end).

    ``first_phases`` is None when the run directory already stores its
    schedule (pure resume); otherwise the phases to record on the
    first ``run_schedule`` call.
    """
    run_dir = job_dir / "run"
    schedule = payload["schedule"]

    def _telemetry() -> Optional[Telemetry]:
        # Every job gets its own telemetry hub writing into the job
        # dir: events.jsonl / metrics.prom / trace.json are what the
        # streaming routes, the fleet scraper and the trace stitcher
        # read.
        if not payload.get("telemetry", True):
            return None
        return Telemetry(run_dir=job_dir, sample_every=chunk)

    if (run_dir / "run.json").exists():
        run = SupervisedRun.resume(run_dir)
        telemetry = _telemetry()
        if telemetry is not None:
            run.attach_telemetry(telemetry)
        stored = run._meta.get("phases")
        if stored:
            start = int(run._meta["schedule_start"])
            total = start + sum(int(p["steps"]) for p in stored)
            return run, None, total
        # Died between the baseline checkpoint and the first scheduled
        # step: the schedule never reached run.json, so record it now.
        phases = _phases(schedule)
        total = run.sim.step_count + sum(p["steps"] for p in phases)
        return run, phases, total

    spec = ScenarioSpec.from_dict(payload["spec"])
    overrides = {
        k: v
        for k, v in dict(payload.get("overrides", {})).items()
        if k not in ("transient", "average")
    }
    overrides["seed"] = int(payload["seed"])
    if spec.is_3d:
        # The 3-D driver has no telemetry seam yet.
        sim = spec.build_simulation(overrides)
    else:
        sim = spec.build_simulation(overrides, telemetry=_telemetry())
    run = SupervisedRun(
        sim,
        run_dir,
        checkpoint_every=int(payload.get("checkpoint_every", chunk)),
        audit_every=int(payload.get("audit_every", 0)),
        max_retries=int(payload.get("step_max_retries", 3)),
        backoff_base=float(payload.get("step_backoff_base", 0.0)),
    )
    phases = _phases(schedule)
    total = sim.step_count + sum(p["steps"] for p in phases)
    return run, phases, total


def _fail(job_dir: pathlib.Path, log: WorkerLog, attempt: int, exc) -> None:
    _atomic_write_json(
        job_dir / "error.json",
        {
            "error": type(exc).__name__,
            "detail": str(exc),
            "traceback": traceback.format_exc(),
            "attempt": attempt,
        },
    )
    log.emit("failed", attempt=attempt, error=type(exc).__name__)


def child_main(job_dir, payload: dict) -> None:
    """``multiprocessing.Process`` target: run the job, exit with its
    protocol code."""
    sys.exit(execute_job(job_dir, payload))
