"""Cell indexing and randomized sort keys (sub-step 3, part 1).

"Once the particles have been moved and all the boundary conditions
enforced, each particle computes its occupying cell index."

The sort key is *not* the raw cell index: "the cell index of a particle
is scaled by some constant factor and, before sorting, a random number
less than the scale factor is added to it.  Now sorting the particles no
longer preserves the relative ordering within a cell and there is
confidence in the statistical randomness of the collision candidate
pairs."  Without this mixing the same even/odd partners collide
repeatedly, producing correlated velocity distributions -- ablation
bench ABL1 measures exactly that.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain


def assign_cells(particles: ParticleArrays, domain: Domain) -> None:
    """Recompute every particle's flattened cell index, in place.

    Scratch-enabled populations keep the cell column bound to its
    ping-pong buffer, so the indices are written through the existing
    view instead of rebinding the attribute to a fresh array.
    """
    if (
        particles.scratch is not None
        and particles.cell.shape == particles.x.shape
    ):
        # Allocation-free indexing through pooled int64 buffers.  The
        # unsafe copyto truncates toward zero, which equals floor for
        # the non-negative coordinates boundary enforcement guarantees
        # (and stray negatives clip to cell 0 either way, exactly as
        # floor-then-clip would).
        n = particles.n
        sc = particles.scratch
        i = sc.array("cells_i", n, dtype=np.int64)
        j = sc.array("cells_j", n, dtype=np.int64)
        np.copyto(i, particles.x, casting="unsafe")
        np.copyto(j, particles.y, casting="unsafe")
        np.clip(i, 0, domain.nx - 1, out=i)
        np.clip(j, 0, domain.ny - 1, out=j)
        np.multiply(i, domain.ny, out=particles.cell)
        particles.cell += j
    else:
        particles.cell = domain.cell_index(particles.x, particles.y)


def randomized_sort_keys(
    cell: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    scale: int = DEFAULT_SORT_SCALE,
    mix_bits: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scaled cell index plus a sub-scale random offset.

    ``key = cell * scale + U{0..scale-1}``.  Integer-dividing a key by
    ``scale`` recovers the cell, while the low digits shuffle the
    intra-cell order between steps.

    ``mix_bits`` lets the CM engine supply its "quick & dirty"
    low-order-bit random numbers instead of a generator draw (the paper:
    "it is used during the sort to enhance mixing").

    ``scale = 1`` disables the mixing (the ablation configuration).
    """
    cell = np.asarray(cell)
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    if cell.size and cell.min() < 0:
        raise ConfigurationError("cell indices must be non-negative")
    if scale == 1:
        return cell.astype(np.int64)
    if mix_bits is not None:
        offs = np.asarray(mix_bits).astype(np.int64) % scale
        if offs.shape != cell.shape:
            raise ConfigurationError("mix_bits must match cell shape")
    else:
        if rng is None:
            raise ConfigurationError("need rng or mix_bits when scale > 1")
        offs = rng.integers(0, scale, size=cell.shape)
    return cell.astype(np.int64) * scale + offs


def cell_populations(cell: np.ndarray, n_cells: int) -> np.ndarray:
    """Histogram of particles per cell (length ``n_cells``)."""
    cell = np.asarray(cell)
    if cell.size and (cell.min() < 0 or cell.max() >= n_cells):
        raise ConfigurationError("cell index out of range")
    return np.bincount(cell, minlength=n_cells)
