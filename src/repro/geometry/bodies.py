"""Solid bodies beyond the wedge: the scenario-library shapes.

The paper implements exactly one body ("the only geometry supported is
an inclined flat plate"); the scenario registry needs more.  Every body
satisfies the same duck-typed seam the boundary machinery already uses
for :class:`~repro.geometry.wedge.Wedge`:

* ``kind`` -- short string identifying the shape (serialization);
* ``validate_in(domain)`` -- raise :class:`GeometryError` unless the
  body fits inside the tunnel;
* ``inside(x, y)`` -- mask of points strictly inside the solid;
* ``reflect_specular_report(x, y, u, v)`` -- specularly reflect the
  points that penetrated the solid, returning updated copies plus two
  masks ``(back, primary)`` of which face was hit;
* ``open_volume_fractions(domain)`` -- gas-accessible area fraction of
  every cell (supersampled, like the wedge's cut cells);
* ``project_out(x, y)`` -- last-resort positional rescue for particles
  the bounded reflection iteration failed to expel;
* ``to_config_dict()`` / :func:`body_from_dict` -- snapshot round-trip.

The boundary enforcement loop (:mod:`repro.core.boundary`) only ever
calls this seam, so a :class:`Cylinder` or :class:`Step` drops into the
simulation wherever a wedge would go.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge


def supersampled_open_fractions(
    body, domain: Domain, supersample: int = 16
) -> np.ndarray:
    """Open (gas-accessible) area fraction of every cell for any body.

    The same vectorized probe grid the wedge uses: each cell is sampled
    at ``supersample**2`` interior points against ``body.inside``.
    """
    if supersample < 2:
        raise GeometryError("supersample must be >= 2")
    body.validate_in(domain)
    s = (np.arange(supersample) + 0.5) / supersample
    ox, oy = np.meshgrid(s, s, indexing="ij")  # (S, S)
    ci = np.arange(domain.nx, dtype=np.float64)
    cj = np.arange(domain.ny, dtype=np.float64)
    px = ci[:, None, None, None] + ox[None, None, :, :]
    py = cj[None, :, None, None] + oy[None, None, :, :]
    solid = body.inside(px, py)
    return 1.0 - solid.mean(axis=(2, 3))


@dataclass(frozen=True)
class Cylinder:
    """A circular (blunt) body in the test section.

    Mach-4 flow detaches a bow shock ahead of it -- the regime the
    theta-beta-M metrology cannot reach, validated instead against
    committed golden observables (stagnation density, wake expansion).

    Parameters
    ----------
    cx, cy:
        Center, cell widths from the tunnel origin.
    radius:
        Radius in cell widths.
    """

    cx: float = 20.0
    cy: float = 20.0
    radius: float = 6.0

    kind = "cylinder"

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise GeometryError(f"radius must be positive, got {self.radius}")

    def validate_in(self, domain: Domain) -> None:
        """Raise unless the full circle sits inside the tunnel."""
        r = self.radius
        if (
            self.cx - r <= 0
            or self.cx + r >= domain.width
            or self.cy - r <= 0
            or self.cy + r >= domain.height
        ):
            raise GeometryError(
                f"cylinder (({self.cx}, {self.cy}), r={r}) does not fit "
                f"inside the {domain.nx}x{domain.ny} domain"
            )

    def inside(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mask of points strictly inside the circle."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        return (x - self.cx) ** 2 + (y - self.cy) ** 2 < self.radius**2

    def reflect_specular_report(
        self, x: np.ndarray, y: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Mirror penetrating points across the circular surface.

        A point at radial distance ``d < r`` moves to ``2r - d`` along
        the same radial ray, and the velocity reflects about the surface
        normal at the contact point (the radial direction).  The second
        mask slot (the wedge's "back face") is always empty: a circle
        has one face.
        """
        x = np.array(x, dtype=np.float64, copy=True)
        y = np.array(y, dtype=np.float64, copy=True)
        u = np.array(u, dtype=np.float64, copy=True)
        v = np.array(v, dtype=np.float64, copy=True)
        hit = self.inside(x, y)
        none = np.zeros_like(hit)
        if not np.any(hit):
            return x, y, u, v, none, none
        dx = x[hit] - self.cx
        dy = y[hit] - self.cy
        d = np.hypot(dx, dy)
        # A particle exactly at the center has no radial direction;
        # expel it against its own velocity (it arrived from there).
        deg = d < 1e-12
        if np.any(deg):
            speed = np.hypot(u[hit][deg], v[hit][deg])
            safe = np.where(speed > 0, speed, 1.0)
            dx[deg] = -(u[hit][deg] / safe)
            dy[deg] = np.where(speed > 0, -(v[hit][deg] / safe), 1.0)
            d[deg] = 1e-12
        nx_, ny_ = dx / d, dy / d
        x[hit] = self.cx + (2.0 * self.radius - d) * nx_
        y[hit] = self.cy + (2.0 * self.radius - d) * ny_
        vdotn = u[hit] * nx_ + v[hit] * ny_
        u[hit] = u[hit] - 2.0 * vdotn * nx_
        v[hit] = v[hit] - 2.0 * vdotn * ny_
        return x, y, u, v, none, hit

    def open_volume_fractions(
        self, domain: Domain, supersample: int = 16
    ) -> np.ndarray:
        """Per-cell open-area fractions (supersampled probe grid)."""
        return supersampled_open_fractions(self, domain, supersample)

    def project_out(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Push stragglers radially onto the surface (just outside)."""
        x = np.array(x, dtype=np.float64, copy=True)
        y = np.array(y, dtype=np.float64, copy=True)
        dx = x - self.cx
        dy = y - self.cy
        d = np.hypot(dx, dy)
        deg = d < 1e-12
        dy = np.where(deg, 1.0, dy)
        d = np.where(deg, 1.0, d)
        r_out = self.radius + 1e-9
        return self.cx + dx / d * r_out, self.cy + dy / d * r_out

    def to_config_dict(self) -> dict:
        """Serializable parameters, tagged with ``kind`` for dispatch."""
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class Step:
    """A rectangular block on the tunnel floor (forward-facing step).

    The tunnel cross-section contracts over the block and re-expands
    off its top-back corner -- the channel-with-sudden-expansion
    scenario: a detached shock stands ahead of the vertical front face,
    the flow accelerates through the constriction above the block, and
    a Prandtl-Meyer-like expansion empties into the low-density wake
    behind it.

    Parameters
    ----------
    x_leading:
        x of the front face, cell widths.  Must sit past the upstream
        plunger trigger so refills never land inside the solid.
    height:
        Block height, cell widths.
    length:
        Streamwise extent, cell widths.
    """

    x_leading: float = 14.0
    height: float = 10.0
    length: float = 12.0

    kind = "step"

    def __post_init__(self) -> None:
        if self.height <= 0 or self.length <= 0:
            raise GeometryError("step height and length must be positive")
        if self.x_leading <= 0:
            raise GeometryError("x_leading must be positive")

    @property
    def x_trailing(self) -> float:
        return self.x_leading + self.length

    def validate_in(self, domain: Domain) -> None:
        """Raise :class:`GeometryError` unless the block fits the tunnel."""
        if self.x_trailing >= domain.width:
            raise GeometryError(
                f"step trailing edge {self.x_trailing} outside domain "
                f"width {domain.width}"
            )
        if self.height >= domain.height:
            raise GeometryError(
                f"step height {self.height} exceeds domain height "
                f"{domain.height}"
            )

    def inside(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mask of points strictly inside the block."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        return (
            (x > self.x_leading)
            & (x < self.x_trailing)
            & (y < self.height)
            & (y >= 0)
        )

    def reflect_specular_report(
        self, x: np.ndarray, y: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Classify the crossed face by the pre-step position.

        Same idiom as the wedge's back face: the previous position is
        ``(x - u, y - v)`` (unit time step).  A particle that was ahead
        of the front face mirrors across it; one that was behind the
        back face mirrors across that; everything else entered through
        the top.  Corner-clippers that remain inside are caught by the
        caller's bounded iteration and final clamp.
        """
        x = np.array(x, dtype=np.float64, copy=True)
        y = np.array(y, dtype=np.float64, copy=True)
        u = np.array(u, dtype=np.float64, copy=True)
        v = np.array(v, dtype=np.float64, copy=True)
        hit = self.inside(x, y)
        none = np.zeros_like(hit)
        if not np.any(hit):
            return x, y, u, v, none, none
        front = hit & (u > 0) & (x - u <= self.x_leading)
        back = hit & ~front & (u < 0) & (x - u >= self.x_trailing)
        top = hit & ~front & ~back
        if np.any(front):
            x[front] = 2.0 * self.x_leading - x[front]
            u[front] = -u[front]
        if np.any(back):
            x[back] = 2.0 * self.x_trailing - x[back]
            u[back] = -u[back]
        if np.any(top):
            y[top] = 2.0 * self.height - y[top]
            v[top] = -v[top]
        return x, y, u, v, back, front | top

    def open_volume_fractions(
        self, domain: Domain, supersample: int = 16
    ) -> np.ndarray:
        """Per-cell open-area fractions (supersampled probe grid)."""
        return supersampled_open_fractions(self, domain, supersample)

    def project_out(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Lift stragglers onto the top surface, just outside."""
        x = np.array(x, dtype=np.float64, copy=True)
        y = np.array(y, dtype=np.float64, copy=True)
        bad = self.inside(x, y)
        y[bad] = self.height + 1e-9
        return x, y

    def to_config_dict(self) -> dict:
        """Serializable parameters, tagged with ``kind`` for dispatch."""
        return {"kind": self.kind, **asdict(self)}


#: Body constructors by ``kind`` (snapshot / scenario-spec dispatch).
BODY_KINDS = {
    "wedge": Wedge,
    "cylinder": Cylinder,
    "step": Step,
}


def body_from_dict(d: dict):
    """Reconstruct a body from its config dict.

    ``kind`` defaults to ``"wedge"`` so pre-registry snapshot blobs
    (which stored bare wedge parameters) keep loading unchanged.
    """
    params = dict(d)
    kind = params.pop("kind", "wedge")
    try:
        cls = BODY_KINDS[kind]
    except KeyError:
        raise GeometryError(
            f"unknown body kind {kind!r}; expected one of "
            f"{sorted(BODY_KINDS)}"
        ) from None
    return cls(**params)
