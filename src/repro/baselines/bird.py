"""Bird's time-counter collision scheme (the incumbent the paper cites).

"The most common approach is that used in Bird's Monte Carlo method
where pairs of molecules within a cell are randomly chosen and collided
until the asynchronous cell time exceeds the global simulation time.
Pryor and Burns describe a vectorized implementation of this method but
clearly it suffers a strong dependence on the number of cells in the
simulation.  At best this method can be parallelized only at the cell
level and thus is strongly influenced by statistical fluctuations in the
cell populations."

Implementation: per cell, maintain a time counter ``t_c``; each selected
collision advances it by

    delta_t = 2 / (N_c * n * sigma_T * g)

(for Maxwell molecules ``sigma_T * g`` is a constant fixed by the
freestream anchor: ``c_bar_oo / (n_oo * lambda_oo)``); pairs are drawn
uniformly within the cell and collided until the counter passes the
global time.  The per-cell sequential loop is intrinsic to the method --
exactly why it resists fine-grained parallelism -- so the emulation
keeps it as an explicit loop over cells with an inner counter loop,
vectorizing only the within-collision arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core.collision import collide_pairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream


class BirdTimeCounter:
    """Bird's per-cell time-counter scheme.

    Parameters
    ----------
    freestream:
        Supplies the Maxwell-molecule collision-rate anchor
        ``nu_oo = c_bar_oo / lambda_oo`` at density ``n_oo``.
    max_collisions_per_cell:
        Safety valve against runaway counters in nearly empty cells.
    """

    name = "bird-time-counter"

    def __init__(
        self, freestream: Freestream, max_collisions_per_cell: int = 10_000
    ) -> None:
        if freestream.is_near_continuum:
            raise ConfigurationError(
                "Bird's counter needs a finite mean free path"
            )
        self.freestream = freestream
        self.max_collisions_per_cell = max_collisions_per_cell
        # Maxwell molecules: sigma_T * g is velocity-independent.
        # Anchor: per-particle collision rate at freestream density is
        # c_bar / lambda, so sigma_T g = c_bar / (lambda * n_oo).
        self._sigma_g = freestream.mean_speed / (
            freestream.lambda_mfp * freestream.density
        )

    def collide_step(
        self, particles: ParticleArrays, n_cells: int, rng: np.random.Generator
    ) -> int:
        """Advance every cell's counter through one global time step."""
        cell = particles.cell
        order = np.argsort(cell, kind="stable")
        sorted_cells = cell[order]
        # Per-cell slices via the run-length boundaries.
        boundaries = np.flatnonzero(
            np.diff(np.concatenate(([-1], sorted_cells)))
        )
        starts = boundaries
        ends = np.concatenate((boundaries[1:], [sorted_cells.size]))
        total = 0
        for s, e in zip(starts, ends):
            total += self._collide_cell(particles, order[s:e], rng)
        return total

    def _collide_cell(
        self,
        particles: ParticleArrays,
        members: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Counter loop for one cell (the intrinsically serial part)."""
        n_c = members.size
        if n_c < 2:
            return 0
        density = float(n_c)  # unit cell volume
        delta_t = 2.0 / (n_c * density * self._sigma_g)
        # Number of counter advances needed to pass the global time,
        # with the fractional remainder resolved probabilistically.
        needed = DT / delta_t
        n_target = int(needed) + (1 if rng.random() < needed % 1.0 else 0)
        n_target = min(n_target, self.max_collisions_per_cell)
        # Collisions happen in rounds of *disjoint* random pairs: each
        # round re-deals the cell so sequential collisions see their
        # predecessors' outcomes (rounds are ordered; pairs within a
        # round touch distinct molecules, so batching them is exact).
        done = 0
        while done < n_target:
            deal = rng.permutation(members)
            k = min(n_target - done, n_c // 2)
            firsts = deal[0 : 2 * k : 2]
            seconds = deal[1 : 2 * k : 2]
            collide_pairs(particles, firsts, seconds, rng=rng)
            done += k
        return done

    def expected_collisions_per_step(self, n_particles: int) -> float:
        """Mean collisions per step at freestream density (for tests)."""
        nu = self.freestream.mean_speed / self.freestream.lambda_mfp
        return 0.5 * n_particles * nu * DT
