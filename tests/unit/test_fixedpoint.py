"""Unit tests for the Q8.23 fixed-point substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FixedPointOverflowError
from repro.fixedpoint import Q8_23, QFormat, quick_dirty_bits, quick_dirty_uniform


class TestQFormatBasics:
    def test_paper_format_resolution(self):
        # 23 fractional bits: resolution 2**-23, matching the IEEE
        # single mantissa the paper compares against.
        assert Q8_23.frac_bits == 23
        assert Q8_23.resolution == pytest.approx(2**-23)

    def test_range_is_plus_minus_256(self):
        assert Q8_23.max_value == pytest.approx(256.0, rel=1e-6)
        assert Q8_23.min_value == -256.0

    def test_encode_decode_roundtrip(self):
        vals = np.array([0.0, 1.0, -1.5, 97.25, -0.140625])
        assert np.allclose(Q8_23.decode(Q8_23.encode(vals)), vals)

    def test_encode_rounds_to_nearest(self):
        # A value halfway below one LSB should round to the nearest code.
        v = 3 * Q8_23.resolution / 4
        assert Q8_23.decode(Q8_23.encode(v)) == pytest.approx(
            Q8_23.resolution, abs=1e-12
        )

    def test_encode_overflow_raises(self):
        with pytest.raises(FixedPointOverflowError):
            Q8_23.encode(np.array([300.0]))

    def test_encode_negative_overflow_raises(self):
        with pytest.raises(FixedPointOverflowError):
            Q8_23.encode(np.array([-257.0]))

    def test_invalid_frac_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QFormat(frac_bits=0)
        with pytest.raises(ConfigurationError):
            QFormat(frac_bits=31)

    def test_only_32bit_words(self):
        with pytest.raises(ConfigurationError):
            QFormat(frac_bits=23, word_bits=16)


class TestArithmetic:
    def test_add_sub_exact(self):
        a = Q8_23.encode(np.array([1.25, -2.5]))
        b = Q8_23.encode(np.array([0.75, 0.5]))
        assert np.allclose(Q8_23.decode(Q8_23.add(a, b)), [2.0, -2.0])
        assert np.allclose(Q8_23.decode(Q8_23.sub(a, b)), [0.5, -3.0])

    def test_add_overflow_detected(self):
        a = Q8_23.encode(np.array([255.0]))
        with pytest.raises(FixedPointOverflowError):
            Q8_23.add(a, a)

    def test_add_wraps_when_unchecked(self):
        q = QFormat(frac_bits=23, check_overflow=False)
        a = q.encode(np.array([255.0]))
        out = q.add(a, a)  # wraps like hardware
        assert out.dtype == np.int32

    def test_mul_matches_float(self):
        a = Q8_23.encode(np.array([1.5, -2.25, 0.125]))
        b = Q8_23.encode(np.array([2.0, 4.0, -8.0]))
        assert np.allclose(
            Q8_23.decode(Q8_23.mul(a, b)), [3.0, -9.0, -1.0], atol=1e-6
        )


class TestHalving:
    def test_truncate_rounds_toward_zero(self):
        a = np.array([5, -5, 4, -4], dtype=np.int32)
        out = Q8_23.halve(a, mode="truncate")
        assert out.tolist() == [2, -2, 2, -2]

    def test_floor_mode(self):
        a = np.array([5, -5], dtype=np.int32)
        out = Q8_23.halve(a, mode="floor")
        assert out.tolist() == [2, -3]

    def test_stochastic_even_exact(self):
        a = np.array([4, -4, 0], dtype=np.int32)
        bits = np.array([1, 1, 1], dtype=np.int32)
        out = Q8_23.halve(a, mode="stochastic", rand_bits=bits)
        # (4+1)>>1 == 2, (-4+1)>>1 == -2 (floor of -1.5 is -2)... check:
        assert out[0] == 2
        assert out[2] == 0

    def test_stochastic_is_unbiased_on_odd(self):
        rng = np.random.default_rng(0)
        a = np.full(200_000, 7, dtype=np.int32)
        bits = rng.integers(0, 2, size=a.size, dtype=np.int32)
        out = Q8_23.halve(a, mode="stochastic", rand_bits=bits)
        assert out.mean() == pytest.approx(3.5, abs=0.01)

    def test_truncate_is_biased_on_odd(self):
        a = np.full(1000, 7, dtype=np.int32)
        out = Q8_23.halve(a, mode="truncate")
        assert out.mean() == pytest.approx(3.0)

    def test_exact_paper_mode_biased_on_even(self):
        rng = np.random.default_rng(0)
        a = np.full(100_000, 8, dtype=np.int32)
        bits = rng.integers(0, 2, size=a.size, dtype=np.int32)
        out = Q8_23.halve(a, mode="exact_paper", rand_bits=bits)
        assert out.mean() == pytest.approx(4.5, abs=0.02)

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigurationError):
            Q8_23.halve(np.array([1], dtype=np.int32), mode="banker")

    def test_truncation_shrinks_magnitude_statistically(self):
        # The energy-loss mechanism: |halve(x)| <= |x|/2 always under
        # truncation.
        rng = np.random.default_rng(3)
        a = rng.integers(-1000, 1000, size=10_000).astype(np.int32)
        out = Q8_23.halve(a, mode="truncate")
        assert np.all(np.abs(out) <= np.abs(a) / 2.0)


class TestQuickDirtyBits:
    def test_extracts_masked_bits(self):
        words = np.array([0b101101], dtype=np.int32)
        assert quick_dirty_bits(words, 3).tolist() == [0b101]
        assert quick_dirty_bits(words, 3, shift=3).tolist() == [0b101]

    def test_uniform_in_unit_interval(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**31 - 1, size=5000).astype(np.int32)
        u = quick_dirty_uniform(words)
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.02

    def test_bad_args_raise(self):
        w = np.array([1], dtype=np.int32)
        with pytest.raises(ConfigurationError):
            quick_dirty_bits(w, 0)
        with pytest.raises(ConfigurationError):
            quick_dirty_bits(w, 17)
        with pytest.raises(ConfigurationError):
            quick_dirty_bits(w, 8, shift=30)
