"""VAL1 -- "results from simulations at differing Mach numbers and wedge
angles indicate that this implementation is performing correctly."

The paper's closing validation sentence, made concrete: run half-scale
wedge solutions across (Mach, angle) pairs and check every shock angle
and density ratio against the theta-beta-M / Rankine-Hugoniot oracle.
"""

import math

from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream

#: (Mach, wedge angle) pairs; all attached-shock conditions with shock
#: layers thick enough to measure on the half-scale grid (the shallow
#: M6 / 25-degree combination, for example, grows only ~0.2 cells of
#: layer per cell of ramp -- unmeasurable at this resolution).
CASES = ((3.0, 20.0), (4.0, 30.0), (5.0, 34.0))


def _solve(mach: float, angle: float):
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(
            mach=mach,
            # Keep the fastest stream under ~0.7 cells/step.
            c_mp=min(0.14, 0.56 / mach / math.sqrt(0.7)),
            lambda_mfp=0.0,
            density=14.0,
        ),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=angle),
        seed=int(mach * 100 + angle),
    )
    sim = Simulation(cfg)
    sim.run(260)
    sim.run(260, sample=True)
    return sim


def test_val_mach_and_angle_sweep(benchmark, emit):
    rec = ExperimentRecord(
        "VAL1", "shock angle & density ratio across Mach / wedge angle"
    )
    solutions = {}
    for mach, angle in CASES[:-1]:
        solutions[(mach, angle)] = _solve(mach, angle)

    # Benchmark the last case's full solve (the timed workload).
    def last_case():
        return _solve(*CASES[-1])

    solutions[CASES[-1]] = benchmark.pedantic(last_case, rounds=1, iterations=1)

    all_ok = True
    for (mach, angle), sim in solutions.items():
        rho = sim.density_ratio_field()
        beta = theory.shock_angle_deg(mach, angle)
        ratio = theory.oblique_shock_density_ratio(mach, math.radians(angle))
        fit = fit_shock_angle(rho, sim.config.wedge, post_shock_ratio=ratio)
        plateau = post_shock_plateau(rho, sim.config.wedge, fit)
        m_beta = rec.add(
            f"shock angle, M{mach:g} / {angle:g} deg wedge",
            beta,
            fit.angle_deg,
            rel_tol=0.08,
        )
        m_rho = rec.add(
            f"density ratio, M{mach:g} / {angle:g} deg wedge",
            ratio,
            plateau,
            rel_tol=0.1,
        )
        all_ok = all_ok and m_beta.agrees() and m_rho.agrees()
    emit(rec)
    assert all_ok
