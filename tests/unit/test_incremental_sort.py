"""Unit tests for the temporal-coherence sort kernel and its pairing.

Pins the contracts the incremental hot path relies on:

* :func:`reflection_slots` (the scalar reference) yields ``m // 2``
  disjoint same-cell pairs for *every* reflection offset, never pairs a
  slot with itself, and covers every slot when the cell is even-sized;
* the vectorized :func:`reflection_pairs` matches the scalar reference
  exactly and consumes a counts-dependent (order-independent) amount of
  the rng stream;
* :class:`IncrementalSorter` maintains the canonical ``(cell, row)``
  order through repair and rebuild identically (path independence),
  tracks row surgery through the listener protocol, and recovers from
  rebinding by one full rebuild;
* the fused selection/collision kernel is bitwise identical to the
  split ``select_collisions`` + ``collide_pairs`` pipeline on the same
  pair list and rng stream.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.cells import assign_cells
from repro.core.collision import collide_pairs
from repro.core.pairing import (
    CandidatePairs,
    reflection_pairs,
    reflection_slots,
)
from repro.core.particles import ParticleArrays
from repro.core.selection import fused_select_collide, select_collisions
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sortstep import IncrementalSorter, sort_by_cell
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, hard_sphere


class _FixedDraw:
    """An rng stub whose ``integers`` returns a preset per-cell draw."""

    def __init__(self, s):
        self.s = np.asarray(s, dtype=np.int64)

    def integers(self, low, high):
        return self.s.copy()


class TestReflectionSlots:
    @pytest.mark.parametrize("m", range(13))
    def test_every_offset_yields_disjoint_pairs(self, m):
        for s in range(max(m, 1)):
            pairs = reflection_slots(m, s)
            assert len(pairs) == m // 2
            seen = [slot for pair in pairs for slot in pair]
            # Disjoint: no slot appears twice across the pairing.
            assert len(seen) == len(set(seen))
            assert all(0 <= slot < m for slot in seen)
            # Never a self-pair.
            assert all(a != b for a, b in pairs)
            if m and m % 2 == 0:
                # Even cells: the pairing is a perfect matching.
                assert sorted(seen) == list(range(m))

    @pytest.mark.parametrize("m", [2, 4, 5, 8, 11])
    def test_partner_of_a_slot_is_uniform_over_offsets(self, m):
        # Across all m reflection offsets, slot 0 meets every other
        # slot equally often -- the uniformity that replaces the
        # counting kernel's intra-cell shuffle.
        partner_counts = {}
        for s in range(m):
            for a, b in reflection_slots(m, s):
                if a == 0:
                    partner_counts[b] = partner_counts.get(b, 0) + 1
                elif b == 0:
                    partner_counts[a] = partner_counts.get(a, 0) + 1
        counts = list(partner_counts.values())
        assert max(counts) - min(counts) <= 1


class TestReflectionPairs:
    def test_vectorized_matches_scalar_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n_cells = int(rng.integers(1, 10))
            counts = rng.integers(0, 13, size=n_cells).astype(np.int64)
            n = int(counts.sum())
            offsets = np.concatenate(
                [[0], np.cumsum(counts)]
            ).astype(np.int64)
            order = rng.permutation(n).astype(np.intp)
            s = np.array(
                [rng.integers(0, max(c, 1)) for c in counts],
                dtype=np.int64,
            )
            rp = reflection_pairs(order, counts, offsets, _FixedDraw(s))
            ref_first, ref_second, ref_cell = [], [], []
            for c in range(n_cells):
                base = int(offsets[c])
                for a, b in reflection_slots(int(counts[c]), int(s[c])):
                    ref_first.append(order[base + a])
                    ref_second.append(order[base + b])
                    ref_cell.append(c)
            assert np.array_equal(rp.first, np.array(ref_first, dtype=np.intp))
            assert np.array_equal(
                rp.second, np.array(ref_second, dtype=np.intp)
            )
            assert np.array_equal(rp.cell, np.array(ref_cell, dtype=np.int64))

    def test_all_pairs_are_same_cell_rows(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 9, size=20).astype(np.int64)
        n = int(counts.sum())
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        order = rng.permutation(n).astype(np.intp)
        cell_of_row = np.empty(n, dtype=np.int64)
        for c in range(20):
            cell_of_row[order[offsets[c] : offsets[c + 1]]] = c
        rp = reflection_pairs(
            order, counts, offsets, np.random.default_rng(1)
        )
        assert rp.n_pairs == int((counts // 2).sum())
        assert np.array_equal(cell_of_row[rp.first], rp.cell)
        assert np.array_equal(cell_of_row[rp.second], rp.cell)
        assert not np.any(rp.first == rp.second)

    def test_rng_consumption_depends_only_on_counts(self):
        # Two different canonical orders with the same per-cell counts
        # must leave a seeded stream in the same position -- the
        # property that makes repair/rebuild history invisible.
        counts = np.array([3, 0, 4, 2], dtype=np.int64)
        n = int(counts.sum())
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        order_a = np.arange(n, dtype=np.intp)
        order_b = order_a.copy()
        # Swap two rows inside one cell's run: same counts, new order.
        order_b[[0, 1]] = order_b[[1, 0]]
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        reflection_pairs(order_a, counts, offsets, rng_a)
        reflection_pairs(order_b, counts, offsets, rng_b)
        assert rng_a.random() == rng_b.random()


def _canonical_invariants(sorter, particles):
    n = particles.n
    order = sorter._order[:n]
    assert np.array_equal(np.sort(order), np.arange(n))
    keys = particles.cell[order].astype(np.int64) * n + order
    if n > 1:
        assert np.all(np.diff(keys) > 0)


class TestIncrementalSorter:
    def _population(self, rng, n=500, n_cells=24):
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=8.0)
        parts = ParticleArrays.from_freestream(rng, n, fs, (0, 10), (0, 10))
        parts.cell[:] = rng.integers(0, n_cells, size=parts.n)
        return parts

    def test_first_step_rebuilds_to_canonical_order(self, rng):
        parts = self._population(rng)
        sorter = IncrementalSorter(24)
        res = sorter.step(parts)
        assert res.rebuilt and res.moved_fraction == 1.0
        _canonical_invariants(sorter, parts)
        assert np.array_equal(
            res.counts, np.bincount(parts.cell, minlength=24)
        )

    def test_repair_equals_rebuild(self, rng):
        # Path independence: after a small perturbation, the repaired
        # order is bit-identical to a from-scratch rebuild.
        parts = self._population(rng)
        repairer = IncrementalSorter(24, rebuild_threshold=1.0)
        rebuilder = IncrementalSorter(24, rebuild_threshold=0.0)
        repairer.step(parts)
        for _ in range(5):
            idx = rng.choice(parts.n, size=17, replace=False)
            parts.cell[idx] = rng.integers(0, 24, size=17)
            res_rep = repairer.step(parts)
            assert not res_rep.rebuilt
            order_rep = res_rep.order.copy()
            parts.order_listener = None  # detach before rebinding
            res_reb = rebuilder.step(parts)
            assert res_reb.rebuilt
            assert np.array_equal(order_rep, res_reb.order)
            parts.order_listener = None
            repairer.prepare(parts)  # re-attach without invalidating
            _canonical_invariants(repairer, parts)

    def test_row_surgery_is_tracked_through_the_listener(self, rng):
        parts = self._population(rng)
        parts.enable_scratch()
        sorter = IncrementalSorter(24, rebuild_threshold=1.0)
        sorter.step(parts)
        # Removal backfills holes from the tail -> dirty rows.
        mask = np.zeros(parts.n, dtype=bool)
        mask[rng.choice(parts.n, size=11, replace=False)] = True
        parts.remove_inplace(mask)
        res = sorter.step(parts)
        assert not res.rebuilt  # repairable: only the holes moved
        _canonical_invariants(sorter, parts)
        # Appended arrivals are dirty too.
        extra = self._population(np.random.default_rng(9), n=23)
        parts.append_inplace(extra)
        res = sorter.step(parts)
        assert not res.rebuilt
        _canonical_invariants(sorter, parts)

    def test_rebinding_invalidates_and_rebuilds(self, rng):
        parts_a = self._population(rng)
        parts_b = self._population(np.random.default_rng(5))
        sorter = IncrementalSorter(24, rebuild_threshold=1.0)
        sorter.step(parts_a)
        res = sorter.step(parts_b)  # new identity -> invalidation
        assert res.rebuilt and res.moved_fraction == 1.0
        assert parts_a.order_listener is None
        assert parts_b.order_listener is sorter
        _canonical_invariants(sorter, parts_b)

    def test_wholesale_reorder_invalidates(self, rng):
        parts = self._population(rng)
        sorter = IncrementalSorter(24, rebuild_threshold=1.0)
        sorter.step(parts)
        parts.reorder_inplace(rng.permutation(parts.n))
        res = sorter.step(parts)
        assert res.rebuilt
        _canonical_invariants(sorter, parts)

    def test_sort_by_cell_rejects_incremental(self, rng):
        parts = self._population(rng)
        with pytest.raises(ConfigurationError):
            sort_by_cell(parts, rng=rng, kernel="incremental")

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            IncrementalSorter(0)
        with pytest.raises(ConfigurationError):
            IncrementalSorter(8, rebuild_threshold=1.5)


class TestFusedEquivalence:
    def _setup(self, seed=11, n=600, n_cells=16):
        rng = np.random.default_rng(seed)
        fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=8.0)
        parts = ParticleArrays.from_freestream(rng, n, fs, (0, 10), (0, 10))
        parts.cell[:] = rng.integers(0, n_cells, size=parts.n)
        sorter = IncrementalSorter(n_cells)
        res = sorter.step(parts)
        rp = reflection_pairs(
            res.order, res.counts, res.offsets, np.random.default_rng(2)
        )
        return parts, rp, res.counts, fs

    @pytest.mark.parametrize("iep", [1.0, 0.6])
    def test_fused_is_bitwise_equal_to_split_pipeline(self, iep):
        parts_f, rp, counts, fs = self._setup()
        parts_s = parts_f.copy()
        model = MolecularModel()

        fused = fused_select_collide(
            parts_f, rp, fs, model, counts,
            rng=np.random.default_rng(99),
            internal_exchange_probability=iep,
        )

        # Split reference on the same row pairs: every reflection pair
        # is same-cell, so the candidate mask is all-True.
        pairs = CandidatePairs(
            first=rp.first, second=rp.second,
            same_cell=np.ones(rp.n_pairs, dtype=bool), adjacent=False,
        )
        rng_s = np.random.default_rng(99)
        sel = select_collisions(parts_s, pairs, fs, model, counts, rng=rng_s)
        acc = np.flatnonzero(sel.accept)
        stats = collide_pairs(
            parts_s, rp.first[acc], rp.second[acc], rng=rng_s,
            internal_exchange_probability=iep,
        )

        assert fused.n_collisions == stats.n_collisions
        assert fused.n_candidates == rp.n_pairs
        assert np.isclose(
            fused.probability_sum, float(sel.probability.sum())
        )
        n = parts_f.n
        for col in ("u", "v", "w"):
            assert np.array_equal(
                getattr(parts_f, col)[:n], getattr(parts_s, col)[:n]
            ), col
        assert np.array_equal(parts_f.rot[:n], parts_s.rot[:n])
        assert np.array_equal(parts_f.perm[:n], parts_s.perm[:n])

    def test_fused_speed_dependent_model_matches_split(self):
        # Exercise the needs_speed branch (eq. 7) too.
        parts_f, rp, counts, fs = self._setup(seed=13)
        parts_s = parts_f.copy()
        model = hard_sphere()
        assert model.speed_exponent != 0.0
        fused_select_collide(
            parts_f, rp, fs, model, counts, rng=np.random.default_rng(4)
        )
        pairs = CandidatePairs(
            first=rp.first, second=rp.second,
            same_cell=np.ones(rp.n_pairs, dtype=bool), adjacent=False,
        )
        rng_s = np.random.default_rng(4)
        sel = select_collisions(parts_s, pairs, fs, model, counts, rng=rng_s)
        acc = np.flatnonzero(sel.accept)
        collide_pairs(parts_s, rp.first[acc], rp.second[acc], rng=rng_s)
        n = parts_f.n
        assert np.array_equal(parts_f.u[:n], parts_s.u[:n])
        assert np.array_equal(parts_f.rot[:n], parts_s.rot[:n])


class TestSimulationWiring:
    def test_incremental_is_the_default_kernel(self):
        cfg = SimulationConfig(
            domain=Domain(20, 12),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=4.0
            ),
            wedge=None,
            seed=3,
        )
        assert cfg.sort_kernel == "incremental"
        sim = Simulation(cfg, hotpath=True)
        diag = sim.step()
        assert sim.sort_state is not None
        assert diag.sort_moved_fraction is not None
        assert diag.sort_rebuilds >= 1  # first step always rebuilds

    def test_counting_kernel_reports_no_moved_fraction(self):
        cfg = SimulationConfig(
            domain=Domain(20, 12),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=4.0
            ),
            wedge=None,
            seed=3,
            sort_kernel="counting",
        )
        sim = Simulation(cfg, hotpath=True)
        diag = sim.step()
        assert diag.sort_moved_fraction is None
        assert diag.sort_rebuilds is None

    def test_counting_trajectory_unchanged_by_kernel_flag(self):
        # kernel="counting" must stay bitwise independent of the
        # incremental machinery existing at all.
        base = SimulationConfig(
            domain=Domain(20, 12),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=4.0
            ),
            wedge=None,
            seed=3,
            sort_kernel="counting",
        )
        sims = [Simulation(base, hotpath=True) for _ in range(2)]
        for _ in range(4):
            diags = [s.step() for s in sims]
        assert diags[0].n_flow == diags[1].n_flow
        a, b = sims[0].particles, sims[1].particles
        assert np.array_equal(a.u[: a.n], b.u[: b.n])
