"""End-to-end telemetry: one stream across serial/sharded/supervised runs.

The acceptance contract of the observability milestone:

* a sharded wedge run with telemetry produces a parseable
  ``events.jsonl``, a well-formed Prometheus snapshot and a valid
  Chrome trace with one timeline per worker;
* a supervised sharded run with an injected worker crash lands spans,
  metric samples, audit results and the recovery event in a *single*
  JSONL stream that the report CLI renders;
* ``ShardedBackend._merge_diagnostics`` aggregates per-shard ledgers
  correctly (the merged phase seconds are the per-shard sums) in both
  the inline and forked execution modes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.parallel.backend import ShardedBackend
from repro.perf import PAPER_PHASES
from repro.physics.freestream import Freestream
from repro.telemetry import EventStream, Telemetry, validate_trace
from repro.telemetry.report import render, summarize

pytestmark = pytest.mark.telemetry

FAST_TIMEOUT = 20.0


def _small_config(seed: int = 42, nx: int = 48, ny: int = 24) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=nx, ny=ny),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=2.0, density=8.0
        ),
        wedge=Wedge(x_leading=10.0, base=12.0, angle_deg=30.0),
        seed=seed,
    )


class TestSerialTelemetry:
    def test_serial_run_produces_all_artifacts(self, tmp_path):
        tel = Telemetry(run_dir=tmp_path, sample_every=5, observables_every=10)
        sim = Simulation(_small_config(), telemetry=tel)
        sim.run(20)
        sim.close()
        tel.close()

        events = EventStream.load(tmp_path)
        kinds = {e["kind"] for e in events}
        assert {"run_start", "metrics", "span", "observables",
                "run_end"} <= kinds

        trace = json.loads((tmp_path / "trace.json").read_text())
        assert validate_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert set(PAPER_PHASES) <= names

        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_steps_total 20" in prom
        assert "repro_step_us_per_particle_count 20" in prom

    def test_metrics_samples_track_population(self, tmp_path):
        tel = Telemetry(run_dir=tmp_path, sample_every=5)
        sim = Simulation(_small_config(), telemetry=tel)
        sim.run(10)
        n = sim.particles.n
        sim.close()
        tel.close()
        samples = [
            e for e in EventStream.load(tmp_path) if e["kind"] == "metrics"
        ]
        assert samples and samples[-1]["n_flow"] == n
        assert samples[-1]["us_per_particle"] > 0


@pytest.mark.sharded
class TestShardedTelemetry:
    @pytest.mark.parametrize("processes", [False, True])
    def test_sharded_trace_has_worker_timelines(self, tmp_path, processes):
        tel = Telemetry(run_dir=tmp_path, sample_every=5)
        sim = Simulation(
            _small_config(),
            backend=ShardedBackend(
                2, processes=processes, barrier_timeout=FAST_TIMEOUT
            ),
            telemetry=tel,
        )
        sim.run(12)
        sim.gather()
        sim.close()
        tel.close()

        trace = json.loads((tmp_path / "trace.json").read_text())
        assert validate_trace(trace) == []
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # One timeline per shard: both tids present, phase_a/phase_b on
        # each, with per-phase worker spans inside.
        tids = {e["tid"] for e in xs}
        assert tids == {0, 1}
        names = {e["name"] for e in xs}
        assert {"phase_a", "phase_b", "motion", "sort", "selection",
                "collision"} <= names
        if processes:
            assert len({e["pid"] for e in xs}) == 2

        events = EventStream.load(tmp_path)
        imb = [
            e["load_imbalance"]
            for e in events
            if e["kind"] == "metrics" and "load_imbalance" in e
        ]
        assert imb and all(v >= 1.0 for v in imb)
        prom = (tmp_path / "metrics.prom").read_text()
        assert 'repro_shard_load{shard="0"}' in prom
        assert "repro_migrations_total" in prom
        assert "repro_exchange_occupancy_peak" in prom

    def test_jsonl_parses_line_by_line(self, tmp_path):
        tel = Telemetry(run_dir=tmp_path, sample_every=5)
        sim = Simulation(
            _small_config(),
            backend=ShardedBackend(2, processes=False),
            telemetry=tel,
        )
        sim.run(10)
        sim.close()
        tel.close()
        for line in (tmp_path / "events.jsonl").read_text().splitlines():
            record = json.loads(line)
            assert "kind" in record and "time" in record


@pytest.mark.sharded
class TestMergeDiagnostics:
    @pytest.mark.parametrize("processes", [False, True])
    def test_merged_phase_seconds_are_shard_sums(self, processes):
        sim = Simulation(
            _small_config(),
            backend=ShardedBackend(
                2, processes=processes, barrier_timeout=FAST_TIMEOUT
            ),
        )
        try:
            diag = None
            for _ in range(5):
                diag = sim.step()
            d = sim.backend._shared["diag"]
            from repro.parallel.backend import PHASE_COLUMNS

            for name, col in PHASE_COLUMNS:
                merged = diag.phase_seconds[name]
                assert merged == pytest.approx(float(d[:, col].sum()))
                assert merged > 0.0
            # The driver ledger accumulated the same totals across steps.
            assert sim.perf.steps == 5
            assert sim.perf.particle_steps > 0
        finally:
            sim.close()

    def test_merged_n_flow_feeds_perf_series(self):
        sim = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        try:
            total = 0
            for _ in range(3):
                diag = sim.step()
                total += diag.n_flow
            assert sim.perf.particle_steps == total
            us = sim.perf.us_per_particle()
            assert us and all(v > 0 for v in us.values())
        finally:
            sim.close()

    def test_recovery_events_survive_merge(self):
        from repro.resilience.supervisor import RecoveryEvent

        sim = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        try:
            diag = sim.step()
            event = RecoveryEvent(
                step=1, error="WorkerCrashError", detail="x", retry=1,
                restored_step=0, workers_after=2,
            )
            merged = dataclasses.replace(diag, recovery=(event,))
            assert merged.recovery == (event,)
            assert merged.n_flow == diag.n_flow
            assert merged.phase_seconds == diag.phase_seconds
        finally:
            sim.close()


@pytest.mark.sharded
@pytest.mark.resilience
class TestSupervisedTelemetry:
    def test_crash_recovery_lands_in_single_stream(self, tmp_path, capsys):
        """Acceptance: supervised sharded run + injected worker crash."""
        from repro.resilience import SupervisedRun
        from repro.resilience.faults import FaultPlan, FaultSpec

        tel_dir = tmp_path / "telemetry"
        run_dir = tmp_path / "run"
        plan = FaultPlan([FaultSpec(kind="crash", step=12, shard=1)])
        tel = Telemetry(
            run_dir=tel_dir, sample_every=5, observables_every=10
        )
        sim = Simulation(
            _small_config(seed=7),
            backend=ShardedBackend(
                2, barrier_timeout=FAST_TIMEOUT, fault_plan=plan
            ),
            telemetry=tel,
        )
        run = SupervisedRun(
            sim, run_dir, checkpoint_every=10, audit_every=10,
            backoff_base=0.0, fault_plan=plan,
        )
        with run:
            run.run_schedule([(20, False)])
        tel.close()

        events = EventStream.load(tel_dir)
        kinds = {}
        for e in events:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        # One stream carries everything the acceptance criteria name.
        assert kinds.get("span", 0) > 0
        assert kinds.get("metrics", 0) > 0
        assert kinds.get("audit", 0) > 0
        assert kinds.get("recovery", 0) == 1
        assert kinds.get("checkpoint", 0) > 0

        # Audits carry the auditor's report payload.
        audit = next(e for e in events if e["kind"] == "audit")
        assert audit["ok"] is True
        assert "counts" in audit["checks"]

        # The journal still exists separately with the same recovery.
        journal = EventStream.load_path(run_dir / "journal.jsonl")
        assert any(e["kind"] == "recovery" for e in journal)

        # The report CLI renders the stream.
        out = render(summarize(tel_dir))
        assert "recoveries" in out

        # Metric counters saw the recovery and the audits.
        snap = tel.snapshot()["metrics"]
        assert snap["repro_recoveries_total"]["value"] == 1
        assert snap["repro_audits_total"]["value"] >= 1
        assert snap["repro_audit_failures_total"]["value"] == 0


class TestCostLedgerExport:
    def test_cm_cost_lands_in_stream(self, tmp_path):
        from repro.cm.machine import CM2
        from repro.cm.timing import CM2TimingModel, CostLedger

        ledger = CostLedger()
        with ledger.phase("motion"):
            ledger.charge("alu", 100.0)
        with ledger.phase("sort"):
            ledger.charge("route_off", 300.0)
        ledger.end_step()

        stream = EventStream(tmp_path)
        tm = CM2TimingModel(machine=CM2(n_processors=512))
        record = ledger.export(
            stream, timing_model=tm, n_flow_particles=1000
        )
        assert record["steps"] == 1
        assert record["fractions"]["sort"] == pytest.approx(0.75)
        loaded = EventStream.load(tmp_path)
        assert loaded[0]["kind"] == "cm_cost"
        assert loaded[0]["us_per_particle_total"] > 0

    def test_export_through_telemetry_hub(self, tmp_path):
        from repro.cm.timing import CostLedger

        tel = Telemetry(run_dir=tmp_path)
        ledger = CostLedger()
        with ledger.phase("collision"):
            ledger.charge("alu", 10.0)
        ledger.end_step()
        ledger.export(tel)
        tel.close()
        assert any(
            e["kind"] == "cm_cost" for e in EventStream.load(tmp_path)
        )
