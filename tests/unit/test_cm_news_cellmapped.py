"""Unit tests for the NEWS grid and the cell-mapped motion model."""

import numpy as np
import pytest

from repro.cm.cellmapped import cell_mapped_motion_step
from repro.cm.news import (
    NEIGHBOUR_OFFSETS,
    news_shift,
    serialized_neighbour_exchange,
)
from repro.cm.timing import CostLedger
from repro.core.particles import ParticleArrays
from repro.errors import MachineError
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream


class TestNewsShift:
    def test_cardinal_shift(self):
        g = np.arange(6).reshape(3, 2)
        out = news_shift(g, 1, 0, fill=-1)
        assert out[0].tolist() == [-1, -1]
        assert out[1].tolist() == [0, 1]

    def test_negative_shift(self):
        g = np.arange(6).reshape(3, 2)
        out = news_shift(g, -1, 0, fill=-1)
        assert out[2].tolist() == [-1, -1]
        assert out[0].tolist() == [2, 3]

    def test_diagonal_costs_two_hops(self):
        ledger1, ledger2 = CostLedger(), CostLedger()
        g = np.ones((4, 4))
        news_shift(g, 1, 0, ledger=ledger1)
        news_shift(g, 1, 1, ledger=ledger2)
        assert ledger2.total() == pytest.approx(2 * ledger1.total())

    def test_shift_validation(self):
        with pytest.raises(MachineError):
            news_shift(np.ones(4), 1, 0)
        with pytest.raises(MachineError):
            news_shift(np.ones((3, 3)), 2, 0)

    def test_roundtrip_interior(self):
        g = np.arange(25).reshape(5, 5)
        back = news_shift(news_shift(g, 1, 0), -1, 0)
        assert np.array_equal(back[1:4], g[1:4])


class TestSerializedExchange:
    def test_particles_arrive_at_neighbours(self):
        counts = np.zeros((4, 4), dtype=np.int64)
        counts[1, 1] = 3
        incoming, stats = serialized_neighbour_exchange({(1, 0): counts})
        assert incoming[2, 1] == 3
        assert incoming.sum() == 3

    def test_conservation_with_interior_sources(self, rng):
        # Interior senders: everything sent arrives somewhere.
        outgoing = {}
        total = 0
        for off in NEIGHBOUR_OFFSETS[:4]:
            grid = np.zeros((6, 6), dtype=np.int64)
            grid[2:4, 2:4] = rng.integers(0, 5, size=(2, 2))
            outgoing[off] = grid
            total += int(grid.sum())
        incoming, _ = serialized_neighbour_exchange(outgoing)
        assert incoming.sum() == total

    def test_simd_pacing_cost(self):
        # One busy cell paces the whole event.
        sparse = np.zeros((8, 8), dtype=np.int64)
        sparse[0, 0] = 10
        dense = np.full((8, 8), 10, dtype=np.int64)
        _, s_sparse = serialized_neighbour_exchange({(1, 0): sparse})
        _, s_dense = serialized_neighbour_exchange({(1, 0): dense})
        assert s_sparse["total_cost"] == s_dense["total_cost"]
        assert s_sparse["mean_event_utilization"] < s_dense["mean_event_utilization"]

    def test_bad_offset_rejected(self):
        with pytest.raises(MachineError):
            serialized_neighbour_exchange({(2, 0): np.zeros((3, 3))})


class TestCellMappedStep:
    @pytest.fixture
    def snapshot(self, rng):
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        d = Domain(20, 12)
        pop = ParticleArrays.from_freestream(
            rng, 2000, fs, (0, d.width), (0, d.height)
        )
        return pop, d

    def test_report_fields_sane(self, snapshot):
        pop, d = snapshot
        rep = cell_mapped_motion_step(pop, d)
        assert 0.0 < rep.migration_fraction < 1.0
        assert rep.exchange_cost > 0
        assert rep.compute_cost > 0
        assert rep.memory_slots_per_processor >= 1
        assert 0.0 < rep.mean_event_utilization <= 1.0

    def test_cell_mapping_costs_more(self, snapshot):
        # The paper's conclusion, measured: the cell mapping's motion
        # step is strictly more expensive than the particle mapping's.
        pop, d = snapshot
        rep = cell_mapped_motion_step(pop, d)
        assert rep.cost_ratio > 1.0

    def test_imbalanced_snapshot_is_much_worse(self, rng):
        # Pile particles into a few cells (post-shock compression):
        # pacing and memory penalties explode.
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
        d = Domain(20, 12)
        pop = ParticleArrays.from_freestream(rng, 2000, fs, (0, 3), (0, 3))
        rep = cell_mapped_motion_step(pop, d)
        uniform = ParticleArrays.from_freestream(
            rng, 2000, fs, (0, d.width), (0, d.height)
        )
        rep_uniform = cell_mapped_motion_step(uniform, d)
        assert rep.cost_ratio > 3 * rep_uniform.cost_ratio
        assert (
            rep.memory_slots_per_processor
            > 5 * rep_uniform.memory_slots_per_processor
        )

    def test_empty_snapshot_rejected(self):
        with pytest.raises(MachineError):
            cell_mapped_motion_step(ParticleArrays.empty(), Domain(4, 4))
