"""Freestream conditions in the Baganoff normalization.

Everything the simulation needs to know about the oncoming stream is
bundled in :class:`Freestream`:

* the Mach number (the paper validates at Mach 4),
* the thermal velocity scale ``c_mp`` = most probable speed in *cell
  widths per time step* (sets how fast the simulation moves through the
  grid; the motion/collision splitting of the Boltzmann equation wants
  particles to cross at most ~1 cell per step),
* the freestream mean free path ``lambda_mfp`` in cell widths
  (``0`` selects the paper's near-continuum limit where every candidate
  pair collides),
* the number density ``density`` in particles per cell area (sets the
  statistical quality; the paper runs ~75 particles/cell).

Derived quantities implement eqs. (3)-(4) of the paper (mean collision
time, freestream collision probability) plus the dimensionless groups
quoted for the rarefied run (Knudsen 0.02, Reynolds 600).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    DT,
    GAMMA,
    MAX_COLLISION_PROBABILITY,
    MEAN_TO_MOST_PROBABLE,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Freestream:
    """Freestream state in normalized (cell width / time step) units.

    Parameters
    ----------
    mach:
        Freestream Mach number (> 0; hypersonic interest is M > 5, the
        paper validates at 4).
    c_mp:
        Most probable thermal speed, cell widths per time step.  The
        default 0.14 puts the Mach-4 bulk speed at ~0.47 cells/step and
        keeps the freestream collision probability inside the eq. (4)
        validity bound down to lambda = 0.5 cell widths.
    lambda_mfp:
        Freestream mean free path, cell widths.  0 means near-continuum
        (selection rule saturates at probability 1).
    density:
        Freestream number density, particles per cell area.
    gamma:
        Ratio of specific heats (7/5 for the diatomic model).
    """

    mach: float = 4.0
    c_mp: float = 0.14
    lambda_mfp: float = 0.5
    density: float = 32.0
    gamma: float = GAMMA

    def __post_init__(self) -> None:
        if self.mach <= 0:
            raise ConfigurationError(f"mach must be positive, got {self.mach}")
        if self.c_mp <= 0:
            raise ConfigurationError(f"c_mp must be positive, got {self.c_mp}")
        if self.lambda_mfp < 0:
            raise ConfigurationError(
                f"lambda_mfp must be non-negative, got {self.lambda_mfp}"
            )
        if self.density <= 0:
            raise ConfigurationError(
                f"density must be positive, got {self.density}"
            )
        if self.gamma <= 1:
            raise ConfigurationError(f"gamma must exceed 1, got {self.gamma}")

    # -- velocity scales ------------------------------------------------

    @property
    def sound_speed(self) -> float:
        """a = sqrt(gamma R T) = c_mp * sqrt(gamma / 2)."""
        return self.c_mp * math.sqrt(self.gamma / 2.0)

    @property
    def speed(self) -> float:
        """Bulk freestream speed U = M * a (cells per step, +x)."""
        return self.mach * self.sound_speed

    @property
    def mean_speed(self) -> float:
        """Mean thermal speed c_bar = (2/sqrt(pi)) c_mp (eq. (3)'s c)."""
        return MEAN_TO_MOST_PROBABLE * self.c_mp

    @property
    def rt(self) -> float:
        """R*T in normalized units (= c_mp^2 / 2)."""
        return self.c_mp**2 / 2.0

    # -- collision quantities --------------------------------------------

    @property
    def is_near_continuum(self) -> bool:
        """True in the paper's lambda = 0 validation limit."""
        return self.lambda_mfp == 0.0

    @property
    def mean_collision_time(self) -> float:
        """t_c,inf = 1 / (n sigma c_bar) = lambda / c_bar (eq. (3)).

        Infinite mean free path would make this infinite; the
        near-continuum limit makes it 0 (handled by the probability
        clamp).
        """
        if self.is_near_continuum:
            return 0.0
        return self.lambda_mfp / self.mean_speed

    @property
    def collision_probability(self) -> float:
        """P_c,inf = dt / t_c,inf (eq. (4)), clamped to 1 at continuum."""
        if self.is_near_continuum:
            return 1.0
        return min(1.0, DT / self.mean_collision_time)

    def check_selection_rule_validity(self) -> None:
        """Raise if P_c,inf violates the eq. (4) validity bound.

        The derivation of P_c = dt / t_c needs dt at least 3-4x smaller
        than the mean collision time so multiple collisions per step are
        negligible.  The near-continuum limit deliberately violates this
        (it is not a physical collision rate, it is the "collide
        everything" limit), so it is exempt.
        """
        if self.is_near_continuum:
            return
        if self.collision_probability > MAX_COLLISION_PROBABILITY:
            raise ConfigurationError(
                f"freestream collision probability "
                f"{self.collision_probability:.3f} exceeds the selection "
                f"rule validity bound {MAX_COLLISION_PROBABILITY:.3f}; "
                f"increase lambda_mfp or decrease c_mp"
            )

    # -- dimensionless groups ----------------------------------------------

    def knudsen(self, length: float) -> float:
        """Knudsen number lambda / L for a body of size L (cell widths)."""
        if length <= 0:
            raise ConfigurationError("length must be positive")
        return self.lambda_mfp / length

    def reynolds(self, length: float, viscosity_coefficient: float = 0.25) -> float:
        """Reynolds number U L / nu with kinetic viscosity nu = k c_bar lambda.

        First-order kinetic theory gives nu between ~0.25 and ~0.5
        c_bar*lambda depending on the molecular model and the level of
        the Chapman-Enskog expansion; the default 0.25 reproduces the
        paper's quoted Re = 600 for the Mach-4, lambda = 0.5, L = 25
        rarefied run to within ~1%.
        """
        if self.is_near_continuum:
            return math.inf
        if length <= 0:
            raise ConfigurationError("length must be positive")
        nu = viscosity_coefficient * self.mean_speed * self.lambda_mfp
        return self.speed * length / nu

    # -- convenience -----------------------------------------------------

    def with_mean_free_path(self, lambda_mfp: float) -> "Freestream":
        """Copy of this freestream with a different mean free path."""
        return Freestream(
            mach=self.mach,
            c_mp=self.c_mp,
            lambda_mfp=lambda_mfp,
            density=self.density,
            gamma=self.gamma,
        )

    def drift_vector(self) -> tuple:
        """Bulk velocity as a 3-vector (stream along +x)."""
        return (self.speed, 0.0, 0.0)
