"""Cells-to-processors versus particles-to-processors mapping study.

The paper's "Data Structure - Processor Mapping" section argues the
cells-to-processors mapping is inferior on two grounds and chooses
particles-to-processors:

1. **Communication.**  Cell-mapped particles migrate to neighbour cells;
   to avoid router collisions a cell may talk to only one neighbour at a
   time, so a 2-D exchange needs 8 distinct communication events with
   only 1/8 of processors active in each (26 events in 3-D).

2. **Load balance & memory.**  Computation runs at the pace of the most
   populated cell and every processor's memory must hold the *maximum*
   density ever encountered, so most of the machine idles with unused
   memory for most of the run (density ratios behind a Mach-4 shock are
   ~3.7x freestream, and stagnation regions go higher).

This module quantifies both arguments for an actual particle snapshot so
the benchmark (`bench_abl_mapping`) can report them as numbers rather
than rhetoric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError


@dataclass(frozen=True)
class MappingComparison:
    """Quantified comparison of the two processor mappings.

    All utilization numbers are fractions in (0, 1]; higher is better.

    Attributes
    ----------
    n_particles / n_cells:
        Snapshot dimensions.
    cell_mapping_compute_utilization:
        mean / max cell population: the SIMD machine advances every cell
        at the pace of the most crowded one.
    cell_mapping_memory_utilization:
        mean / max population: memory must be provisioned for the
        maximum ever seen (here: of this snapshot).
    cell_mapping_comm_events:
        Number of serialized neighbour-exchange events per step (8 in
        2-D, 26 in 3-D).
    cell_mapping_comm_active_fraction:
        Fraction of processors active in each exchange event.
    particle_mapping_compute_utilization:
        Always 1.0 up to the VP-ratio round-off: every VP holds exactly
        one particle; the sort redistributes collision work evenly.
    migration_fraction:
        Fraction of particles that changed cell this step -- the traffic
        the cell mapping would have had to route.
    """

    n_particles: int
    n_cells: int
    dimensions: int
    cell_mapping_compute_utilization: float
    cell_mapping_memory_utilization: float
    cell_mapping_comm_events: int
    cell_mapping_comm_active_fraction: float
    particle_mapping_compute_utilization: float
    migration_fraction: float

    @property
    def compute_advantage(self) -> float:
        """Speedup factor of particle over cell mapping on compute."""
        return (
            self.particle_mapping_compute_utilization
            / self.cell_mapping_compute_utilization
        )


def neighbour_exchange_events(dimensions: int) -> int:
    """Serialized neighbour communication events for a cell mapping.

    A cell has ``3**d - 1`` neighbours (including diagonals, which
    particle motion can reach in one step); each exchange must be a
    separate event to avoid router collisions: 8 in 2-D, 26 in 3-D,
    exactly the counts the paper quotes.
    """
    if dimensions < 1:
        raise MachineError("dimensions must be >= 1")
    return 3**dimensions - 1


def compare_mappings(
    cell_populations: np.ndarray,
    migrated: np.ndarray = None,
    dimensions: int = 2,
) -> MappingComparison:
    """Evaluate both mappings on a snapshot of cell populations.

    Parameters
    ----------
    cell_populations:
        Integer array (any shape) with the particle count of every cell.
    migrated:
        Optional boolean per-particle array marking particles that
        changed cell this step (for the migration traffic number).
    dimensions:
        Spatial dimensionality (2 for the paper's wedge runs).
    """
    pops = np.asarray(cell_populations).ravel()
    if pops.size == 0:
        raise MachineError("need at least one cell")
    if np.any(pops < 0):
        raise MachineError("cell populations must be non-negative")
    total = int(pops.sum())
    if total == 0:
        raise MachineError("snapshot contains no particles")
    mean_pop = total / pops.size
    max_pop = int(pops.max())
    events = neighbour_exchange_events(dimensions)
    migration = 0.0
    if migrated is not None:
        m = np.asarray(migrated, dtype=bool)
        migration = float(np.count_nonzero(m)) / m.size if m.size else 0.0
    return MappingComparison(
        n_particles=total,
        n_cells=pops.size,
        dimensions=dimensions,
        cell_mapping_compute_utilization=mean_pop / max_pop,
        cell_mapping_memory_utilization=mean_pop / max_pop,
        cell_mapping_comm_events=events,
        cell_mapping_comm_active_fraction=1.0 / events,
        particle_mapping_compute_utilization=1.0,
        migration_fraction=migration,
    )
