"""Unit tests for the SoA particle container."""

import numpy as np
import pytest

from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)


class TestConstruction:
    def test_empty(self):
        p = ParticleArrays.empty()
        assert p.n == 0
        assert p.rotational_dof == 2
        p.validate()

    def test_from_freestream_shapes(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 1000, fs, (0, 10), (0, 5))
        assert p.n == len(p) == 1000
        assert p.perm.shape == (1000, 5)
        p.validate()

    def test_positions_in_box(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 5000, fs, (2, 4), (1, 3))
        assert p.x.min() >= 2 and p.x.max() <= 4
        assert p.y.min() >= 1 and p.y.max() <= 3

    def test_velocities_at_freestream(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 100_000, fs, (0, 1), (0, 1))
        assert p.u.mean() == pytest.approx(fs.speed, abs=0.01)
        assert p.u.var() == pytest.approx(fs.c_mp**2 / 2, rel=0.05)
        assert p.w.mean() == pytest.approx(0.0, abs=0.01)

    def test_rectangular_option(self, rng, fs):
        p = ParticleArrays.from_freestream(
            rng, 10_000, fs, (0, 1), (0, 1), rectangular=True
        )
        bound = fs.c_mp / np.sqrt(2) * np.sqrt(3) + 1e-9
        assert np.abs(p.u - fs.speed).max() <= bound

    def test_monatomic_option(self, rng, fs):
        p = ParticleArrays.from_freestream(
            rng, 10, fs, (0, 1), (0, 1), rotational_dof=0
        )
        assert p.rot.shape == (10, 0)
        assert p.perm.shape == (10, 3)
        p.validate()

    def test_invalid_box(self, rng, fs):
        with pytest.raises(ConfigurationError):
            ParticleArrays.from_freestream(rng, 10, fs, (1, 0), (0, 1))

    def test_negative_count(self, rng, fs):
        with pytest.raises(ConfigurationError):
            ParticleArrays.from_freestream(rng, -1, fs, (0, 1), (0, 1))


class TestEnergyMomentum:
    def test_energy_decomposition(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 100, fs, (0, 1), (0, 1))
        assert p.total_energy() == pytest.approx(
            p.kinetic_energy() + p.rotational_energy()
        )

    def test_hand_computed_energy(self):
        p = ParticleArrays.empty()
        p.x = np.zeros(1); p.y = np.zeros(1)
        p.u = np.array([3.0]); p.v = np.array([4.0]); p.w = np.zeros(1)
        p.rot = np.array([[1.0, 2.0]])
        p.perm = np.arange(5, dtype=np.int8)[None, :]
        p.cell = np.zeros(1, dtype=np.int64)
        assert p.kinetic_energy() == pytest.approx(12.5)
        assert p.rotational_energy() == pytest.approx(2.5)
        assert np.allclose(p.momentum(), [3.0, 4.0, 0.0])


class TestSurgery:
    def test_select_mask(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 100, fs, (0, 1), (0, 1))
        sel = p.select(p.x > 0.5)
        assert sel.n == int((p.x > 0.5).sum())
        sel.validate()

    def test_select_returns_copies(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 10, fs, (0, 1), (0, 1))
        sel = p.select(np.arange(5))
        sel.x[0] = 99.0
        assert p.x[0] != 99.0

    def test_reorder_inplace(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 50, fs, (0, 1), (0, 1))
        x0 = p.x.copy()
        order = rng.permutation(50)
        p.reorder_inplace(order)
        assert np.array_equal(p.x, x0[order])
        p.validate()

    def test_concatenate(self, rng, fs):
        a = ParticleArrays.from_freestream(rng, 30, fs, (0, 1), (0, 1))
        b = ParticleArrays.from_freestream(rng, 20, fs, (0, 1), (0, 1))
        c = ParticleArrays.concatenate(a, b)
        assert c.n == 50
        c.validate()

    def test_concatenate_dof_mismatch(self, rng, fs):
        a = ParticleArrays.from_freestream(rng, 3, fs, (0, 1), (0, 1))
        b = ParticleArrays.from_freestream(
            rng, 3, fs, (0, 1), (0, 1), rotational_dof=0
        )
        with pytest.raises(ConfigurationError):
            ParticleArrays.concatenate(a, b)

    def test_copy_is_deep(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 5, fs, (0, 1), (0, 1))
        q = p.copy()
        q.u[0] = 42.0
        assert p.u[0] != 42.0


class TestValidation:
    def test_corrupted_perm_detected(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 5, fs, (0, 1), (0, 1))
        p.perm[0] = np.array([0, 0, 1, 2, 3], dtype=np.int8)
        with pytest.raises(ConfigurationError):
            p.validate()

    def test_length_mismatch_detected(self, rng, fs):
        p = ParticleArrays.from_freestream(rng, 5, fs, (0, 1), (0, 1))
        p.u = p.u[:-1]
        with pytest.raises(ConfigurationError):
            p.validate()
