"""FIG5 -- Figure 5: rarefied density surface: the wake shock washes out.

"On looking at figure 5 it is at first surprising to notice there is no
longer a wake shock, however this is merely another manifestation of the
greater rarefaction ... the mean free path in this region is great
enough that the wake shock is completely washed out."

Discriminator: the wake recompression layer's attachment to the floor
(:func:`repro.analysis.shock.wake_floor_ridge`).  Near continuum the
far-wake density *decreases* with height (the recompressed layer hugs
the floor, ridge > 1); at Kn = 0.02 diffusion smears it (ridge <= 1).
"""

from repro.analysis.contour import save_field_npz
from repro.analysis.fields import SurfaceSummary, wake_window
from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import wake_floor_ridge

from benchmarks.common import DOMAIN, OUT_DIR, WEDGE


def test_fig5_rarefied_surface_no_wake_shock(
    benchmark, rarefied_solution, continuum_solution, emit
):
    rho_rar = rarefied_solution.density_ratio_field()
    rho_con = continuum_solution.density_ratio_field()

    def regenerate():
        return (
            wake_floor_ridge(rho_rar, WEDGE, DOMAIN),
            wake_floor_ridge(rho_con, WEDGE, DOMAIN),
        )

    ridge_rar, ridge_con = benchmark(regenerate)

    win = wake_window(WEDGE, DOMAIN)
    summary = SurfaceSummary.of(win.extract(rho_rar))

    rec = ExperimentRecord("FIG5", "rarefied density surface (wake washed out)")
    rec.add(
        "wake floor ridge, rarefied",
        None,
        ridge_rar,
        note="paper: 'completely washed out' -> no floor-attached layer",
    )
    rec.add(
        "wake floor ridge, continuum (contrast)",
        None,
        ridge_con,
        note="same metric on the figure-2 solution",
    )
    rec.add(
        "washout margin (continuum - rarefied)",
        None,
        ridge_con - ridge_rar,
        note="> 0.1 demonstrates the rarefaction washout",
    )
    rec.add("wake surface roughness", None, summary.roughness)
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(str(OUT_DIR / "fig5_surface.npz"), density_ratio=rho_rar)
    assert ridge_con > ridge_rar + 0.1
    assert ridge_rar < 1.0
