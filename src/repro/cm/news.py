"""NEWS grid communication and the cell-mapped exchange pattern.

Besides the general router, the CM-2 has a fast nearest-neighbour
network (NEWS: North-East-West-South) over a 2-D processor grid.  A
cells-to-processors DSMC would live on this network: every step, each
cell sends its departing particles to the 8 surrounding cells -- and
"in order to avoid conflicts, a cell must only communicate with a
single neighbour at a time.  In two dimensions this implies eight
distinct communication events with only one eighth of the processors
active in any single event."

This module provides the NEWS shift primitive and the serialized
8-event neighbour exchange, both cost-modelled, so the mapping study
can *execute* the communication pattern the paper rejects instead of
just describing it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cm.timing import CostLedger
from repro.errors import MachineError

#: Per-bit cost of one NEWS hop (cheaper than a router hop: dedicated
#: wires, no addressing).
W_NEWS = 1.5

#: The eight 2-D neighbour offsets in the serialization order.
NEIGHBOUR_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
)


def news_shift(
    grid: np.ndarray,
    di: int,
    dj: int,
    fill=0,
    ledger: Optional[CostLedger] = None,
    bits: int = 32,
    phase: str = "motion",
) -> np.ndarray:
    """Shift a 2-D processor-grid field by (di, dj), filling the edge.

    Diagonal shifts decompose into two NEWS hops (the hardware has only
    the four cardinal directions) and are charged accordingly.
    """
    grid = np.asarray(grid)
    if grid.ndim != 2:
        raise MachineError("NEWS fields are 2-D (one value per processor)")
    if abs(di) > 1 or abs(dj) > 1:
        raise MachineError("NEWS shifts move one processor at a time")
    out = np.full_like(grid, fill)
    src_i = slice(max(-di, 0), grid.shape[0] - max(di, 0))
    dst_i = slice(max(di, 0), grid.shape[0] - max(-di, 0))
    src_j = slice(max(-dj, 0), grid.shape[1] - max(dj, 0))
    dst_j = slice(max(dj, 0), grid.shape[1] - max(-dj, 0))
    out[dst_i, dst_j] = grid[src_i, src_j]
    if ledger is not None:
        hops = (di != 0) + (dj != 0)
        ledger.charge("route_on", W_NEWS * bits * hops, phase=phase)
    return out


def serialized_neighbour_exchange(
    outgoing: Dict[Tuple[int, int], np.ndarray],
    ledger: Optional[CostLedger] = None,
    bits_per_particle: int = 9 * 32,
    phase: str = "motion",
) -> Tuple[np.ndarray, Dict[str, float]]:
    """The cell-mapping's 8-event migration exchange.

    ``outgoing[(di, dj)]`` is a 2-D integer grid: how many particles
    each cell sends toward neighbour offset ``(di, dj)``.  The events
    are serialized (one offset at a time); within an event the slowest
    processor paces the SIMD machine, so each event costs
    ``max(outgoing) * bits`` while the *average* processor only had
    ``mean(outgoing)`` to send -- the utilization gap the paper calls
    out.

    Returns ``(incoming, stats)`` where ``incoming`` is the per-cell
    arrival count and ``stats`` reports the events' utilization.
    """
    keys = set(outgoing)
    if not keys.issubset(set(NEIGHBOUR_OFFSETS)):
        raise MachineError("outgoing offsets must be 8-neighbourhood")
    some = next(iter(outgoing.values()))
    incoming = np.zeros_like(some)
    total_cost = 0.0
    utilizations = []
    for off in NEIGHBOUR_OFFSETS:
        counts = outgoing.get(off)
        if counts is None:
            continue
        counts = np.asarray(counts)
        if counts.shape != incoming.shape:
            raise MachineError("all outgoing grids must share a shape")
        # Arrivals: the sending cell's count appears at the receiver.
        incoming += news_shift(counts, off[0], off[1], fill=0)
        peak = int(counts.max())
        mean = float(counts.mean())
        hops = (off[0] != 0) + (off[1] != 0)
        event_cost = W_NEWS * bits_per_particle * peak * hops
        total_cost += event_cost
        if peak > 0:
            utilizations.append(mean / peak)
        if ledger is not None and event_cost:
            ledger.charge("route_on", event_cost, phase=phase)
    stats = {
        "events": float(len(NEIGHBOUR_OFFSETS)),
        "total_cost": total_cost,
        "mean_event_utilization": float(np.mean(utilizations))
        if utilizations
        else 0.0,
    }
    return incoming, stats
