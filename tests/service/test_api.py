"""HTTP API round-trips: routes, status codes, typed error mapping."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ServiceError,
)
from repro.service import Orchestrator, ServiceAPI, ServiceClient
from repro.service import store as st
from tests.service.conftest import fast_config

pytestmark = pytest.mark.service


@pytest.fixture
def service(tmp_path):
    """(orchestrator, api, client) on an ephemeral localhost port."""
    orch = Orchestrator(tmp_path / "svc", fast_config())
    api = ServiceAPI(orch, port=0)
    client = ServiceClient(f"http://127.0.0.1:{api.port}")
    yield orch, api, client
    api.close()
    if not orch._dead:
        orch.shutdown()


class TestRoutes:
    def test_healthz(self, service):
        _, _, client = service
        health = client.health()
        assert health["ok"] is True
        assert health["queue_depth"] == 0

    def test_submit_wait_result_round_trip(
        self, service, tiny_overrides
    ):
        _, _, client = service
        out = client.submit(
            scenario="wedge", seed=21, overrides=tiny_overrides
        )
        assert out["cached"] is False
        final = client.wait(out["job_id"], timeout=120)
        assert final["state"] == st.DONE
        result = client.result(out["job_id"])
        assert result["steps"] == tiny_overrides["average"]
        # Cached resubmission comes back HTTP 200 with cached=True.
        again = client.submit(
            scenario="wedge", seed=21, overrides=tiny_overrides
        )
        assert again["cached"] is True
        assert again["job_id"] == out["job_id"]
        jobs = client.list_jobs()
        assert [j["job_id"] for j in jobs] == [out["job_id"]]

    def test_metrics_exposition(self, service):
        _, _, client = service
        text = client.metrics()
        assert "# TYPE repro_service_submissions_total counter" in text

    def test_unknown_route_is_404(self, service):
        _, api, _ = service
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{api.port}/teapot"
            )
        assert err.value.code == 404


class TestErrorMapping:
    def test_unknown_job_is_404_typed(self, service):
        _, _, client = service
        with pytest.raises(JobNotFoundError):
            client.status("nope")
        with pytest.raises(JobNotFoundError):
            client.result("nope")

    def test_bad_overrides_are_400_typed(self, service):
        _, _, client = service
        with pytest.raises(ConfigurationError, match="bogus"):
            client.submit(scenario="wedge", overrides={"bogus": 1})

    def test_malformed_json_body_is_400(self, service):
        _, api, _ = service
        req = urllib.request.Request(
            f"http://127.0.0.1:{api.port}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"] == "ConfigurationError"

    def test_backpressure_is_429_typed(self, tmp_path, tiny_overrides):
        orch = Orchestrator(
            tmp_path, fast_config(queue_limit=1), start=False
        )
        api = ServiceAPI(orch, port=0)
        client = ServiceClient(f"http://127.0.0.1:{api.port}")
        try:
            client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )
            with pytest.raises(BackpressureError) as err:
                client.submit(
                    scenario="wedge", seed=2, overrides=tiny_overrides
                )
            assert err.value.context["limit"] == 1
        finally:
            api.close()
            orch.shutdown()

    def test_cancel_terminal_job_is_409_typed(
        self, tmp_path, tiny_overrides
    ):
        orch = Orchestrator(tmp_path, fast_config(), start=False)
        api = ServiceAPI(orch, port=0)
        client = ServiceClient(f"http://127.0.0.1:{api.port}")
        try:
            out = client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )
            client.cancel(out["job_id"])
            with pytest.raises(JobStateError):
                client.cancel(out["job_id"])
        finally:
            api.close()
            orch.shutdown()

    def test_shut_down_service_is_503_typed(
        self, service, tiny_overrides
    ):
        orch, _, client = service
        orch.shutdown()
        with pytest.raises(ServiceError):
            client.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )


class TestSweep:
    """POST /sweep: grid expansion through the normal submit path."""

    def test_grid_expansion_and_order(self, service, tiny_overrides):
        _, _, client = service
        out = client.sweep(
            scenario="wedge",
            mach=[3.0, 5.0],
            seeds=[1, 2],
            overrides=tiny_overrides,
        )
        assert out["count"] == 4
        jobs = out["jobs"]
        # mach outermost, seed innermost.
        assert [(j["mach"], j["seed"]) for j in jobs] == [
            (3.0, 1), (3.0, 2), (5.0, 1), (5.0, 2)
        ]
        assert len({j["job_id"] for j in jobs}) == 4
        for j in jobs:
            assert j["cached"] is False
            assert j["kn"] is None

    def test_omitted_axes_submit_single_job(self, service, tiny_overrides):
        _, _, client = service
        out = client.sweep(
            scenario="wedge", seeds=[9], overrides=tiny_overrides
        )
        assert out["count"] == 1
        assert out["jobs"][0]["mach"] is None

    def test_kn_axis_overrides_lambda_mfp(self, service, tiny_overrides):
        orch, _, client = service
        out = client.sweep(
            scenario="wedge",
            kn=[0.25],
            seeds=[4],
            overrides=tiny_overrides,
        )
        job = orch.status(out["jobs"][0]["job_id"])
        assert job["overrides"]["lambda_mfp"] == 0.25

    def test_resweep_hits_dedup_cache(self, service, tiny_overrides):
        _, _, client = service
        first = client.sweep(
            scenario="wedge", seeds=[7], overrides=tiny_overrides
        )
        for j in first["jobs"]:
            client.wait(j["job_id"], timeout=120)
        again = client.sweep(
            scenario="wedge", seeds=[7], overrides=tiny_overrides
        )
        assert again["jobs"][0]["cached"] is True
        assert again["jobs"][0]["job_id"] == first["jobs"][0]["job_id"]

    def test_missing_scenario_is_400(self, service):
        _, _, client = service
        with pytest.raises(ConfigurationError):
            client.sweep(seeds=[1])

    def test_empty_axis_is_400(self, service):
        _, _, client = service
        with pytest.raises(ConfigurationError):
            client.sweep(scenario="wedge", mach=[])

    def test_grid_over_limit_is_400(self, service):
        _, _, client = service
        with pytest.raises(ConfigurationError) as err:
            client.sweep(scenario="wedge", seeds=list(range(65)))
        assert "limit" in str(err.value)

    def test_backpressure_reports_partial_submission(
        self, tmp_path, tiny_overrides
    ):
        orch = Orchestrator(
            tmp_path, fast_config(queue_limit=2), start=False
        )
        api = ServiceAPI(orch, port=0)
        client = ServiceClient(f"http://127.0.0.1:{api.port}")
        try:
            with pytest.raises(BackpressureError) as err:
                client.sweep(
                    scenario="wedge",
                    seeds=[1, 2, 3, 4],
                    overrides=tiny_overrides,
                )
            assert err.value.context["submitted"] == 2
            assert err.value.context["total"] == 4
        finally:
            api.close()
            orch.shutdown()


class TestSweepCLI:
    def test_sweep_command_prints_grid(
        self, service, tiny_overrides, capsys
    ):
        from repro.cli import main

        _, api, _ = service
        code = main([
            "sweep", "wedge",
            "--mach", "3.0", "4.0",
            "--seeds", "1",
            "--nx", str(tiny_overrides["nx"]),
            "--ny", str(tiny_overrides["ny"]),
            "--density", str(tiny_overrides["density"]),
            "--steps", str(tiny_overrides["average"]),
            "--url", f"http://127.0.0.1:{api.port}",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 job(s) submitted" in out
        assert "mach=3.0 seed=1" in out
        assert "mach=4.0 seed=1" in out
