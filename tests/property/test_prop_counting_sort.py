"""Properties of the fused counting-sort kernel (core/sortstep.py).

The kernel replaced a wide stable argsort of ``cell * scale + offset``
keys; these tests pin the properties the step loop relies on:

* without shuffling it is *bit-identical* to the stable argsort of the
  raw cell keys (key equivalence -- narrowing the dtype must not change
  the permutation);
* with shuffling the result is still a permutation that leaves the
  population cell-contiguous (the invariant even/odd pairing needs);
* the intra-cell order is uniformly random across rng streams, and the
  even/odd candidacy statistics match the legacy scaled-key scheme.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cells import randomized_sort_keys
from repro.core.pairing import even_odd_pairs
from repro.core.sortstep import counting_sort_order

cell_arrays = arrays(
    np.int64,
    st.integers(min_value=0, max_value=300),
    elements=st.integers(min_value=0, max_value=6271),
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestKeyEquivalence:
    @given(cell_arrays)
    @settings(max_examples=60, deadline=None)
    def test_no_shuffle_is_bit_identical_to_wide_stable_argsort(self, cell):
        # The uint16 narrowing must not change the permutation: stable
        # sorts of equal key sequences agree element-wise.
        order = counting_sort_order(cell, shuffle=False)
        assert np.array_equal(order, np.argsort(cell, kind="stable"))

    @given(cell_arrays, seeds)
    @settings(max_examples=60, deadline=None)
    def test_shuffled_order_is_a_cell_contiguous_permutation(self, cell, seed):
        rng = np.random.default_rng(seed)
        order = counting_sort_order(cell, rng=rng, shuffle=True)
        n = cell.shape[0]
        assert np.array_equal(np.sort(order), np.arange(n))
        if n:
            assert np.all(np.diff(cell[order]) >= 0)

    @given(cell_arrays, seeds)
    @settings(max_examples=30, deadline=None)
    def test_shuffled_matches_scaled_key_sort_up_to_intra_cell_order(
        self, cell, seed
    ):
        # Same multiset per cell bucket as the legacy scheme -- only
        # the intra-cell order may differ.
        rng = np.random.default_rng(seed)
        new = cell[counting_sort_order(cell, rng=rng, shuffle=True)]
        rng = np.random.default_rng(seed)
        keys = randomized_sort_keys(cell, rng=rng, scale=8)
        old = cell[np.argsort(keys, kind="stable")]
        assert np.array_equal(new, old)


class TestIntraCellRandomization:
    def test_intra_cell_order_is_uniform_over_streams(self):
        # 3 particles in one cell: each of the 3! orderings must appear
        # with frequency ~1/6.  5-sigma bounds on 3000 trials.
        cell = np.zeros(3, dtype=np.int64)
        counts = {}
        trials = 3000
        master = np.random.default_rng(2024)
        for _ in range(trials):
            rng = np.random.default_rng(master.integers(2**63))
            order = tuple(counting_sort_order(cell, rng=rng, shuffle=True))
            counts[order] = counts.get(order, 0) + 1
        assert len(counts) == 6
        expected = trials / 6
        sigma = np.sqrt(expected * (1 - 1 / 6))
        for order, c in counts.items():
            assert abs(c - expected) < 5 * sigma, (order, c)

    def test_candidacy_stats_match_legacy_scheme(self):
        # The even/odd same-cell candidate fraction is a distributional
        # invariant: bucket shuffling and scaled-key randomization must
        # produce statistically identical pairing efficiency.
        master = np.random.default_rng(99)
        cell = np.sort(master.integers(0, 64, size=4000))
        frac_new, frac_old = [], []
        for _ in range(40):
            rng = np.random.default_rng(master.integers(2**63))
            order = counting_sort_order(cell, rng=rng, shuffle=True)
            frac_new.append(even_odd_pairs(cell[order]).same_cell.mean())
            rng = np.random.default_rng(master.integers(2**63))
            keys = randomized_sort_keys(cell, rng=rng, scale=64)
            order = np.argsort(keys, kind="stable")
            frac_old.append(even_odd_pairs(cell[order]).same_cell.mean())
        assert abs(np.mean(frac_new) - np.mean(frac_old)) < 0.01
