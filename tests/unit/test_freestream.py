"""Unit tests for the freestream normalization."""

import math

import pytest

from repro.constants import GAMMA, MAX_COLLISION_PROBABILITY
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream


class TestVelocityScales:
    def test_sound_speed_relation(self):
        fs = Freestream(c_mp=0.2)
        assert fs.sound_speed == pytest.approx(0.2 * math.sqrt(GAMMA / 2))

    def test_bulk_speed_is_mach_times_sound(self):
        fs = Freestream(mach=4.0, c_mp=0.14)
        assert fs.speed == pytest.approx(4.0 * fs.sound_speed)

    def test_mean_speed_over_most_probable(self):
        fs = Freestream(c_mp=1.0)
        assert fs.mean_speed == pytest.approx(2 / math.sqrt(math.pi))

    def test_rt(self):
        assert Freestream(c_mp=0.2).rt == pytest.approx(0.02)


class TestCollisionQuantities:
    def test_near_continuum_limit(self):
        fs = Freestream(lambda_mfp=0.0)
        assert fs.is_near_continuum
        assert fs.collision_probability == 1.0
        assert fs.mean_collision_time == 0.0

    def test_eq3_eq4(self):
        # t_c = lambda / c_bar ; P = dt / t_c.
        fs = Freestream(c_mp=0.14, lambda_mfp=1.0)
        assert fs.mean_collision_time == pytest.approx(1.0 / fs.mean_speed)
        assert fs.collision_probability == pytest.approx(fs.mean_speed)

    def test_validity_bound_enforced(self):
        ok = Freestream(c_mp=0.14, lambda_mfp=0.5)
        ok.check_selection_rule_validity()
        bad = Freestream(c_mp=0.14, lambda_mfp=0.2)
        assert bad.collision_probability > MAX_COLLISION_PROBABILITY
        with pytest.raises(ConfigurationError):
            bad.check_selection_rule_validity()

    def test_continuum_exempt_from_bound(self):
        Freestream(lambda_mfp=0.0).check_selection_rule_validity()


class TestDimensionlessGroups:
    def test_paper_knudsen(self):
        # lambda = 0.5, wedge length 25 -> Kn = 0.02.
        fs = Freestream(lambda_mfp=0.5)
        assert fs.knudsen(25.0) == pytest.approx(0.02)

    def test_paper_reynolds(self):
        # Default viscosity coefficient reproduces Re ~ 600 within a few
        # percent.
        fs = Freestream(mach=4.0, lambda_mfp=0.5)
        assert fs.reynolds(25.0) == pytest.approx(600.0, rel=0.05)

    def test_continuum_reynolds_infinite(self):
        assert Freestream(lambda_mfp=0.0).reynolds(25.0) == math.inf

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            Freestream().knudsen(0.0)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mach": 0.0},
            {"c_mp": 0.0},
            {"lambda_mfp": -1.0},
            {"density": 0.0},
            {"gamma": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            Freestream(**kwargs)

    def test_with_mean_free_path_copies(self):
        fs = Freestream(mach=4.0, lambda_mfp=0.5)
        fs2 = fs.with_mean_free_path(0.0)
        assert fs2.is_near_continuum
        assert fs2.mach == fs.mach and fs.lambda_mfp == 0.5

    def test_drift_vector_is_streamwise(self):
        fs = Freestream(mach=4.0)
        d = fs.drift_vector()
        assert d[0] == pytest.approx(fs.speed)
        assert d[1] == 0.0 and d[2] == 0.0
