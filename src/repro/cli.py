"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``run`` -- run any registered scenario (``repro run --list``): the
  seed wedge, the free-molecular flat plate, the cylinder blunt body,
  the channel constriction, the unsteady impulsive start, the 3-D
  wedge prism.  ``--validate`` checks the scenario's golden /
  closed-form acceptance contract instead of running the schedule.
* ``wedge`` -- back-compat alias for the Mach-4 wedge validation
  (figures 1-6 metrics); identical behaviour to ``run wedge`` with the
  same flags, kept so existing scripts and docs never break.
* ``heatbath`` -- the collision-scheme comparison (Bird / Nanbu /
  McDonald-Baganoff) on a uniform relaxation workload.
* ``timing`` -- the figure-7 curve from the calibrated CM-2 timing
  model (optionally measured with the emulation engine).
* ``info`` -- version, configuration defaults and the paper constants.
* ``serve`` -- run the job orchestration service (``docs/service.md``);
  ``submit`` / ``status`` / ``cancel`` / ``fetch`` talk to it over HTTP;
  ``sweep`` expands a Mach x Kn x seed grid into one submission per
  grid point.
* ``watch`` -- live dashboard for one job (streamed step progress,
  us/particle sparkline, retries) or ``--fleet`` for the whole fleet.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

import numpy as np


def _add_infra_flags(p: argparse.ArgumentParser, default_dir: str) -> None:
    """Execution-infrastructure flags shared by ``run`` and ``wedge``."""
    p.add_argument("--workers", type=int, default=1,
                   help="shard the tunnel into N x-slabs stepped by N "
                        "worker processes (1 = serial engine)")
    p.add_argument("--balance", type=str, default="off", metavar="SPEC",
                   help="adaptive load balancing for sharded runs: "
                        "'every:N' repartitions the slabs from measured "
                        "per-shard particle counts every N steps; "
                        "'off' (default) keeps the static split")
    p.add_argument("--supervised", action="store_true",
                   help="run under the fault-tolerant supervisor "
                        "(periodic checkpoints, invariant audits, "
                        "automatic crash recovery)")
    p.add_argument("--checkpoint-every", type=int, default=50,
                   dest="checkpoint_every",
                   help="supervised mode: checkpoint cadence in steps")
    p.add_argument("--audit-every", type=int, default=50,
                   dest="audit_every",
                   help="supervised mode: invariant-audit cadence in steps")
    p.add_argument("--max-retries", type=int, default=3, dest="max_retries",
                   help="supervised mode: recoveries allowed before "
                        "giving up")
    p.add_argument("--run-dir", type=str, default=None, dest="run_dir",
                   help="supervised mode: checkpoint/journal directory "
                        f"(default {default_dir})")
    p.add_argument("--resume", type=str, default=None, metavar="DIR",
                   help="resume a supervised run from its run directory "
                        "and finish the stored schedule (ignores the "
                        "configuration flags)")
    p.add_argument("--telemetry", action="store_true",
                   help="record metrics/spans/events to a run directory "
                        "(events.jsonl, metrics.prom, trace.json)")
    p.add_argument("--telemetry-dir", type=str, default=None,
                   dest="telemetry_dir",
                   help="telemetry output directory (default: the "
                        f"supervised run dir, or {default_dir}-telemetry)")
    p.add_argument("--telemetry-port", type=int, default=None,
                   dest="telemetry_port", metavar="PORT",
                   help="serve live /metrics on this port (0 = ephemeral); "
                        "implies --telemetry")
    p.add_argument("--telemetry-every", type=int, default=10,
                   dest="telemetry_every",
                   help="steps between JSONL samples / .prom rewrites")
    p.add_argument("--live", action="store_true",
                   help="print a one-line telemetry status to stderr "
                        "while stepping; implies --telemetry")
    p.add_argument("--contours", action="store_true",
                   help="print ASCII density contours")
    p.add_argument("--save", type=str, default=None,
                   help="write the density field to this .npz path")
    p.add_argument("--vtk", type=str, default=None,
                   help="write density/temperature/Mach fields to this "
                        ".vtk path (ParaView)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Dagum (1989): hypersonic rarefied flow "
            "particle simulation on the Connection Machine"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    r = sub.add_parser(
        "run",
        help="run a registered scenario (see --list)",
        description=(
            "Run a scenario from the registry.  Flags left unset take "
            "the scenario's declared defaults; see docs/scenarios.md "
            "for the spec schema and the validation contract."
        ),
    )
    r.add_argument("scenario", nargs="?", default=None,
                   help="registered scenario name (try --list)")
    r.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list registered scenarios and exit")
    r.add_argument("--validate", action="store_true",
                   help="run the scenario's golden/closed-form validation "
                        "contract instead of the full schedule; exit 1 on "
                        "failure")
    r.add_argument("--steps", type=int, default=None,
                   help="smoke-run: sample for N steps total instead of "
                        "the scenario's transient+average schedule")
    r.add_argument("--nx", type=int, default=None,
                   help="override the scenario grid width")
    r.add_argument("--ny", type=int, default=None,
                   help="override the scenario grid height")
    r.add_argument("--mach", type=float, default=None)
    r.add_argument("--angle", type=float, default=None,
                   help="wedge angle override, deg (wedge scenarios only)")
    r.add_argument("--density", type=float, default=None,
                   help="particles per cell override")
    r.add_argument("--lambda-mfp", type=float, default=None,
                   dest="lambda_mfp",
                   help="freestream mean free path override, cells")
    r.add_argument("--seed", type=int, default=None)
    r.add_argument("--transient", type=int, default=None,
                   help="override the transient step count")
    r.add_argument("--average", type=int, default=None,
                   help="override the averaging step count")
    r.add_argument("--replicas", type=int, default=None, metavar="R",
                   help="step R independent seeds as one replica-batched "
                        "population (repro.ensemble) and report each "
                        "observable as mean +/- a t-confidence interval; "
                        "with --validate, gate each check on the CI "
                        "containing its reference value")
    r.add_argument("--confidence", type=float, default=0.95,
                   help="confidence level for --replicas intervals "
                        "(default 0.95)")
    _add_infra_flags(r, default_dir="runs/<scenario>-<seed>")

    w = sub.add_parser(
        "wedge",
        help="run the Mach-4 wedge validation (alias of 'run wedge')",
    )
    w.add_argument("--mach", type=float, default=4.0)
    w.add_argument("--angle", type=float, default=30.0, help="wedge angle, deg")
    w.add_argument("--nx", type=int, default=98)
    w.add_argument("--ny", type=int, default=64)
    w.add_argument("--density", type=float, default=12.0,
                   help="particles per cell (paper ~80)")
    w.add_argument("--lambda-mfp", type=float, default=0.0, dest="lambda_mfp",
                   help="freestream mean free path, cells (0 = continuum)")
    w.add_argument("--transient", type=int, default=350)
    w.add_argument("--average", type=int, default=350)
    w.add_argument("--seed", type=int, default=1989)
    _add_infra_flags(w, default_dir="runs/wedge-<seed>")

    h = sub.add_parser("heatbath", help="compare collision schemes")
    h.add_argument("--particles", type=int, default=20000)
    h.add_argument("--cells", type=int, default=200)
    h.add_argument("--steps", type=int, default=20)
    h.add_argument("--seed", type=int, default=3)

    t = sub.add_parser("timing", help="figure-7 timing curve")
    t.add_argument("--processors", type=int, default=32 * 1024)
    t.add_argument("--measure", action="store_true",
                   help="also run the emulation engine (scaled machine)")

    sub.add_parser("info", help="package and paper constants")

    s = sub.add_parser(
        "serve",
        help="run the job orchestration service (HTTP API)",
        description=(
            "Serve the crash-safe job orchestrator on 127.0.0.1.  Jobs "
            "are submitted over HTTP (repro submit), executed by worker "
            "processes under the fault-tolerant supervisor, and "
            "journaled so a restarted service resumes in-flight work.  "
            "SIGTERM drains running jobs to a checkpoint before exit.  "
            "See docs/service.md."
        ),
    )
    s.add_argument("--data-dir", type=str, default="runs/service",
                   dest="data_dir",
                   help="service journal + job directories "
                        "(default runs/service)")
    s.add_argument("--port", type=int, default=8787,
                   help="HTTP port (0 = ephemeral; printed on start)")
    s.add_argument("--workers", type=int, default=2,
                   help="concurrent worker processes")
    s.add_argument("--queue-limit", type=int, default=16,
                   dest="queue_limit",
                   help="queued jobs before submissions get 429")
    s.add_argument("--heartbeat-every", type=int, default=10,
                   dest="heartbeat_every",
                   help="worker chunk size in steps (heartbeat cadence)")
    s.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   dest="heartbeat_timeout",
                   help="seconds of worker silence before the watchdog "
                        "kills it")
    s.add_argument("--deadline", type=float, default=None,
                   help="default per-job wall-clock deadline, seconds")
    s.add_argument("--max-job-retries", type=int, default=2,
                   dest="max_job_retries",
                   help="job-level retries before FAILED")

    def _add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", type=str,
                       default="http://127.0.0.1:8787",
                       help="service endpoint")

    sj = sub.add_parser("submit", help="submit a job to the service")
    _add_client_flags(sj)
    sj.add_argument("scenario", help="registered scenario name")
    sj.add_argument("--seed", type=int, default=None)
    sj.add_argument("--nx", type=int, default=None)
    sj.add_argument("--ny", type=int, default=None)
    sj.add_argument("--mach", type=float, default=None)
    sj.add_argument("--angle", type=float, default=None)
    sj.add_argument("--density", type=float, default=None)
    sj.add_argument("--lambda-mfp", type=float, default=None,
                    dest="lambda_mfp")
    sj.add_argument("--transient", type=int, default=None)
    sj.add_argument("--average", type=int, default=None)
    sj.add_argument("--steps", type=int, default=None,
                    help="smoke-run: 0 transient + N averaging steps")
    sj.add_argument("--deadline", type=float, default=None,
                    help="per-job wall-clock deadline, seconds")
    sj.add_argument("--wait", action="store_true",
                    help="poll until the job reaches a terminal state; "
                         "exit 0 only on DONE")
    sj.add_argument("--timeout", type=float, default=600.0,
                    help="--wait limit, seconds")

    sw = sub.add_parser(
        "sweep",
        help="submit a mach x kn x seed grid of jobs to the service",
        description=(
            "Expand a parameter grid into individual job submissions "
            "through the service's normal submit path (dedup cache, "
            "backpressure and retries all apply per job).  Each axis "
            "flag takes one or more values; omitted axes use the "
            "scenario's defaults.  --kn values are freestream mean "
            "free paths in cell widths (the lambda_mfp override)."
        ),
    )
    _add_client_flags(sw)
    sw.add_argument("scenario", help="registered scenario name")
    sw.add_argument("--mach", type=float, nargs="+", default=None,
                    help="freestream Mach numbers to sweep")
    sw.add_argument("--kn", type=float, nargs="+", default=None,
                    help="freestream mean free paths (cells) to sweep")
    sw.add_argument("--seeds", type=int, nargs="+", default=None,
                    help="seeds to sweep (default: the scenario's seed)")
    sw.add_argument("--nx", type=int, default=None)
    sw.add_argument("--ny", type=int, default=None)
    sw.add_argument("--angle", type=float, default=None)
    sw.add_argument("--density", type=float, default=None)
    sw.add_argument("--transient", type=int, default=None)
    sw.add_argument("--average", type=int, default=None)
    sw.add_argument("--steps", type=int, default=None,
                    help="smoke-run: 0 transient + N averaging steps")
    sw.add_argument("--deadline", type=float, default=None,
                    help="per-job wall-clock deadline, seconds")

    st_ = sub.add_parser("status", help="show job status / list jobs")
    _add_client_flags(st_)
    st_.add_argument("job_id", nargs="?", default=None,
                     help="job id (omit to list all jobs)")

    ca = sub.add_parser("cancel", help="cancel a queued or running job")
    _add_client_flags(ca)
    ca.add_argument("job_id")

    fe = sub.add_parser("fetch", help="fetch a DONE job's result")
    _add_client_flags(fe)
    fe.add_argument("job_id")
    fe.add_argument("--out", type=str, default=None,
                    help="write the result JSON here instead of stdout")

    wa = sub.add_parser(
        "watch",
        help="live dashboard for one job or the whole fleet",
        description=(
            "Follow a running job live (step progress, population, "
            "us/particle sparkline, retries) over the service's "
            "long-poll event route, or --fleet for a one-row-per-job "
            "fleet table from /fleet.  Exits 0 when the watched job "
            "finishes DONE (fleet view: when every job is terminal)."
        ),
    )
    _add_client_flags(wa)
    wa.add_argument("job_id", nargs="?", default=None,
                    help="job id to follow (omit with --fleet)")
    wa.add_argument("--fleet", action="store_true",
                    help="watch every job (one table row per job)")
    wa.add_argument("--interval", type=float, default=1.0,
                    help="fleet view refresh seconds (default 1)")
    wa.add_argument("--rounds", type=int, default=None,
                    help="stop after N refreshes even if still running "
                         "(useful in scripts/CI)")
    return parser


def _run_report(sim, args: argparse.Namespace) -> int:
    """Print the validation metrics of a finished run.

    Everything is derived from ``sim.config`` (not the CLI flags) so
    the same report serves fresh runs and ``--resume``-d ones, whose
    geometry lives in the checkpoint rather than the command line.
    Wedge bodies get the shock metrology; other bodies get field
    statistics (their quantitative contract lives in ``--validate``).
    """
    from repro.analysis.contour import render_ascii, save_field_npz
    from repro.analysis.shock import (
        fit_shock_angle,
        post_shock_plateau,
        shock_thickness,
        wake_floor_ridge,
    )
    from repro.errors import ReproError
    from repro.geometry.wedge import Wedge
    from repro.physics import theory

    config = sim.config
    wedge = config.wedge
    mach = config.freestream.mach
    rho = sim.density_ratio_field()
    if isinstance(wedge, Wedge):
        beta = theory.shock_angle_deg(mach, wedge.angle_deg)
        ratio = theory.oblique_shock_density_ratio(
            mach, math.radians(wedge.angle_deg)
        )
        try:
            fit = fit_shock_angle(rho, wedge)
            plateau = post_shock_plateau(rho, wedge, fit)
            thick = shock_thickness(rho, wedge, fit, plateau=plateau)
            print(
                f"shock angle     : {fit.angle_deg:7.2f} deg "
                f"(theory {beta:.2f})"
            )
            print(f"density ratio   : {plateau:7.2f}     (theory {ratio:.2f})")
            print(f"shock thickness : {thick:7.2f} cells")
        except ReproError as exc:
            print(
                f"shock metrology unavailable ({exc}); increase --density, "
                "--transient or --average"
            )
        try:
            ridge = wake_floor_ridge(rho, wedge, config.domain)
            print(f"wake floor ridge: {ridge:7.2f}     (> 1: wake shock present)")
        except ReproError:
            pass
    elif wedge is not None:
        open_rho = rho[rho > 0]
        print(f"peak compression: {float(rho.max()):7.2f} (freestream = 1)")
        if open_rho.size:
            print(f"open-cell floor : {float(open_rho.min()):7.2f}")
        print(f"inlet band mean : {float(rho[2:8, :].mean()):7.2f} "
              "(expected ~1)")
    if args.contours:
        print(render_ascii(rho))
    if args.save:
        save_field_npz(args.save, density_ratio=rho)
        print(f"field written to {args.save}")
    if args.vtk:
        from repro.analysis import thermo
        from repro.io.vtk import write_vtk_fields

        write_vtk_fields(
            args.vtk,
            density_ratio=rho,
            temperature_ratio=thermo.temperature_ratio_field(
                sim.sampler, config.freestream
            ),
            mach=thermo.mach_field(sim.sampler, config.freestream),
        )
        print(f"VTK fields written to {args.vtk}")
    return 0


def _make_telemetry(args: argparse.Namespace, default_dir: str):
    """Build the telemetry hub from the run flags (None if disabled)."""
    enabled = (
        args.telemetry or args.live or args.telemetry_port is not None
    )
    if not enabled:
        return None
    from repro.telemetry import Telemetry

    return Telemetry(
        run_dir=args.telemetry_dir or default_dir,
        sample_every=args.telemetry_every,
        live=args.live,
        port=args.telemetry_port,
    )


def _telemetry_outro(tel) -> None:
    """Close the hub and tell the user where the artifacts landed."""
    if tel is None:
        return
    tel.close()
    if tel.run_dir is not None:
        print(
            f"telemetry: {tel.run_dir / 'events.jsonl'} "
            f"(trace.json, metrics.prom alongside; "
            f"summarize with python -m repro.telemetry.report)"
        )


def _cmd_resume(args: argparse.Namespace) -> int:
    """Resume a supervised run from its directory (shared by run/wedge)."""
    from repro.resilience import SupervisedRun

    run = SupervisedRun.resume(args.resume)
    tel = _make_telemetry(args, default_dir=args.resume)
    if tel is not None:
        run.attach_telemetry(tel)
    print(
        f"resumed {args.resume} at step {run.sim.step_count}, "
        f"{run.sim.backend.n_workers} worker(s)"
    )
    t0 = time.time()
    with run:
        run.run_schedule()
        run.sim.gather()
    _telemetry_outro(tel)
    print(f"finished at step {run.sim.step_count} in {time.time()-t0:.0f} s")
    return _run_report(run.sim, args)


def _execute_schedule(
    args: argparse.Namespace,
    config,
    transient: int,
    average: int,
    run_tag: str,
) -> int:
    """Build the engine from ``config`` and run the two-phase schedule.

    The shared execution path of ``run`` and the ``wedge`` alias:
    sharding, supervision, telemetry and the final report all hang off
    the same flags.  ``run_tag`` names the default run directories
    (``runs/<tag>`` / ``runs/<tag>-telemetry``).
    """
    from repro.core.simulation import Simulation

    backend = None
    if args.workers > 1:
        from repro.parallel.backend import ShardedBackend
        from repro.parallel.rebalance import RebalanceConfig

        backend = ShardedBackend(
            args.workers, rebalance=RebalanceConfig.parse(args.balance)
        )
    elif args.balance not in ("off", ""):
        print("--balance requires --workers > 1; ignoring", file=sys.stderr)
    run_dir = args.run_dir or f"runs/{run_tag}"
    tel = _make_telemetry(
        args,
        default_dir=run_dir
        if args.supervised
        else f"runs/{run_tag}-telemetry",
    )
    sim = Simulation(config, backend=backend, telemetry=tel)
    print(
        f"{sim.particles.n} particles, grid "
        f"{config.domain.nx}x{config.domain.ny}, "
        f"{args.workers} worker(s)"
    )
    t0 = time.time()
    if args.supervised:
        from repro.resilience import SupervisedRun

        run = SupervisedRun(
            sim,
            run_dir,
            checkpoint_every=args.checkpoint_every,
            audit_every=args.audit_every,
            max_retries=args.max_retries,
        )
        schedule = [
            (n, s) for n, s in ((transient, False), (average, True)) if n
        ]
        with run:
            run.run_schedule(schedule)
            sim = run.sim  # recovery may have replaced the simulation
            sim.gather()
        n_rec = sum(
            1 for e in run.journal.events if e.get("kind") == "recovery"
        )
        extra = f", {n_rec} recoveries" if n_rec else ""
        print(f"supervised run dir: {run_dir}{extra}")
    else:
        if transient:
            sim.run(transient)
        if average:
            sim.run(average, sample=True)
        sim.gather()
        sim.close()
    _telemetry_outro(tel)
    print(f"ran {transient}+{average} steps in {time.time()-t0:.0f} s")
    return _run_report(sim, args)


def _run_ensemble(spec, overrides, args: argparse.Namespace) -> int:
    """Run a scenario as a replica-batched ensemble and report CIs."""
    from repro.analysis.shock import fit_shock_angle, post_shock_plateau
    from repro.ensemble import EnsembleEngine, ensemble_statistic
    from repro.errors import ConfigurationError, ReproError
    from repro.geometry.wedge import Wedge
    from repro.physics import theory

    unsupported = [
        flag
        for flag, on in (
            ("--workers", args.workers > 1),
            ("--supervised", args.supervised),
            ("--resume", args.resume is not None),
            ("--vtk", args.vtk is not None),
        )
        if on
    ]
    if unsupported:
        raise ConfigurationError(
            f"--replicas does not support {unsupported} yet"
        )
    config = spec.build_config(**overrides)
    transient, average = spec.resolve_schedule(overrides)
    tel = _make_telemetry(
        args,
        default_dir=f"runs/{spec.name}-{config.seed}-ensemble-telemetry",
    )
    engine = EnsembleEngine(
        config,
        n_replicas=args.replicas,
        metrics=None if tel is None else tel.registry,
    )
    print(
        f"{engine.particles.n} particles "
        f"({args.replicas} replicas), grid "
        f"{config.domain.nx}x{config.domain.ny}"
    )
    t0 = time.time()
    engine.run_schedule(transient, average)
    _telemetry_outro(tel)
    print(
        f"ran {transient}+{average} steps x {args.replicas} replicas "
        f"in {time.time()-t0:.0f} s"
    )

    def _report(name, values, expected):
        stat = ensemble_statistic(values, confidence=args.confidence)
        ref = f"  (theory {expected:.2f})" if expected is not None else ""
        print(f"{name:<16s}: {stat}{ref}")

    wedge = config.wedge
    fields = engine.density_ratio_fields()
    if isinstance(wedge, Wedge):
        try:
            angles, plateaus = [], []
            for rho in fields:
                fit = fit_shock_angle(rho, wedge)
                angles.append(float(fit.angle_deg))
                plateaus.append(float(post_shock_plateau(rho, wedge, fit)))
            mach = config.freestream.mach
            _report(
                "shock angle", angles,
                theory.shock_angle_deg(mach, wedge.angle_deg),
            )
            _report(
                "density ratio", plateaus,
                theory.oblique_shock_density_ratio(
                    mach, math.radians(wedge.angle_deg)
                ),
            )
        except ReproError as exc:
            print(
                f"shock metrology unavailable ({exc}); increase "
                "--density, --transient or --average"
            )
        ramps = engine.ramp_pressure_ratios()
        if ramps is not None:
            from repro.core.surface import (
                oblique_shock_surface_pressure_ratio,
            )

            _report(
                "ramp pressure", ramps,
                oblique_shock_surface_pressure_ratio(
                    config.freestream.mach, wedge.angle_deg,
                    config.freestream.gamma,
                ),
            )
    else:
        _report("peak compression",
                [float(rho.max()) for rho in fields], None)
    if args.contours:
        from repro.analysis.contour import render_ascii

        print(render_ascii(np.mean(fields, axis=0)))
    if args.save:
        from repro.analysis.contour import save_field_npz

        save_field_npz(args.save, density_ratio=np.mean(fields, axis=0))
        print(f"ensemble-mean field written to {args.save}")
    return 0


def _run_3d(spec, overrides, args: argparse.Namespace) -> int:
    """Run a 3-D scenario on the plain serial driver."""
    from repro.errors import ConfigurationError

    unsupported = [
        flag
        for flag, on in (
            ("--workers", args.workers > 1),
            ("--supervised", args.supervised),
            ("--resume", args.resume is not None),
            ("--telemetry", args.telemetry or args.live
             or args.telemetry_port is not None),
            ("--vtk", args.vtk is not None),
        )
        if on
    ]
    if unsupported:
        raise ConfigurationError(
            f"scenario {spec.name!r} runs on the 3-D driver, which does "
            f"not support {unsupported} yet"
        )
    sim = spec.build_simulation(overrides)
    d = sim.config.domain
    print(
        f"{sim.particles.n} particles, grid {d.nx}x{d.ny}x{d.nz} "
        "(serial 3-D driver)"
    )
    transient, average = spec.resolve_schedule(overrides)
    t0 = time.time()
    if transient:
        sim.run(transient)
    if average:
        sim.run(average, sample=True)
    print(f"ran {transient}+{average} steps in {time.time()-t0:.0f} s")
    return _run_report(sim, args)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenarios import all_specs, get, validate_scenario

    if args.list_scenarios:
        for spec in all_specs():
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{spec.name:<16s} {spec.title}{tags}")
        return 0
    if args.scenario is None:
        print(
            "usage: repro run <scenario> [flags] | repro run --list",
            file=sys.stderr,
        )
        return 2
    spec = get(args.scenario)  # unknown name -> ConfigurationError + list
    if args.replicas is not None and args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if args.validate:
        report = validate_scenario(
            spec, ensemble=args.replicas, confidence=args.confidence
        )
        print(report.to_text())
        return 0 if report.ok else 1

    overrides = {
        k: v
        for k, v in (
            ("nx", args.nx),
            ("ny", args.ny),
            ("mach", args.mach),
            ("angle", args.angle),
            ("density", args.density),
            ("lambda_mfp", args.lambda_mfp),
            ("seed", args.seed),
            ("transient", args.transient),
            ("average", args.average),
        )
        if v is not None
    }
    if args.steps is not None:
        # Smoke mode: sample from step zero so the report has a field
        # even for very short runs.
        overrides["transient"] = 0
        overrides["average"] = args.steps
    if args.replicas is not None:
        if spec.is_3d:
            print(
                f"--replicas does not support 3-D scenario "
                f"{spec.name!r} yet",
                file=sys.stderr,
            )
            return 2
        return _run_ensemble(spec, overrides, args)
    if spec.is_3d:
        return _run_3d(spec, overrides, args)
    if args.resume:
        return _cmd_resume(args)
    config = spec.build_config(**overrides)
    transient, average = spec.resolve_schedule(overrides)
    return _execute_schedule(
        args, config, transient, average,
        run_tag=f"{spec.name}-{config.seed}",
    )


def _cmd_wedge(args: argparse.Namespace) -> int:
    """The legacy wedge entry point, kept bitwise identical.

    Constructs the exact pre-registry configuration (no scenario tag,
    so snapshots and telemetry stay byte-for-byte what they always
    were) and hands it to the same executor as ``run``.
    """
    from repro.core.simulation import SimulationConfig
    from repro.geometry.domain import Domain
    from repro.geometry.wedge import Wedge
    from repro.physics.freestream import Freestream

    if args.resume:
        return _cmd_resume(args)
    config = SimulationConfig(
        domain=Domain(args.nx, args.ny),
        freestream=Freestream(
            mach=args.mach, c_mp=0.14, lambda_mfp=args.lambda_mfp,
            density=args.density,
        ),
        wedge=Wedge(
            x_leading=args.nx / 4.9,
            base=args.nx / 3.92,
            angle_deg=args.angle,
        ),
        seed=args.seed,
    )
    return _execute_schedule(
        args, config, args.transient, args.average,
        run_tag=f"wedge-{args.seed}",
    )


def _cmd_heatbath(args: argparse.Namespace) -> int:
    from repro.baselines import (
        BaganoffSelection,
        BirdTimeCounter,
        HeatBath,
        NanbuPloss,
    )
    from repro.physics.freestream import Freestream

    fs = Freestream(
        mach=4.0, c_mp=0.14, lambda_mfp=2.0,
        density=args.particles / args.cells,
    )
    bath = HeatBath(
        n_particles=args.particles, n_cells=args.cells, freestream=fs
    )
    print(
        f"{'scheme':>20s} {'collisions':>11s} {'E drift':>10s} "
        f"{'p drift':>10s} {'kurtosis':>9s} {'seconds':>8s}"
    )
    for scheme in (BaganoffSelection(fs), BirdTimeCounter(fs), NanbuPloss(fs)):
        r = bath.run(scheme, steps=args.steps, seed=args.seed)
        print(
            f"{r.name:>20s} {r.total_collisions:11d} "
            f"{r.energy_drift:10.2e} {r.momentum_drift:10.2e} "
            f"{r.final_kurtosis:9.3f} {r.seconds:8.2f}"
        )
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.cm.machine import CM2
    from repro.cm.timing import CM2TimingModel

    machine = CM2(n_processors=args.processors)
    tm = CM2TimingModel(machine=machine)
    counts = [args.processors * v for v in (1, 2, 4, 8, 16)]
    curve = tm.predict_curve(counts)
    print(f"machine: {args.processors} processors (model prediction)")
    print(f"{'particles':>10s} {'VPR':>4s} {'us/particle':>12s}")
    for n in counts:
        pb = curve[n]
        print(f"{n:10d} {n // args.processors:4d} {pb.total:12.2f}")
    if args.measure:
        from repro.core.engine_cm import CMSimulation
        from repro.core.simulation import SimulationConfig
        from repro.geometry.domain import Domain
        from repro.physics.freestream import Freestream

        small = CM2(n_processors=min(args.processors, 512))
        tm2 = CM2TimingModel(machine=small)
        print(f"\nmeasured on emulated {small.n_processors}-processor machine:")
        for vpr in (1, 2, 4, 8, 16):
            n_target = small.n_processors * vpr
            ny = max(int(np.sqrt(n_target / 16.0)), 6)
            cfg = SimulationConfig(
                domain=Domain(2 * ny, ny),
                freestream=Freestream(
                    mach=4.0, c_mp=0.14, lambda_mfp=0.5,
                    density=n_target / (2 * ny * ny),
                ),
                wedge=None,
                seed=7,
            )
            sim = CMSimulation(cfg, machine=small)
            sim.run(5)
            print(f"  VPR {vpr:2d}: {sim.phase_breakdown(tm2).total:6.2f} us")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro import constants

    print(f"repro {repro.__version__}")
    print(
        "paper: Dagum (1989), 'Implementation of a Hypersonic Rarefied "
        "Flow\nParticle Simulation on the Connection Machine' "
        "(RIACS TR 88.46)"
    )
    print(f"paper grid          : {constants.PAPER_GRID_SHAPE}")
    print(f"paper particles     : {constants.PAPER_TOTAL_PARTICLES}")
    print(f"paper CM-2 time     : {constants.PAPER_CM2_US_PER_PARTICLE}"
          " us/particle/step")
    print(f"paper Cray-2 time   : {constants.PAPER_CRAY2_US_PER_PARTICLE}"
          " us/particle/step")
    print(f"paper phase split   : {constants.PAPER_PHASE_FRACTIONS}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the orchestration service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.service import Orchestrator, OrchestratorConfig, ServiceAPI

    config = OrchestratorConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        heartbeat_every=args.heartbeat_every,
        heartbeat_timeout=args.heartbeat_timeout,
        default_deadline=args.deadline,
        max_job_retries=args.max_job_retries,
    )
    orch = Orchestrator(args.data_dir, config)
    api = ServiceAPI(orch, port=args.port)
    stop = threading.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: stop.set())
    print(
        f"service listening on http://127.0.0.1:{api.port} "
        f"(data dir {args.data_dir}, {args.workers} workers)",
        flush=True,
    )
    stop.wait()
    print("draining...", flush=True)
    api.close()
    summary = orch.shutdown(drain=True)
    print(
        f"stopped: {summary.get('completed', 0)} completed, "
        f"{summary.get('drained', 0)} drained, "
        f"{summary.get('killed', 0)} killed",
        flush=True,
    )
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url)


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _service_client(args)
    overrides = {
        k: v
        for k, v in (
            ("nx", args.nx),
            ("ny", args.ny),
            ("mach", args.mach),
            ("angle", args.angle),
            ("density", args.density),
            ("lambda_mfp", args.lambda_mfp),
            ("transient", args.transient),
            ("average", args.average),
        )
        if v is not None
    }
    if args.steps is not None:
        overrides["transient"] = 0
        overrides["average"] = args.steps
    out = client.submit(
        scenario=args.scenario,
        seed=args.seed,
        overrides=overrides,
        deadline=args.deadline,
    )
    cached = " (cached)" if out.get("cached") else ""
    print(f"{out['job_id']} {out['state']}{cached}")
    if not args.wait or out.get("cached"):
        return 0
    final = client.wait(out["job_id"], timeout=args.timeout)
    print(f"{final['job_id']} {final['state']} attempt {final['attempt']}")
    return 0 if final["state"] == "DONE" else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    client = _service_client(args)
    overrides = {
        k: v
        for k, v in (
            ("nx", args.nx),
            ("ny", args.ny),
            ("angle", args.angle),
            ("density", args.density),
            ("transient", args.transient),
            ("average", args.average),
        )
        if v is not None
    }
    if args.steps is not None:
        overrides["transient"] = 0
        overrides["average"] = args.steps
    out = client.sweep(
        scenario=args.scenario,
        mach=args.mach,
        kn=args.kn,
        seeds=args.seeds,
        overrides=overrides,
        deadline=args.deadline,
    )
    for job in out["jobs"]:
        point = " ".join(
            f"{axis}={job[axis]}"
            for axis in ("mach", "kn", "seed")
            if job.get(axis) is not None
        )
        cached = " (cached)" if job.get("cached") else ""
        print(f"{job['job_id']} {job['state']}{cached}  {point}")
    print(f"{out['count']} job(s) submitted")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.job_id is None:
        jobs = client.list_jobs()
        if not jobs:
            print("no jobs")
            return 0
        for j in sorted(jobs, key=lambda j: j["submitted_time"]):
            print(
                f"{j['job_id']:<36s} {j['state']:<9s} "
                f"attempt {j['attempt']} {j['scenario']} seed {j['seed']}"
            )
        return 0
    status = client.status(args.job_id)
    for key in (
        "job_id", "scenario", "seed", "state", "attempt",
        "submitted_time", "started_time", "finished_time", "error",
    ):
        if status.get(key) is not None:
            print(f"{key:<15s}: {status[key]}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    status = _service_client(args).cancel(args.job_id)
    extra = " (draining)" if status.get("cancelling") else ""
    print(f"{status['job_id']} {status['state']}{extra}")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json as _json

    result = _service_client(args).result(args.job_id)
    blob = _json.dumps(result, indent=2)
    if args.out:
        import pathlib as _pathlib

        _pathlib.Path(args.out).write_text(blob + "\n", encoding="utf-8")
        print(f"result written to {args.out}")
    else:
        print(blob)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.service.watch import watch_fleet, watch_job

    client = _service_client(args)
    try:
        if args.fleet:
            return watch_fleet(
                client, interval=args.interval, max_rounds=args.rounds
            )
        if args.job_id is None:
            print(
                "usage: repro watch <job_id> | repro watch --fleet",
                file=sys.stderr,
            )
            return 2
        return watch_job(client, args.job_id, max_rounds=args.rounds)
    except KeyboardInterrupt:
        print()  # leave the panel intact
        return 130


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "wedge": _cmd_wedge,
        "heatbath": _cmd_heatbath,
        "timing": _cmd_timing,
        "info": _cmd_info,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "sweep": _cmd_sweep,
        "status": _cmd_status,
        "cancel": _cmd_cancel,
        "fetch": _cmd_fetch,
        "watch": _cmd_watch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
