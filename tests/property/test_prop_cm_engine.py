"""Property-based tests of the CM engine's fixed-point invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm.machine import CM2
from repro.core.engine_cm import fixed_point_energy_drift
from repro.fixedpoint import Q8_23


class TestFixedPointCollisionProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=64.0, max_value=4096.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_stochastic_drift_small_for_any_bath(self, seed, c_mp_lsb):
        drift = fixed_point_energy_drift(
            "stochastic", rounds=10, n_particles=1000,
            c_mp_lsb=c_mp_lsb, seed=seed,
        )
        # Stochastic rounding: drift stays within a few percent even on
        # very cold baths over 10 rounds.
        assert abs(drift) < 0.05

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_truncation_always_loses(self, seed):
        drift = fixed_point_energy_drift(
            "truncate", rounds=15, n_particles=1000,
            c_mp_lsb=96.0, seed=seed,
        )
        assert drift < 0.0

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["truncate", "stochastic", "floor"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_drift_bounded_by_lsb_scale(self, seed, mode):
        # Per-collision energy error is O(LSB * h); on a warm bath
        # (4096 LSB) even 20 rounds of truncation stay under 1%.
        drift = fixed_point_energy_drift(
            mode, rounds=20, n_particles=800, c_mp_lsb=4096.0, seed=seed
        )
        assert abs(drift) < 0.01


class TestVPGeometryProperties:
    @given(
        st.integers(min_value=0, max_value=10),   # log2 processors
        st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_vpr_covers_population(self, log_p, n):
        m = CM2(n_processors=2**log_p)
        g = m.geometry(n)
        assert g.vpr * m.n_processors >= n
        assert (g.vpr - 1) * m.n_processors < n

    @given(
        st.integers(min_value=1, max_value=8),    # log2 processors
        st.integers(min_value=2, max_value=4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_pair_offchip_zero_iff_even_vpr(self, log_p, n):
        m = CM2(n_processors=2**log_p)
        g = m.geometry(n)
        f = g.pair_offchip_fraction()
        assert 0.0 <= f <= 1.0
        if g.vpr % 2 == 0:
            assert f == 0.0
        if g.vpr == 1 and n >= 2 * m.n_processors - 1:
            assert f == 1.0
