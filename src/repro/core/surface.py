"""Surface aerodynamics: pressure and drag from reflection impulses.

The paper's motivation is vehicle design (NASP, AOTVs), and the
quantity designers need from a DSMC code is the surface load.  In a
particle simulation it falls out of the boundary conditions for free:
every specular reflection transfers momentum ``-2 m c_n`` to the body,
so accumulating reflection impulses per surface strip over the
averaging phase gives the pressure distribution, and summing the x
component gives the (pressure) drag.

Validation: for the attached oblique shock, inviscid theory fixes the
ramp pressure at the post-shock static pressure
``p2 = p_inf * (1 + 2 gamma / (gamma + 1) (Mn^2 - 1))`` -- about
9.2 p_inf for the paper's Mach 4 / 30-degree case -- and the measured
impulse flux on a non-penetrating specular wall equals the gas static
pressure exactly (kinetic theory: flux of 2 m c_n over the incoming
half-Maxwellian is n m <c_n^2> = p).
"""

from __future__ import annotations

import math
import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


class SurfaceSampler:
    """Accumulates reflection impulses on the wedge surfaces.

    The ramp is divided into ``n_strips`` equal-x strips; the vertical
    back face is one additional panel.  :meth:`record` is called by the
    boundary machinery with the per-particle velocity changes of a
    reflection pass.

    All quantities are per unit span (2-D) in simulation units
    (m = 1, cell widths, time steps).
    """

    def __init__(self, wedge: Wedge, n_strips: int = 16) -> None:
        if n_strips < 1:
            raise ConfigurationError("n_strips must be >= 1")
        self.wedge = wedge
        self.n_strips = n_strips
        self._impulse_x = np.zeros(n_strips + 1)  # [-1] = back face
        self._impulse_y = np.zeros(n_strips + 1)
        self._hits = np.zeros(n_strips + 1, dtype=np.int64)
        self._steps = 0

    # -- accumulation -----------------------------------------------------

    def record(
        self,
        x: np.ndarray,
        du: np.ndarray,
        dv: np.ndarray,
        back_face: np.ndarray,
    ) -> None:
        """Add one reflection pass's impulses.

        Parameters
        ----------
        x:
            Post-reflection x positions of the reflected particles.
        du, dv:
            Velocity changes of the *particles*; the body receives the
            opposite impulse.
        back_face:
            Mask of reflections off the vertical back face (the rest
            bin onto the ramp strips).
        """
        x = np.asarray(x)
        if x.size == 0:
            return
        strip = np.clip(
            ((x - self.wedge.x_leading) / self.wedge.base * self.n_strips)
            .astype(np.int64),
            0,
            self.n_strips - 1,
        )
        strip = np.where(np.asarray(back_face), self.n_strips, strip)
        np.add.at(self._impulse_x, strip, -np.asarray(du))
        np.add.at(self._impulse_y, strip, -np.asarray(dv))
        np.add.at(self._hits, strip, 1)

    def end_step(self) -> None:
        """Mark the completion of one sampled time step."""
        self._steps += 1

    def reset(self) -> None:
        """Discard accumulated impulses (e.g. at end of transient)."""
        self._impulse_x[:] = 0.0
        self._impulse_y[:] = 0.0
        self._hits[:] = 0
        self._steps = 0

    # -- derived quantities ----------------------------------------------

    @property
    def steps(self) -> int:
        return self._steps

    def _require(self) -> None:
        if self._steps == 0:
            raise ConfigurationError("no steps recorded")

    def ramp_pressure(self) -> np.ndarray:
        """Normal pressure on each ramp strip (force / area / time).

        Projects the strip impulse onto the outward ramp normal and
        divides by strip area (strip length along the surface, unit
        span) and by the recorded steps.
        """
        self._require()
        nx, ny = self.wedge.ramp_normal
        strip_len = self.wedge.base / self.n_strips / math.cos(self.wedge.angle)
        # The body's impulse points *into* the surface; projecting onto
        # the inward normal (-n) makes compression positive.
        normal_impulse = -(
            self._impulse_x[:-1] * nx + self._impulse_y[:-1] * ny
        )
        return normal_impulse / strip_len / self._steps

    def back_face_pressure(self) -> float:
        """Pressure on the vertical base (the near-vacuum wake side)."""
        self._require()
        area = self.wedge.height
        return float(self._impulse_x[-1] / area / self._steps) * -1.0

    def drag(self) -> float:
        """Streamwise force on the body per step (pressure drag)."""
        self._require()
        return float(self._impulse_x.sum() / self._steps)

    def lift(self) -> float:
        """Transverse force on the body per step."""
        self._require()
        return float(self._impulse_y.sum() / self._steps)

    def hits_per_step(self) -> float:
        """Mean wall encounters per sampled step."""
        self._require()
        return float(self._hits.sum() / self._steps)

    # -- coefficients ------------------------------------------------------

    def pressure_coefficient(self, freestream: Freestream) -> np.ndarray:
        """Cp per ramp strip: (p - p_inf) / (1/2 rho_inf U^2)."""
        p_inf = freestream.density * freestream.rt
        q_inf = 0.5 * freestream.density * freestream.speed**2
        return (self.ramp_pressure() - p_inf) / q_inf

    def drag_coefficient(self, freestream: Freestream) -> float:
        """Cd referenced to the frontal (base-height) area."""
        q_inf = 0.5 * freestream.density * freestream.speed**2
        return self.drag() / (q_inf * self.wedge.height)


def oblique_shock_surface_pressure_ratio(
    mach: float, angle_deg: float, gamma: float
) -> float:
    """Theory target: ramp pressure / freestream pressure.

    Inviscid attached flow puts the post-shock static pressure on the
    ramp: ``p2/p1`` of the oblique shock.
    """
    from repro.physics import theory

    beta = theory.shock_angle(mach, math.radians(angle_deg), gamma)
    return theory.normal_shock_pressure_ratio(mach * math.sin(beta), gamma)
