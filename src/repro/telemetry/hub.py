"""The telemetry hub: one observability layer for every execution mode.

:class:`Telemetry` is the object the serial engine, the sharded
backend and the supervisor all emit into.  It owns

* a :class:`~repro.telemetry.metrics.MetricsRegistry` fed every step
  with engine metrics (population, collision candidates/acceptances,
  reservoir flux, migration rows per channel, exchange occupancy
  high-water marks, audit and recovery totals) and physics observables
  (energy drift, per-shard load imbalance, mean free path per x band);
* a :class:`~repro.telemetry.spans.SpanTracer` merging driver-side
  phase spans (via the perf ledger's tracer hook) with worker-side
  shared-memory span rings (drained at the step barrier), exportable
  to Chrome ``trace_event`` JSON;
* the run's JSONL :class:`~repro.telemetry.events.EventStream`
  (``events.jsonl``) plus a Prometheus snapshot file
  (``metrics.prom``) and an optional live HTTP endpoint.

Wiring: pass a hub to ``Simulation(config, telemetry=...)``; the
engine calls :meth:`on_step` once per completed step, the supervisor
calls :meth:`record_audit`/:meth:`record_event`, and :meth:`close`
writes the final artifacts (``trace.json``, ``metrics.prom``).

Overhead: with defaults the per-step cost is a handful of dict updates
and one histogram insert -- microseconds against kernels that run for
hundreds of milliseconds -- plus cadenced JSONL/Prometheus writes; the
measured budget (<3% at the 240k-particle wedge) is enforced by
``benchmarks/bench_telemetry_overhead.py``.
"""

from __future__ import annotations

import os
import pathlib
import sys
import time
from typing import Optional, Union

import numpy as np

from repro.perf import PAPER_PHASES
from repro.telemetry import observables
from repro.telemetry.events import EventStream
from repro.telemetry.exporters import ensure_server, write_prometheus_snapshot
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer

PathLike = Union[str, pathlib.Path]

#: The paper's phase split, for the live status line.
_PAPER_SPLIT = "14/27/20/39"


class Telemetry:
    """Central telemetry hub for one run.

    Parameters
    ----------
    run_dir:
        Directory for ``events.jsonl`` / ``metrics.prom`` /
        ``trace.json``.  ``None`` keeps everything in memory (metrics
        and spans still accumulate and can be snapshotted).
    sample_every:
        Steps between JSONL metric samples and Prometheus snapshot
        rewrites (the "default cadence" of the overhead budget).
    observables_every:
        Steps between O(N) physics observables (mean-free-path bands).
    live, live_every:
        Print a one-line status to stderr every ``live_every`` steps.
    port:
        Serve ``/metrics`` on this port (``0`` = ephemeral) via the
        stdlib HTTP server; ``None`` disables.
    span_ring_capacity:
        Rows per worker span ring (the sharded backend allocates the
        rings at bind time when a hub is attached).
    max_spans:
        Driver-side span buffer bound; excess spans are dropped and
        counted.
    """

    def __init__(
        self,
        run_dir: Optional[PathLike] = None,
        sample_every: int = 10,
        observables_every: int = 50,
        live: bool = False,
        live_every: int = 20,
        port: Optional[int] = None,
        span_ring_capacity: int = 8192,
        max_spans: int = 200_000,
        mfp_bands: int = 8,
    ) -> None:
        self.sample_every = max(1, int(sample_every))
        self.observables_every = max(1, int(observables_every))
        self.live = bool(live)
        self.live_every = max(1, int(live_every))
        self.span_ring_capacity = int(span_ring_capacity)
        self.mfp_bands = int(mfp_bands)
        self.registry = MetricsRegistry()
        reg = self.registry
        # Hot-path metric objects are resolved once here; on_step then
        # touches them as attributes instead of get-or-create lookups.
        self._m_steps = reg.counter(
            "repro_steps_total", help="completed simulation steps"
        )
        self._m_collisions = reg.counter(
            "repro_collisions_total", help="accepted collision pairs"
        )
        self._m_candidates = reg.counter(
            "repro_collision_candidates_total",
            help="same-cell candidate pairs",
        )
        self._m_injected = reg.counter(
            "repro_particles_injected_total",
            help="reservoir flux: particles injected upstream",
        )
        self._m_removed = reg.counter(
            "repro_particles_removed_total",
            help="reservoir flux: particles removed downstream",
        )
        self._m_flow = reg.gauge(
            "repro_flow_particles", help="particles in the flow"
        )
        self._m_reservoir = reg.gauge(
            "repro_reservoir_particles",
            help="particles idling in the reservoir",
        )
        self._m_drift = reg.gauge(
            "repro_energy_drift",
            help="relative total-energy drift vs the run baseline",
        )
        self._m_uspp = reg.histogram(
            "repro_step_us_per_particle",
            help="four-phase wall-clock microseconds per particle per step",
        )
        self._m_moved = reg.gauge(
            "repro_sort_moved_fraction",
            help="fraction of particles that changed cell this step "
            "(incremental sort kernel only)",
        )
        self._m_rebuilds = reg.counter(
            "repro_sort_rebuilds_total",
            help="full canonical-order rebuilds by the incremental "
            "sort kernel",
        )
        self._m_migrations = None  # created on first sharded step
        self.tracer = SpanTracer(max_spans=max_spans, pid=os.getpid())
        self.stream: Optional[EventStream] = (
            EventStream(run_dir) if run_dir is not None else None
        )
        self.run_dir = pathlib.Path(run_dir) if run_dir is not None else None
        self.server = ensure_server(self.registry, port)
        self._sim = None
        self._last_channel_counts = None
        self._energy0: Optional[float] = None
        self._flushed_spans = 0
        self._closed = False
        self._t_attach = time.time()

    # -- lifecycle -------------------------------------------------------

    def attach(self, sim) -> "Telemetry":
        """Bind to a simulation: baseline energy, perf tracer hook."""
        self._sim = sim
        sim.perf.tracer = self.tracer
        if self._energy0 is None:
            self._energy0 = float(sim.particles.total_energy())
        if sim.config.scenario is not None:
            # Constant-1 info gauge: joins the scenario id onto every
            # other series at query time (the Prometheus info idiom).
            self.registry.gauge(
                "repro_scenario_info",
                help="scenario the run was built from (info label)",
                labels={"scenario": sim.config.scenario},
            ).set(1.0)
        if self.stream is not None and not self.stream.events:
            extra = (
                {"scenario": sim.config.scenario}
                if sim.config.scenario is not None
                else {}
            )
            self.stream.emit(
                "run_start",
                step=sim.step_count,
                n_flow=sim.particles.n,
                workers=getattr(sim.backend, "n_workers", 1),
                seed=sim.config.seed
                if isinstance(sim.config.seed, int)
                else None,
                **extra,
            )
        return self

    def reattach(self, sim) -> None:
        """Re-bind after recovery replaced the simulation object.

        The energy baseline and accumulated metrics survive -- a
        recovery restores a bitwise-identical state, so continuity of
        the drift series is exactly what we want.
        """
        self._sim = sim
        sim.telemetry = self
        sim.perf.tracer = self.tracer

    def close(self) -> None:
        """Flush final artifacts and stop the exporter (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.flush(final=True)
        if self.run_dir is not None:
            import json

            trace_path = self.run_dir / "trace.json"
            trace_path.write_text(
                json.dumps(self.tracer.chrome_trace()), encoding="utf-8"
            )
        if self.server is not None:
            self.server.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the per-step feed ----------------------------------------------

    def on_step(self, sim, diag) -> None:
        """Ingest one completed step's diagnostics (every mode).

        The every-step path touches pre-resolved metric objects and the
        migration counter only; per-shard gauges, ring drains and file
        writes all run at the sampling cadence (the overhead budget is
        enforced by ``benchmarks/bench_telemetry_overhead.py``).
        """
        step = diag.step
        self.tracer.stamp_pending(step)

        self._m_steps.inc()
        self._m_collisions.inc(diag.n_collisions)
        self._m_candidates.inc(diag.n_candidates)
        b = diag.boundary
        self._m_injected.inc(b.n_injected_upstream)
        self._m_removed.inc(b.n_removed_downstream)
        self._m_flow.set(diag.n_flow)
        self._m_reservoir.set(diag.n_reservoir)

        if diag.sort_moved_fraction is not None:
            self._m_moved.set(diag.sort_moved_fraction)
        if diag.sort_rebuilds:
            self._m_rebuilds.inc(diag.sort_rebuilds)

        drift = None
        if self._energy0:
            drift = observables.energy_drift(diag.total_energy, self._energy0)
            self._m_drift.set(drift)

        us_pp = None
        if diag.phase_seconds and diag.n_flow > 0:
            step_s = sum(
                diag.phase_seconds.get(p, 0.0) for p in PAPER_PHASES
            )
            us_pp = step_s / diag.n_flow * 1e6
            self._m_uspp.observe(us_pp)

        self._count_migrations(sim)
        self._collect_rebalance(sim, step)

        do_obs = step % self.observables_every == 0
        do_sample = step % self.sample_every == 0
        do_live = self.live and step % self.live_every == 0
        imbalance = None
        if do_obs or do_sample or do_live:
            imbalance = self._sample_backend(sim)
        if do_obs:
            self._sample_observables(sim, step)
        if do_sample:
            self._emit_sample(sim, diag, step, us_pp, drift, imbalance)
        if do_live:
            self._print_live(sim, diag, step, us_pp, imbalance)

    def _count_migrations(self, sim) -> None:
        """Every-step migration total (the counts reset each step)."""
        mig_fn = getattr(sim.backend, "migration_state", None)
        if not callable(mig_fn):
            return
        state = mig_fn()
        if state is None:
            return
        counts, _capacity = state
        if self._m_migrations is None:
            self._m_migrations = self.registry.counter(
                "repro_migrations_total",
                help="particle rows migrated between shards",
            )
        self._m_migrations.inc(int(counts.sum()))
        self._last_channel_counts = counts

    def _collect_rebalance(self, sim, step: int) -> None:
        """Ingest the backend's latest rebalance event, if any.

        This is where the measured ``load_imbalance`` gauge is finally
        *consumed*, not just emitted: the backend acts on the same
        per-shard loads and reports back what it did (or why it
        skipped), and the hub turns that into counters and a JSONL
        ``rebalance`` event.
        """
        take_fn = getattr(sim.backend, "take_rebalance_event", None)
        if not callable(take_fn):
            return
        event = take_fn()
        if event is None:
            return
        reg = self.registry
        if event.get("executed"):
            reg.counter(
                "repro_rebalances_total",
                help="slab repartitions executed",
            ).inc()
            reg.counter(
                "repro_rebalance_columns_moved_total",
                help="cell columns re-homed by slab repartitions",
            ).inc(int(event.get("columns_moved", 0)))
            reg.counter(
                "repro_rebalance_rows_moved_total",
                help="particle rows shipped by slab repartitions",
            ).inc(int(event.get("rows_moved", 0)))
        else:
            reg.counter(
                "repro_rebalances_skipped_total",
                help="slab repartitions skipped (capacity re-validation)",
            ).inc()
        if self.stream is not None:
            self.stream.emit("rebalance", **event)

    def _sample_backend(self, sim) -> Optional[float]:
        """Sharded-backend extras: loads, channels, worker spans.

        Runs at the sampling cadence, not every step -- per-shard
        labeled gauges and the span-ring drain are the expensive part
        of backend introspection.  Ring capacity (``span_ring_capacity``
        rows) comfortably covers a cadence worth of worker spans.
        """
        backend = sim.backend
        reg = self.registry
        imbalance = None

        loads_fn = getattr(backend, "shard_loads", None)
        if callable(loads_fn):
            loads = loads_fn()
            if loads is not None:
                imbalance = observables.load_imbalance(loads)
                reg.gauge(
                    "repro_load_imbalance",
                    help="max-over-mean shard particle load",
                ).set(imbalance)
                for k, n_k in enumerate(loads):
                    reg.gauge(
                        "repro_shard_load",
                        labels={"shard": str(k)},
                        help="particles owned per shard",
                    ).set(n_k)

        counts = self._last_channel_counts
        if counts is not None:
            for (shard, direction), rows in np.ndenumerate(counts):
                reg.gauge(
                    "repro_channel_rows",
                    labels={
                        "shard": str(shard),
                        "dir": "left" if direction == 0 else "right",
                    },
                    help="migration rows per channel this step",
                ).set(int(rows))
        occ_fn = getattr(backend, "exchange_occupancy", None)
        if callable(occ_fn):
            occ = occ_fn()
            if occ is not None:
                high_water, capacity = occ
                peak = float(np.max(high_water)) / capacity if capacity else 0.0
                reg.gauge(
                    "repro_exchange_occupancy_peak",
                    help="high-water channel occupancy as a fraction of capacity",
                ).set(peak)

        self._drain_worker_spans(sim)
        return imbalance

    def _drain_worker_spans(self, sim) -> None:
        drain_fn = getattr(sim.backend, "drain_span_rings", None)
        if callable(drain_fn):
            rows = drain_fn()
            if rows is not None and rows.shape[0]:
                self.tracer.absorb_ring_rows(rows)

    def _sample_observables(self, sim, step: int) -> None:
        """O(N) physics observables at their own (slower) cadence."""
        cfg = sim.config
        cols_fn = getattr(sim.backend, "shard_columns", None)
        views = cols_fn() if callable(cols_fn) else None
        xs = (
            [v["x"] for v in views] if views is not None else [sim.particles.x]
        )
        bands = observables.mean_free_path_bands(
            xs,
            cfg.domain.width,
            cfg.domain.height,
            cfg.freestream.density,
            cfg.freestream.lambda_mfp,
            n_bands=self.mfp_bands,
        )
        if bands is None:
            return
        for i, lam in enumerate(bands):
            self.registry.gauge(
                "repro_mean_free_path_cells",
                labels={"band": str(i)},
                help="local mean free path per x band, cell widths",
            ).set(lam if np.isfinite(lam) else -1.0)
        if self.stream is not None:
            self.stream.emit(
                "observables",
                step=step,
                mean_free_path_bands=[
                    (float(v) if np.isfinite(v) else None) for v in bands
                ],
            )

    def _emit_sample(self, sim, diag, step, us_pp, drift, imbalance) -> None:
        """One cadenced JSONL metrics sample + pending spans + .prom."""
        if self.stream is not None:
            record = {
                "step": step,
                "n_flow": diag.n_flow,
                "n_reservoir": diag.n_reservoir,
                "n_collisions": diag.n_collisions,
                "n_candidates": diag.n_candidates,
                "us_per_particle": us_pp,
                "energy_drift": drift,
                "fractions": sim.perf.fractions(),
            }
            if diag.sort_moved_fraction is not None:
                record["sort_moved_fraction"] = diag.sort_moved_fraction
            if diag.sort_rebuilds is not None:
                record["sort_rebuilds"] = int(
                    self._m_rebuilds.value
                )
            if imbalance is not None:
                record["load_imbalance"] = imbalance
            batch = [{"kind": "metrics", **record}]
            batch.extend(
                {"kind": "span", **span}
                for span in self.tracer.spans[self._flushed_spans:]
            )
            self.stream.append_many(batch)
            self._flushed_spans = len(self.tracer.spans)
        if self.run_dir is not None:
            write_prometheus_snapshot(
                self.registry, self.run_dir / "metrics.prom"
            )

    def _print_live(self, sim, diag, step, us_pp, imbalance) -> None:
        frac = sim.perf.fractions()
        split = "/".join(
            f"{100 * frac.get(p, 0.0):.0f}" for p in PAPER_PHASES
        )
        rec = self.registry.counter("repro_recoveries_total").value
        parts = [
            f"step {step:6d}",
            f"n={diag.n_flow}",
            f"{us_pp:.2f} us/p" if us_pp is not None else "us/p n/a",
            f"phases {split} (paper {_PAPER_SPLIT})",
        ]
        if imbalance is not None:
            parts.append(f"imb {imbalance:.2f}")
        if diag.sort_moved_fraction is not None:
            parts.append(
                f"mv {diag.sort_moved_fraction:.2f}"
                f"/rb {int(self._m_rebuilds.value)}"
            )
        parts.append(f"rec {int(rec)}")
        bal = self.registry.counter("repro_rebalances_total").value
        if bal:
            parts.append(f"bal {int(bal)}")
        print("  ".join(parts), file=sys.stderr, flush=True)

    # -- supervisor-facing hooks ----------------------------------------

    def record_audit(self, step: int, ok: bool, **fields) -> None:
        """Record one invariant-audit outcome."""
        self.registry.counter(
            "repro_audits_total", help="invariant audits executed"
        ).inc()
        failures = self.registry.counter(
            "repro_audit_failures_total",
            help="invariant audits that raised a violation",
        )
        if not ok:
            failures.inc()
        if self.stream is not None:
            self.stream.emit("audit", step=step, ok=ok, **fields)

    def record_event(self, kind: str, **fields) -> None:
        """Mirror an arbitrary run event (recovery, checkpoint, ...).

        Recovery events also bump the recovery counter here: the
        supervisor attaches them to the step diagnostics only *after*
        ``Simulation.step`` has already fed the hub, so :meth:`on_step`
        never sees them on the supervised path.
        """
        if kind == "recovery":
            self.registry.counter(
                "repro_recoveries_total",
                help="supervisor recoveries absorbed",
            ).inc()
        if self.stream is not None:
            self.stream.emit(kind, **fields)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of the registry plus span stats."""
        return {
            "metrics": self.registry.snapshot(),
            "spans": len(self.tracer.spans),
            "spans_dropped": self.tracer.dropped,
            "wall_seconds": time.time() - self._t_attach,
        }

    def flush(self, final: bool = False) -> None:
        """Write the Prometheus snapshot and drain unflushed spans."""
        if self._sim is not None:
            self._drain_worker_spans(self._sim)
        if self.stream is not None:
            self.stream.append_many(
                {"kind": "span", **span}
                for span in self.tracer.spans[self._flushed_spans:]
            )
            self._flushed_spans = len(self.tracer.spans)
            if final:
                self.stream.emit("run_end", snapshot=self.snapshot())
                self.stream.close()
        if self.run_dir is not None:
            write_prometheus_snapshot(
                self.registry, self.run_dir / "metrics.prom"
            )
