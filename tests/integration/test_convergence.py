"""Convergence machinery: steady-state detection and the 1/sqrt(N) law."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import (
    SteadyStateDetector,
    expected_noise,
    measured_field_noise,
)
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream


class TestDetectorOnSyntheticSignals:
    def test_exponential_settling(self):
        det = SteadyStateDetector(window=20, tolerance=0.002, patience=5)
        steady_step = None
        for t in range(600):
            v = 1000.0 * (1.0 + 0.5 * math.exp(-t / 60.0))
            if det.update(v):
                steady_step = det.steady_at
                break
        assert steady_step is not None
        # Steady declared well after the decay scale but before the end.
        assert 150 < steady_step < 550

    def test_never_steady_on_ramp(self):
        det = SteadyStateDetector(window=20, tolerance=0.001, patience=5)
        for t in range(400):
            assert not det.update(1000.0 + 5.0 * t)
        assert not det.is_steady

    def test_noise_does_not_fool_detector(self, rng):
        det = SteadyStateDetector(window=40, tolerance=0.01, patience=5)
        for t in range(300):
            det.update(1000.0 + rng.normal(0, 5.0))
        assert det.is_steady

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SteadyStateDetector(window=1)
        with pytest.raises(ConfigurationError):
            SteadyStateDetector(tolerance=0.0)
        with pytest.raises(ConfigurationError):
            SteadyStateDetector(patience=0)


class TestDetectorOnRealRun:
    def test_tunnel_population_settles(self, small_config):
        sim = Simulation(small_config)
        det = SteadyStateDetector(window=30, tolerance=0.005, patience=5)
        for _ in range(250):
            d = sim.step()
            if det.update(d.n_flow):
                break
        assert det.is_steady
        # The wedge tunnel fills for tens of steps before settling.
        assert det.steady_at > 60


class TestNoiseLaw:
    def test_expected_noise_scaling(self):
        assert expected_noise(10, 100) == pytest.approx(
            expected_noise(10, 400) * 2.0
        )
        with pytest.raises(ConfigurationError):
            expected_noise(0, 10)

    def test_measured_matches_expected_order(self):
        # Empty-tunnel freestream: measured patch noise within ~3x of
        # the Poisson prediction (decorrelation inflates it somewhat).
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)
        cfg = SimulationConfig(
            domain=Domain(30, 20), freestream=fs, wedge=None, seed=4
        )
        sim = Simulation(cfg)
        sim.run(40)
        steps = 60
        sim.run(steps, sample=True)
        rho = sim.density_ratio_field()
        measured = measured_field_noise(rho, (slice(5, 25), slice(5, 15)))
        predicted = expected_noise(10.0, steps)
        assert measured < 5.0 * predicted
        assert measured > 0.3 * predicted

    def test_noise_falls_with_averaging(self):
        fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)
        noises = {}
        for steps in (15, 240):
            cfg = SimulationConfig(
                domain=Domain(30, 20), freestream=fs, wedge=None, seed=4
            )
            sim = Simulation(cfg)
            sim.run(40)
            sim.run(steps, sample=True)
            rho = sim.density_ratio_field()
            noises[steps] = measured_field_noise(
                rho, (slice(5, 25), slice(5, 15))
            )
        # 16x more averaging ~ 4x less noise (allow slack for
        # correlation between snapshots).
        assert noises[240] < noises[15] / 2.0

    def test_region_validation(self):
        with pytest.raises(ConfigurationError):
            measured_field_noise(np.ones((4, 4)), (slice(0, 1), slice(0, 1)))
