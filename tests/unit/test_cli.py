"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Dagum" in out
        assert "7.2" in out

    def test_timing_model(self, capsys):
        assert main(["timing", "--processors", "1024"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(lines) == 5
        # Monotone decline of us/particle down the VPR column.
        times = [float(l.split()[-1]) for l in lines]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_heatbath_small(self, capsys):
        assert main([
            "heatbath", "--particles", "2000", "--cells", "20",
            "--steps", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "mcdonald-baganoff" in out
        assert "bird-time-counter" in out
        assert "nanbu-ploss" in out

    def test_wedge_small(self, capsys, tmp_path):
        save = tmp_path / "field.npz"
        code = main([
            "wedge", "--nx", "49", "--ny", "32", "--density", "10",
            "--transient", "180", "--average", "180",
            "--save", str(save),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shock angle" in out
        assert save.exists()
        rho = np.load(save)["density_ratio"]
        assert rho.shape == (49, 32)

    def test_wedge_vtk_export(self, capsys, tmp_path):
        vtk = tmp_path / "field.vtk"
        code = main([
            "wedge", "--nx", "40", "--ny", "26", "--density", "6",
            "--transient", "40", "--average", "40",
            "--vtk", str(vtk),
        ])
        assert code == 0
        text = vtk.read_text()
        assert "STRUCTURED_POINTS" in text
        assert "SCALARS density_ratio" in text
        assert "SCALARS mach" in text

    def test_wedge_unconverged_degrades_gracefully(self, capsys):
        code = main([
            "wedge", "--nx", "30", "--ny", "20", "--density", "2",
            "--transient", "3", "--average", "3",
        ])
        assert code == 0  # prints a diagnostic instead of crashing

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestRunSubcommand:
    def test_list_scenarios(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("wedge", "flat_plate", "cylinder", "channel",
                     "impulsive_start", "wedge3d"):
            assert name in out

    def test_no_scenario_prints_usage(self, capsys):
        assert main(["run"]) == 2
        assert "repro run" in capsys.readouterr().err

    def test_unknown_scenario_lists_registered(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as exc:
            main(["run", "nope"])
        assert "cylinder" in str(exc.value)

    def test_smoke_run_cylinder(self, capsys):
        assert main(["run", "cylinder", "--steps", "15"]) == 0
        out = capsys.readouterr().out
        assert "peak compression" in out

    def test_smoke_run_3d(self, capsys):
        assert main(["run", "wedge3d", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "serial 3-D driver" in out

    def test_3d_rejects_infrastructure_flags(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="supervised"):
            main(["run", "wedge3d", "--steps", "5", "--supervised"])

    def test_run_wedge_output_matches_wedge_alias(self, capsys):
        """The alias contract: 'wedge' and 'run wedge' with the same
        parameters produce identical reports (same RNG stream, same
        field, same metrology)."""
        flags = [
            "--nx", "49", "--ny", "32", "--density", "8",
            "--transient", "60", "--average", "80", "--seed", "5",
        ]
        assert main(["wedge"] + flags) == 0
        legacy = capsys.readouterr().out
        assert main(["run", "wedge"] + flags) == 0
        registry = capsys.readouterr().out
        strip = lambda text: [  # noqa: E731
            ln for ln in text.splitlines() if "steps in" not in ln
        ]
        assert strip(legacy) == strip(registry)


class TestEnsembleRun:
    def test_replicas_reports_confidence_intervals(self, capsys):
        code = main([
            "run", "wedge", "--replicas", "2", "--nx", "32", "--ny", "20",
            "--density", "6", "--steps", "10", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicas" in out
        # Whatever metrology succeeded is reported as a t-interval.
        assert "CI, n=2" in out or "metrology unavailable" in out

    def test_replicas_below_one_rejected(self, capsys):
        assert main(["run", "wedge", "--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_replicas_rejects_workers(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--workers"):
            main([
                "run", "wedge", "--replicas", "2", "--workers", "2",
                "--steps", "5",
            ])

    def test_replicas_rejects_3d_scenario(self, capsys):
        assert main([
            "run", "wedge3d", "--replicas", "2", "--steps", "5",
        ]) == 2
        assert "3-D" in capsys.readouterr().err
