"""Property-based tests for scans, sorts and the pairing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cm.scan import (
    segment_counts,
    segmented_copy_scan,
    segmented_max_scan,
    segmented_plus_scan,
)
from repro.cm.sort import sort_by_key
from repro.core.pairing import even_odd_pairs

values_and_heads = st.integers(min_value=1, max_value=200).flatmap(
    lambda n: st.tuples(
        arrays(np.int64, n, elements=st.integers(min_value=-100, max_value=100)),
        arrays(np.bool_, n),
    )
)


def normalize_heads(heads):
    heads = heads.copy()
    if heads.size:
        heads[0] = True
    return heads


class TestSegmentedScanProperties:
    @given(values_and_heads)
    @settings(max_examples=80, deadline=None)
    def test_plus_scan_matches_loop(self, data):
        v, heads = data
        heads = normalize_heads(heads)
        got = segmented_plus_scan(v, heads)
        acc = 0
        for i in range(v.size):
            acc = v[i] if heads[i] else acc + v[i]
            assert got[i] == acc

    @given(values_and_heads)
    @settings(max_examples=80, deadline=None)
    def test_copy_scan_matches_loop(self, data):
        v, heads = data
        heads = normalize_heads(heads)
        got = segmented_copy_scan(v, heads)
        cur = None
        for i in range(v.size):
            if heads[i]:
                cur = v[i]
            assert got[i] == cur

    @given(values_and_heads)
    @settings(max_examples=80, deadline=None)
    def test_max_scan_matches_loop(self, data):
        v, heads = data
        heads = normalize_heads(heads)
        got = segmented_max_scan(v, heads)
        cur = None
        for i in range(v.size):
            cur = v[i] if heads[i] else max(cur, v[i])
            assert got[i] == cur

    @given(values_and_heads)
    @settings(max_examples=60, deadline=None)
    def test_segment_counts_sum_to_total(self, data):
        v, heads = data
        heads = normalize_heads(heads)
        counts = segment_counts(heads)
        # Each segment contributes size * size when summed per element.
        head_idx = np.flatnonzero(heads)
        sizes = np.diff(np.concatenate((head_idx, [heads.size])))
        assert counts.sum() == (sizes**2).sum()


keys_strategy = arrays(
    np.int64,
    st.integers(min_value=0, max_value=300),
    elements=st.integers(min_value=0, max_value=1000),
)


class TestSortProperties:
    @given(keys_strategy)
    @settings(max_examples=80, deadline=None)
    def test_order_is_permutation_and_sorted(self, keys):
        res = sort_by_key(keys, key_bits=10)
        assert np.array_equal(np.sort(res.order), np.arange(keys.size))
        assert np.all(np.diff(keys[res.order]) >= 0)

    @given(keys_strategy)
    @settings(max_examples=80, deadline=None)
    def test_rank_inverse(self, keys):
        res = sort_by_key(keys, key_bits=10)
        if keys.size:
            assert np.array_equal(res.rank[res.order], np.arange(keys.size))


class TestPairingProperties:
    @given(keys_strategy)
    @settings(max_examples=80, deadline=None)
    def test_pairs_disjoint_and_complete(self, cells):
        sorted_cells = np.sort(cells)
        pairs = even_odd_pairs(sorted_cells)
        all_idx = np.concatenate((pairs.first, pairs.second))
        # Disjoint indices covering the first 2 * n_pairs addresses.
        assert np.unique(all_idx).size == all_idx.size
        assert pairs.n_pairs == cells.size // 2

    @given(keys_strategy)
    @settings(max_examples=80, deadline=None)
    def test_candidates_share_cells(self, cells):
        sorted_cells = np.sort(cells)
        pairs = even_odd_pairs(sorted_cells)
        a, b = pairs.candidate_indices()
        assert np.array_equal(sorted_cells[a], sorted_cells[b])

    @given(keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_at_most_one_lost_pair_per_cell(self, cells):
        # The even/odd scheme wastes at most one straddling pair per
        # cell boundary.
        sorted_cells = np.sort(cells)
        pairs = even_odd_pairs(sorted_cells)
        n_cells_present = np.unique(cells).size
        lost = pairs.n_pairs - pairs.n_candidates
        assert lost <= max(n_cells_present - 1, 0) + 1
