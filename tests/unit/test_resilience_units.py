"""Unit tests of the resilience primitives: fault plans and typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CheckpointCorruptionError,
    ExchangeOverflowError,
    InvariantViolationError,
    RecoveryExhaustedError,
    ReproError,
    ResilienceError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import ANY_SHARD, FAULT_KINDS

pytestmark = pytest.mark.resilience


class TestErrorTaxonomy:
    def test_all_resilience_errors_are_repro_errors(self):
        for cls in (
            WorkerCrashError,
            WorkerHangError,
            ExchangeOverflowError,
            InvariantViolationError,
            CheckpointCorruptionError,
            RecoveryExhaustedError,
        ):
            assert issubclass(cls, ResilienceError)
            assert issubclass(cls, ReproError)

    def test_context_is_carried_and_rendered(self):
        err = WorkerCrashError("worker died", step=12, shard=3)
        assert err.context == {"step": 12, "shard": 3}
        assert "step=12" in str(err)
        assert "shard=3" in str(err)

    def test_none_context_values_are_dropped(self):
        err = WorkerHangError("stuck", step=None, timeout_s=5.0)
        assert "step" not in err.context
        assert err.context["timeout_s"] == 5.0


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", step=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec("crash", step=-1)

    def test_kinds_cover_the_documented_set(self):
        assert set(FAULT_KINDS) == {
            "crash", "exception", "hang", "overflow", "corrupt", "truncate",
        }


class TestFaultPlan:
    def test_take_fires_once(self):
        plan = FaultPlan([FaultSpec("crash", step=5, shard=1)])
        assert plan.armed
        assert plan.take("crash", 3, 1) is None       # too early
        assert plan.take("crash", 5, 0) is None       # wrong shard
        spec = plan.take("crash", 5, 1)
        assert spec is not None and spec.fired
        assert plan.take("crash", 6, 1) is None       # fire-once
        assert not plan.armed

    def test_step_is_a_floor_not_an_exact_match(self):
        plan = FaultPlan([FaultSpec("overflow", step=5)])
        assert plan.take("overflow", 9, 0) is not None

    def test_any_shard_matches_first_comer(self):
        plan = FaultPlan([FaultSpec("hang", step=2, shard=ANY_SHARD)])
        assert plan.take("hang", 2, 7) is not None

    def test_shard_none_skips_shard_filter(self):
        plan = FaultPlan([FaultSpec("truncate", step=4, shard=2)])
        assert plan.take("truncate", 4) is not None

    def test_disarm_through(self):
        plan = FaultPlan(
            [FaultSpec("crash", step=5), FaultSpec("crash", step=50)]
        )
        assert plan.disarm_through(10) == 1
        assert plan.take("crash", 10, 0) is None      # early one disarmed
        assert plan.take("crash", 50, 0) is not None  # later one survives

    def test_corruption_pattern_is_deterministic_and_nasty(self):
        plan = FaultPlan([], seed=9)
        a = plan.corruption_pattern(3, 1, (4, 6))
        b = plan.corruption_pattern(3, 1, (4, 6))
        assert a.shape == (4, 6)
        assert np.array_equal(a, b, equal_nan=True)
        assert not np.isfinite(a).all() or np.abs(a[np.isfinite(a)]).max() > 1e20
        c = plan.corruption_pattern(4, 1, (4, 6))
        assert not np.array_equal(a, c, equal_nan=True)

    def test_describe_is_serializable(self):
        import json

        plan = FaultPlan([FaultSpec("exception", step=1, shard=0)])
        blob = json.dumps(plan.describe())
        assert "exception" in blob
