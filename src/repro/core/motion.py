"""Collisionless motion of particles (sub-step 1).

Eq. (2) of the paper: with time normalized by the step,
``x_i^(n+1) = x_i^n + u_i``.  "The implementation of particle motion in
the particles-to-processors mapping is very straightforward and
perfectly load balanced.  All particles simply add their velocity
components to the appropriate position co-ordinate.  All processors are
active for this event."

The update is in place (one fused add per coordinate -- the guides'
"in-place operations" rule) and vectorized over the whole population.
"""

from __future__ import annotations

import numpy as np

from repro.core.particles import ParticleArrays


def advance(particles: ParticleArrays) -> None:
    """Advance positions by one time step, in place."""
    particles.x += particles.u
    particles.y += particles.v
    # No z position in the 2-D configuration; w still participates in
    # collisions (three translational degrees of freedom).


def advance_with_z(particles: ParticleArrays, z: np.ndarray, depth: float) -> np.ndarray:
    """3-D-ready variant: also advance a periodic z coordinate.

    The paper's Future Work extends the code to 3-D; the motion kernel
    is the trivial part and is provided for the z-periodic slab
    configuration.  Returns the wrapped z array.
    """
    advance(particles)
    z = z + particles.w
    np.mod(z, depth, out=z)
    return z
