"""Q-format fixed-point arithmetic on NumPy int32 arrays.

The CM-2 implementation of the paper is an *integer* implementation: a
particle's physical state is held in 32-bit words with 23 fractional
bits (one sign bit and 8 integer bits remain, so representable values
span ``[-256, 256)`` with resolution ``2**-23``).  The paper notes this
"compares favourably with the IEEE floating point standard which
employs a 23 bit mantissa".

Two behaviours of that arithmetic matter physically and are modelled
here exactly:

* **Truncating division by two** consistently loses energy when the
  collision routine computes mean and relative velocities (eqs. (12)-(15)
  of the paper); the loss is worst in stagnation regions where the
  velocity words are small.  The fix is **stochastic rounding**: add 0
  or 1 with uniform probability so the rounding is correct *in a
  statistical sense*.

* The low-order bits of a state word provide a **"quick but dirty"
  random number** "of limited size and unspecified distribution" used
  in low-impact situations: sort-key mixing, choosing the random
  transposition, choosing random signs, and the stochastic-rounding bit
  itself.

All operations are vectorized over arrays; no Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError, FixedPointOverflowError

ArrayLike = Union[np.ndarray, float, int]

#: Rounding mode names accepted by :meth:`QFormat.halve`.
HALVE_MODES = ("truncate", "stochastic", "floor", "exact_paper")


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``frac_bits`` fractional bits.

    Values are stored in ``int32`` words.  A real number ``v`` is
    represented by the integer ``round(v * 2**frac_bits)``.

    Parameters
    ----------
    frac_bits:
        Number of fractional bits (the paper uses 23).
    word_bits:
        Total word size in bits; only 32 is supported (the CM-2 format),
        but the field is kept explicit so formats are self-describing.
    check_overflow:
        When True (default), encode/add/mul raise
        :class:`FixedPointOverflowError` if a result leaves the
        representable range.  Benchmarked hot loops may disable it.
    """

    frac_bits: int = 23
    word_bits: int = 32
    check_overflow: bool = True

    def __post_init__(self) -> None:
        if self.word_bits != 32:
            raise ConfigurationError(
                f"only 32-bit words are supported (got {self.word_bits})"
            )
        if not (1 <= self.frac_bits <= 30):
            raise ConfigurationError(
                f"frac_bits must be in [1, 30], got {self.frac_bits}"
            )

    # -- representation ------------------------------------------------

    @property
    def scale(self) -> int:
        """Scale factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment (one LSB)."""
        return 1.0 / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return (2**31 - 1) / self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return -(2**31) / self.scale

    def encode(self, values: ArrayLike) -> np.ndarray:
        """Convert real values to fixed-point words (round to nearest)."""
        scaled = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        if self.check_overflow:
            if np.any(scaled > 2**31 - 1) or np.any(scaled < -(2**31)):
                bad = np.asarray(values)[
                    (scaled > 2**31 - 1) | (scaled < -(2**31))
                ]
                raise FixedPointOverflowError(
                    f"value(s) out of Q{31 - self.frac_bits}."
                    f"{self.frac_bits} range [{self.min_value}, "
                    f"{self.max_value}]: e.g. {np.ravel(bad)[:3]}"
                )
        return scaled.astype(np.int32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Convert fixed-point words back to float64 values."""
        return np.asarray(words, dtype=np.float64) / self.scale

    # -- arithmetic ----------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fixed-point addition (words add directly)."""
        out = np.add(a, b, dtype=np.int64)
        return self._narrow(out)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fixed-point subtraction."""
        out = np.subtract(a, b, dtype=np.int64)
        return self._narrow(out)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fixed-point multiply: ``(a * b) >> frac_bits`` via int64.

        The product is truncated (floor-shifted), matching bit-serial
        hardware; multiplication appears only in low-sensitivity places
        (the selection rule), so no stochastic rounding is applied.
        """
        prod = np.multiply(a, b, dtype=np.int64) >> self.frac_bits
        return self._narrow(prod)

    def mul_scalar_int(self, a: np.ndarray, k: int) -> np.ndarray:
        """Multiply words by a plain integer (no rescaling)."""
        out = np.multiply(a, int(k), dtype=np.int64)
        return self._narrow(out)

    def halve(
        self,
        a: np.ndarray,
        mode: str = "stochastic",
        rand_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Divide words by two under the selected rounding semantics.

        ``mode``:

        * ``"truncate"`` -- round toward zero, the raw CM-2 integer
          divide.  Systematically shrinks magnitudes: this is the mode
          whose cumulative energy loss the paper observed in stagnation
          regions.
        * ``"stochastic"`` -- add a uniform 0/1 bit *before* the shift,
          so odd words round up or down with equal probability; the
          expected value is exact and even words are untouched.  This is
          the statistically correct rounding the paper adopts.
        * ``"floor"`` -- arithmetic shift right (round toward -inf);
          included for completeness/ablation.
        * ``"exact_paper"`` -- the paper's literal wording ("adding with
          uniform probability either 0 or 1 to the result of this
          division"), i.e. the bit is added *after* a truncating divide.
          Unbiased for odd words but biased +0.5 LSB for even words;
          kept so the ablation bench can show why adding the bit before
          the shift is the right reading.

        ``rand_bits`` supplies the 0/1 bits for the stochastic modes
        (e.g. from :func:`quick_dirty_bits`); if omitted they are drawn
        from a module-level generator.
        """
        a = np.asarray(a)
        if mode == "floor":
            return (a >> 1).astype(np.int32)
        if mode == "truncate":
            # Round toward zero: floor-shift, then bump negatives that
            # had a dropped bit back toward zero.
            return ((a + (a < 0)) >> 1).astype(np.int32)
        if mode in ("stochastic", "exact_paper"):
            if rand_bits is None:
                rand_bits = _module_rng().integers(
                    0, 2, size=a.shape, dtype=np.int32
                )
            bits = np.asarray(rand_bits, dtype=np.int32) & 1
            if mode == "stochastic":
                return ((a + bits) >> 1).astype(np.int32)
            return (((a + (a < 0)) >> 1) + bits).astype(np.int32)
        raise ConfigurationError(
            f"unknown halve mode {mode!r}; expected one of {HALVE_MODES}"
        )

    def _narrow(self, wide: np.ndarray) -> np.ndarray:
        """Narrow an int64 intermediate back to int32 words."""
        if self.check_overflow:
            if np.any(wide > 2**31 - 1) or np.any(wide < -(2**31)):
                raise FixedPointOverflowError(
                    "fixed-point operation overflowed 32-bit word"
                )
            return wide.astype(np.int32)
        # Wrap-around semantics, as real hardware would.
        return (wide & 0xFFFFFFFF).astype(np.uint32).view(np.int32).reshape(
            wide.shape
        )


#: The paper's format: 32-bit words, 23 fractional bits.
Q8_23 = QFormat(frac_bits=23)


# ---------------------------------------------------------------------------
# "Quick but dirty" low-order-bit random numbers
# ---------------------------------------------------------------------------

def quick_dirty_bits(words: np.ndarray, nbits: int, shift: int = 0) -> np.ndarray:
    """Extract ``nbits`` low-order bits from state words.

    The paper: "An additional advantage of this implementation is the
    availability of a quick but dirty random number in the low order
    bits of a physical state quantity."  After a few collisionful time
    steps the low fractional bits of a particle's position/velocity are
    effectively chaotic; they are used for low-impact draws only.

    Parameters
    ----------
    words:
        int32 state words (any shape).
    nbits:
        How many bits to extract (1..16).
    shift:
        Skip this many lowest bits first (bit 0 is often consumed by the
        stochastic-rounding draw, so other draws read higher bits).
    """
    if not 1 <= nbits <= 16:
        raise ConfigurationError(f"nbits must be in [1, 16], got {nbits}")
    if shift < 0 or shift + nbits > 31:
        raise ConfigurationError(f"invalid shift {shift} for {nbits} bits")
    mask = (1 << nbits) - 1
    return ((np.asarray(words, dtype=np.int64) >> shift) & mask).astype(np.int32)


def quick_dirty_uniform(words: np.ndarray, shift: int = 0) -> np.ndarray:
    """Map low-order bits to floats in [0, 1) with 16-bit granularity.

    Convenience wrapper over :func:`quick_dirty_bits` for places that
    want a unit-interval draw (e.g. comparing against a collision
    probability in the CM engine).
    """
    return quick_dirty_bits(words, 16, shift).astype(np.float64) / 65536.0


_RNG_CACHE: dict = {}


def _module_rng() -> np.random.Generator:
    """Fallback generator for stochastic halving without explicit bits."""
    if "rng" not in _RNG_CACHE:
        _RNG_CACHE["rng"] = np.random.default_rng(0xC0FFEE)
    return _RNG_CACHE["rng"]
