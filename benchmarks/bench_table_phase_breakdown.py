"""TAB1 -- the paper's computational-time distribution table.

"The distribution of computational time within the algorithm is as
follows: 1) collisionless motion of particles (including boundary
conditions) -- 14%  2) sort -- 27%  3) selection of collision partners
-- 20%  4) collision of selected partners -- 39%."

The bench runs the CM engine on the wedge problem at the calibration
VP ratio and reports the measured phase fractions.  A second (slow)
bench puts the three host sort kernels side by side -- ``counting``
(paper-faithful randomized counting sort), ``scaled-key`` (the legacy
wide-key argsort) and ``incremental`` (temporal-coherence canonical
order) -- and emits the measured per-step moved fraction, the datum
behind the incremental kernel's rebuild-threshold default.
"""

import dataclasses
import time

import pytest

from repro.analysis.report import ExperimentRecord
from repro.cm.machine import CM2
from repro.cm.timing import PHASES
from repro.constants import PAPER_PHASE_FRACTIONS
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

MACHINE = CM2(n_processors=256)


def _wedge_cm_sim():
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=17,
    )
    return CMSimulation(cfg, machine=MACHINE)


def test_table_phase_breakdown(benchmark, emit):
    sim = _wedge_cm_sim()
    sim.run(10)

    def regenerate():
        return sim.phase_breakdown()

    pb = benchmark(regenerate)
    fractions = pb.fractions()

    rec = ExperimentRecord("TAB1", "computational-time distribution by phase")
    for phase in PHASES:
        rec.add(
            f"{phase} fraction",
            PAPER_PHASE_FRACTIONS[phase],
            fractions[phase],
            rel_tol=0.3,
        )
    emit(rec)
    assert rec.all_agree()


HOST_KERNELS = ("counting", "scaled-key", "incremental")


@pytest.mark.slow
def test_table_host_kernel_breakdown(emit):
    """Host-engine phase split for all three sort kernels, side by side.

    The counting and scaled-key kernels re-randomize the order each
    step (the paper-faithful arrangement); the incremental kernel
    maintains a canonical order across steps, so its ledger is the one
    where the sort fraction should collapse.  The emitted record also
    carries the measured moved fraction -- the temporal-coherence
    statistic ``DEFAULT_REBUILD_THRESHOLD`` is calibrated against.
    """
    base = SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=20.0
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=17,
    )
    steps = 20
    rec = ExperimentRecord(
        "TAB1-host", "host sort-kernel phase split + moved fraction"
    )
    wall = {}
    for kernel in HOST_KERNELS:
        sim = Simulation(
            dataclasses.replace(base, sort_kernel=kernel), hotpath=True
        )
        sim.run(5)
        sim.perf.reset()
        moved = []
        t0 = time.perf_counter()
        for _ in range(steps):
            diag = sim.step()
            if diag.sort_moved_fraction is not None:
                moved.append(diag.sort_moved_fraction)
        wall[kernel] = time.perf_counter() - t0
        fractions = sim.perf.fractions()
        for phase in PHASES:
            rec.add(
                f"{kernel}: {phase} fraction",
                PAPER_PHASE_FRACTIONS[phase],
                fractions[phase],
                rel_tol=0.5,
                note="host kernel, informational",
            )
        if moved:
            rec.add(
                f"{kernel}: moved fraction (mean)",
                None,
                sum(moved) / len(moved),
            )
    rec.add(
        "incremental speedup vs counting",
        None,
        wall["counting"] / wall["incremental"],
    )
    emit(rec)
    # The incremental kernel must actually beat the counting hotpath.
    assert wall["incremental"] < wall["counting"]
