"""HOTPATH -- steps/sec of the fused step loop vs the legacy baseline.

Runs the default Mach-4 wedge problem twice from the same seed -- once
with the scratch-buffer hot path (counting sort, in-place reorders,
adjacent-pair collisions) and once on the legacy allocation-per-step
kernels (``Simulation(cfg, hotpath=False)``) -- and reports the
steps/sec ratio plus the hot path's per-phase wall-clock ledger in the
paper's motion / sort / selection / collision split.

Standalone: ``PYTHONPATH=src python benchmarks/bench_step_hotpath.py``
writes ``BENCH_step_hotpath.json`` at the repository root (the
gitignored ``benchmarks/out/`` is for the figure records).

CI smoke mode: ``--steps 5 --check-against BENCH_step_hotpath.json``
runs a short measurement and exits non-zero if the hot path's
us/particle/step regressed more than ``--tolerance`` (default 25%)
against the committed record -- a coarse tripwire for accidental
de-optimization, not a precision benchmark.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.perf import PAPER_PHASES
from repro.physics.freestream import Freestream

WARMUP_STEPS = 5
TIMED_STEPS = 30
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def default_config(density: float = 40.0, seed: int = 1989) -> SimulationConfig:
    """The paper's Mach-4 wedge geometry at the benchmark density."""
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


def _timed_run(hotpath: bool, config: SimulationConfig, steps: int):
    sim = Simulation(config, hotpath=hotpath)
    sim.run(WARMUP_STEPS)
    sim.perf.reset()
    t0 = time.perf_counter()
    sim.run(steps)
    elapsed = time.perf_counter() - t0
    return sim, elapsed


def run_benchmark(
    config: SimulationConfig | None = None, steps: int = TIMED_STEPS
) -> dict:
    """Measure both paths and return the comparison record."""
    config = config or default_config()
    legacy_sim, legacy_s = _timed_run(False, config, steps)
    hot_sim, hot_s = _timed_run(True, config, steps)

    n = hot_sim.particles.n
    per_step = hot_sim.perf.per_step_seconds()
    result = {
        "bench": "step_hotpath",
        "config": {
            "domain": [config.domain.nx, config.domain.ny],
            "mach": config.freestream.mach,
            "density": config.freestream.density,
            "lambda_mfp": config.freestream.lambda_mfp,
            "seed": config.seed,
        },
        "n_particles": n,
        "timed_steps": steps,
        "legacy": {
            "steps_per_sec": steps / legacy_s,
            "us_per_particle_step": legacy_s / steps / n * 1e6,
        },
        "hotpath": {
            "steps_per_sec": steps / hot_s,
            "us_per_particle_step": hot_s / steps / n * 1e6,
            "phase_seconds_per_step": per_step,
            "phase_fractions": hot_sim.perf.fractions(),
        },
        "speedup": legacy_s / hot_s,
        "paper_phases": list(PAPER_PHASES),
    }
    return result


def check_against(result: dict, baseline_path: pathlib.Path,
                  tolerance: float) -> bool:
    """True if the hot path is within ``tolerance`` of the baseline.

    Compares us/particle/step (machine-speed sensitive but
    population-size invariant, so a smoke run with few steps can be
    held against the full committed record).
    """
    baseline = json.loads(baseline_path.read_text())
    ref = baseline["hotpath"]["us_per_particle_step"]
    got = result["hotpath"]["us_per_particle_step"]
    ratio = got / ref
    print(
        f"regression check: {got:.3f} vs baseline {ref:.3f} "
        f"us/particle/step ({ratio:.2f}x, tolerance {1 + tolerance:.2f}x)"
    )
    return ratio <= 1.0 + tolerance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--steps", type=int, default=TIMED_STEPS,
        help="timed steps per engine (smoke runs use ~5)",
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help="committed BENCH_step_hotpath.json to compare with; "
             "exits 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown of the hot path (default 0.25)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(steps=args.steps)
    if args.check_against is None:
        out = REPO_ROOT / "BENCH_step_hotpath.json"
        out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"particles: {result['n_particles']}")
    print(
        "legacy  : {:.2f} steps/s".format(result["legacy"]["steps_per_sec"])
    )
    print(
        "hotpath : {:.2f} steps/s".format(result["hotpath"]["steps_per_sec"])
    )
    print("speedup : {:.2f}x".format(result["speedup"]))
    for name, frac in result["hotpath"]["phase_fractions"].items():
        print(
            "  {:<10s} {:6.1%}  ({:.2f} ms/step)".format(
                name,
                frac,
                result["hotpath"]["phase_seconds_per_step"][name] * 1e3,
            )
        )
    if args.check_against is not None:
        if not check_against(result, args.check_against, args.tolerance):
            print("FAIL: hot path slower than the committed baseline")
            return 1
        print("OK: within tolerance of the committed baseline")
    else:
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
