"""Inviscid 2-D theory oracle.

The paper validates the simulation against classical results read off
figures 1-6:

* the **oblique shock angle** (45 degrees for Mach 4 over a 30 degree
  wedge) from the theta-beta-M relation,
* the **post-shock density ratio** (3.7) from the Rankine-Hugoniot
  relations,
* the **Prandtl-Meyer expansion fan** around the wedge corner
  ("compared to theory and found to be correct"),
* the **shock thickness** growth with mean free path (3 cell widths
  near-continuum vs 5 cell widths at lambda = 0.5).

All functions take angles in *radians* unless the name says ``_deg``
and default to the diatomic gamma = 7/5.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.optimize import brentq

from repro.constants import GAMMA
from repro.errors import ConfigurationError


def _check_supersonic(mach: float) -> None:
    if mach <= 1.0:
        raise ConfigurationError(f"need supersonic Mach number, got {mach}")


# ---------------------------------------------------------------------------
# Oblique shock (theta-beta-M)
# ---------------------------------------------------------------------------

def deflection_angle(mach: float, beta: float, gamma: float = GAMMA) -> float:
    """Flow deflection theta produced by an oblique shock at angle beta.

    The theta-beta-M relation:
        tan(theta) = 2 cot(beta) (M^2 sin^2 beta - 1)
                     / (M^2 (gamma + cos 2 beta) + 2)
    """
    _check_supersonic(mach)
    mn2 = (mach * math.sin(beta)) ** 2
    if mn2 <= 1.0:
        return 0.0  # no compression: Mach wave or weaker
    num = 2.0 / math.tan(beta) * (mn2 - 1.0)
    den = mach**2 * (gamma + math.cos(2.0 * beta)) + 2.0
    return math.atan(num / den)


def max_deflection(mach: float, gamma: float = GAMMA) -> Tuple[float, float]:
    """Maximum attached-shock deflection and the beta achieving it.

    Returns ``(theta_max, beta_at_max)``.  Wedge angles above theta_max
    detach the shock (bow shock), which the library flags rather than
    silently solving the wrong branch.
    """
    _check_supersonic(mach)
    mu = math.asin(1.0 / mach)  # Mach angle: weakest possible shock
    betas = np.linspace(mu + 1e-9, math.pi / 2 - 1e-9, 20001)
    # Vectorized theta-beta-M over the whole beta sweep.
    mn2 = (mach * np.sin(betas)) ** 2
    num = 2.0 / np.tan(betas) * (mn2 - 1.0)
    den = mach**2 * (gamma + np.cos(2.0 * betas)) + 2.0
    thetas = np.where(mn2 > 1.0, np.arctan(num / den), 0.0)
    i = int(np.argmax(thetas))
    return float(thetas[i]), float(betas[i])


def shock_angle(
    mach: float, theta: float, gamma: float = GAMMA, strong: bool = False
) -> float:
    """Invert theta-beta-M: the (weak by default) shock angle beta.

    Raises :class:`ConfigurationError` for detached conditions.
    For Mach 4 and theta = 30 degrees with gamma = 7/5 the weak solution
    is beta ~= 45 degrees -- the angle the paper reads off figure 1.
    """
    _check_supersonic(mach)
    if theta < 0:
        raise ConfigurationError("deflection angle must be non-negative")
    if theta == 0.0:
        return math.asin(1.0 / mach)
    theta_max, beta_max = max_deflection(mach, gamma)
    if theta > theta_max:
        raise ConfigurationError(
            f"deflection {math.degrees(theta):.1f} deg exceeds maximum "
            f"{math.degrees(theta_max):.1f} deg at Mach {mach}: detached shock"
        )
    mu = math.asin(1.0 / mach)
    f = lambda b: deflection_angle(mach, b, gamma) - theta
    if strong:
        return brentq(f, beta_max, math.pi / 2 - 1e-10, xtol=1e-12)
    return brentq(f, mu + 1e-10, beta_max, xtol=1e-12)


def shock_angle_deg(
    mach: float, theta_deg: float, gamma: float = GAMMA, strong: bool = False
) -> float:
    """Degree-in, degree-out convenience wrapper for :func:`shock_angle`."""
    return math.degrees(
        shock_angle(mach, math.radians(theta_deg), gamma, strong)
    )


# ---------------------------------------------------------------------------
# Rankine-Hugoniot jumps
# ---------------------------------------------------------------------------

def normal_shock_density_ratio(mach_n: float, gamma: float = GAMMA) -> float:
    """rho2/rho1 across a normal shock of normal Mach number mach_n.

    rho2/rho1 = (gamma+1) Mn^2 / ((gamma-1) Mn^2 + 2).  For the paper's
    Mach 4 flow at beta = 45 deg, Mn = 2.83 and the ratio is 3.69 ~ 3.7.
    """
    if mach_n <= 1.0:
        raise ConfigurationError("normal Mach must exceed 1 for a shock")
    m2 = mach_n**2
    return (gamma + 1.0) * m2 / ((gamma - 1.0) * m2 + 2.0)


def normal_shock_pressure_ratio(mach_n: float, gamma: float = GAMMA) -> float:
    """p2/p1 = 1 + 2 gamma (Mn^2 - 1) / (gamma + 1)."""
    if mach_n <= 1.0:
        raise ConfigurationError("normal Mach must exceed 1 for a shock")
    return 1.0 + 2.0 * gamma * (mach_n**2 - 1.0) / (gamma + 1.0)


def normal_shock_temperature_ratio(mach_n: float, gamma: float = GAMMA) -> float:
    """T2/T1 from the pressure and density ratios (ideal gas)."""
    return normal_shock_pressure_ratio(mach_n, gamma) / normal_shock_density_ratio(
        mach_n, gamma
    )


def post_normal_shock_mach(mach_n: float, gamma: float = GAMMA) -> float:
    """Normal Mach number behind a normal shock."""
    if mach_n <= 1.0:
        raise ConfigurationError("normal Mach must exceed 1 for a shock")
    m2 = mach_n**2
    return math.sqrt((1.0 + 0.5 * (gamma - 1.0) * m2) / (gamma * m2 - 0.5 * (gamma - 1.0)))


def oblique_shock_density_ratio(
    mach: float, theta: float, gamma: float = GAMMA
) -> float:
    """rho2/rho1 behind the weak oblique shock for deflection theta."""
    beta = shock_angle(mach, theta, gamma)
    return normal_shock_density_ratio(mach * math.sin(beta), gamma)


def post_oblique_shock_mach(
    mach: float, theta: float, gamma: float = GAMMA
) -> float:
    """Downstream Mach number behind the weak oblique shock."""
    beta = shock_angle(mach, theta, gamma)
    mn2 = post_normal_shock_mach(mach * math.sin(beta), gamma)
    return mn2 / math.sin(beta - theta)


# ---------------------------------------------------------------------------
# Prandtl-Meyer expansion
# ---------------------------------------------------------------------------

def prandtl_meyer(mach: float, gamma: float = GAMMA) -> float:
    """The Prandtl-Meyer function nu(M), radians.  nu(1) = 0."""
    if mach < 1.0:
        raise ConfigurationError(f"Prandtl-Meyer needs M >= 1, got {mach}")
    g = gamma
    k = math.sqrt((g + 1.0) / (g - 1.0))
    m2 = mach**2 - 1.0
    return k * math.atan(math.sqrt(m2) / k) - math.atan(math.sqrt(m2))


def mach_from_prandtl_meyer(nu: float, gamma: float = GAMMA) -> float:
    """Invert nu(M) for M in (1, 50]."""
    nu_max = prandtl_meyer(50.0, gamma)
    if not 0.0 <= nu <= nu_max:
        raise ConfigurationError(
            f"nu = {nu:.4f} rad outside invertible range [0, {nu_max:.4f}]"
        )
    if nu == 0.0:
        return 1.0
    return brentq(lambda m: prandtl_meyer(m, gamma) - nu, 1.0 + 1e-12, 50.0, xtol=1e-12)


def expansion_density_ratio(
    mach1: float, turn_angle: float, gamma: float = GAMMA
) -> float:
    """rho2/rho1 across a Prandtl-Meyer expansion turning the flow.

    Isentropic: nu(M2) = nu(M1) + turn; density from the isentropic
    relation with the common total conditions.  This is the theory the
    paper checked "around the corner of the wedge ... and found to be
    correct".
    """
    if turn_angle < 0:
        raise ConfigurationError("turn angle must be non-negative")
    m2 = mach_from_prandtl_meyer(prandtl_meyer(mach1, gamma) + turn_angle, gamma)
    g = gamma
    t_ratio = (1.0 + 0.5 * (g - 1.0) * mach1**2) / (1.0 + 0.5 * (g - 1.0) * m2**2)
    return t_ratio ** (1.0 / (g - 1.0))


def minimum_attachment_mach(
    theta: float, gamma: float = GAMMA, mach_hi: float = 50.0
) -> float:
    """Smallest Mach number with an attached shock for deflection theta.

    Below this the wedge detaches a bow shock and the theta-beta-M
    comparison the validation relies on stops applying; simulation
    configurations use it to warn about detached regimes.
    """
    if theta <= 0:
        return 1.0
    theta_max_hi, _ = max_deflection(mach_hi, gamma)
    if theta >= theta_max_hi:
        raise ConfigurationError(
            f"deflection {math.degrees(theta):.1f} deg detaches at every "
            f"Mach number up to {mach_hi}"
        )
    return brentq(
        lambda m: max_deflection(m, gamma)[0] - theta,
        1.0 + 1e-6,
        mach_hi,
        xtol=1e-10,
    )


def isentropic_density_ratio(mach1: float, mach2: float, gamma: float = GAMMA) -> float:
    """rho2/rho1 along an isentrope between two Mach numbers."""
    g = gamma
    t_ratio = (1.0 + 0.5 * (g - 1.0) * mach1**2) / (
        1.0 + 0.5 * (g - 1.0) * mach2**2
    )
    return t_ratio ** (1.0 / (g - 1.0))


def expansion_fan_ray(
    mach1: float,
    turn: float,
    flow_direction: float,
    gamma: float = GAMMA,
) -> Tuple[float, float, float]:
    """State on one characteristic of a centered Prandtl-Meyer fan.

    For flow at Mach ``mach1`` moving at ``flow_direction`` (radians
    above horizontal) expanding clockwise around a convex corner, the
    characteristic carrying the state that has turned by ``turn`` lies
    at ray angle ``(flow_direction - turn) + mu(M)`` above horizontal.

    Returns ``(ray_angle, mach, density_ratio)`` with the density ratio
    relative to the pre-fan state.  This is the theory the paper
    compared the corner fan against ("compared to theory and found to
    be correct").
    """
    if turn < 0:
        raise ConfigurationError("turn must be non-negative")
    m2 = mach_from_prandtl_meyer(prandtl_meyer(mach1, gamma) + turn, gamma)
    mu = math.asin(1.0 / m2)
    ray = (flow_direction - turn) + mu
    return ray, m2, isentropic_density_ratio(mach1, m2, gamma)


# ---------------------------------------------------------------------------
# Free-molecular (collisionless) limit
# ---------------------------------------------------------------------------

def free_molecular_specular_pressure_ratio(
    mach: float, surface_angle: float, gamma: float = GAMMA
) -> float:
    """p/p_inf on a specular surface in free-molecular flow.

    The Kn -> infinity bracket of the wedge problem: with no collisions
    the surface pressure is the doubled incident normal-momentum flux of
    the drifting Maxwellian.  For normal drift speed ``mu = U sin(theta)``
    and thermal spread ``sigma = sqrt(RT)``,

        p = 2 rho [ (mu^2 + sigma^2) Phi(s) + mu sigma phi(s) ],
        s = mu / sigma,

    (Phi, phi: standard normal CDF/pdf), which reduces to the static-gas
    ``p = rho R T`` at mu = 0 and to the Newtonian ``rho U_n^2 * 2`` at
    hypersonic speed ratios.  Returned normalized by ``p_inf = rho R T``.
    """
    if surface_angle < 0:
        raise ConfigurationError("surface angle must be non-negative")
    if mach < 0:
        raise ConfigurationError("mach must be non-negative")
    # Normal speed ratio: U sin(theta) / sqrt(RT); U = M sqrt(gamma RT).
    s = mach * math.sqrt(gamma) * math.sin(surface_angle)
    phi = math.exp(-0.5 * s * s) / math.sqrt(2.0 * math.pi)
    cdf = 0.5 * (1.0 + math.erf(s / math.sqrt(2.0)))
    return 2.0 * ((s * s + 1.0) * cdf + s * phi)


# ---------------------------------------------------------------------------
# Shock structure scales
# ---------------------------------------------------------------------------

def shock_thickness_scale(
    lambda_mfp: float,
    mach: float = 4.0,
    cell_resolution: float = 3.0,
) -> float:
    """Expected *measured* shock thickness in cell widths.

    A strong shock's maximum-slope density thickness is a few upstream
    mean free paths (Mott-Smith / experimental consensus: delta/lambda1
    ~= 3-6 for Mach 3-5 depending on model; we use 4).  The *measured*
    thickness on a grid cannot fall below the sampling resolution
    (finite cell size plus statistical smoothing), which the paper's
    near-continuum run pins at ~3 cell widths.  The two scales combine
    in quadrature, giving ~3 cells at lambda = 0 and ~5 cells at
    lambda = 0.5 (delta_phys ~ 2, sqrt(9 + 4) ~ 3.6 ... the paper reads
    5; our bench compares ordering and approximate magnitude, not this
    crude estimate).
    """
    if lambda_mfp < 0:
        raise ConfigurationError("lambda_mfp must be non-negative")
    physical = 4.0 * lambda_mfp
    return math.hypot(cell_resolution, physical)
