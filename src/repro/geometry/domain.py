"""The wind-tunnel domain: a rectangular grid of unit square cells.

McDonald & Baganoff argue for "small, geometrically simple and similar
cells", which "leads to a rectangular grid (in two dimensions) of square
cells of unit normal width" -- exactly what this class provides.  The
paper's validation runs use a 98 x 64 grid.

Coordinates: x in [0, nx), y in [0, ny), cell (i, j) covers
[i, i+1) x [j, j+1).  The flattened cell index is ``i * ny + j`` so that
consecutive indices run along y -- matching the sort-based pairing's
preference for compact cells (any consistent flattening works; tests pin
this one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class Domain:
    """A 2-D wind tunnel of ``nx`` by ``ny`` unit cells.

    The third (z) dimension is periodic and unit deep: particles carry a
    z velocity (three translational degrees of freedom) but no z
    position in the 2-D configuration.
    """

    nx: int = 98
    ny: int = 64

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise GeometryError(
                f"domain must be at least 2x2 cells, got {self.nx}x{self.ny}"
            )

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)

    @property
    def width(self) -> float:
        return float(self.nx)

    @property
    def height(self) -> float:
        return float(self.ny)

    # -- cell indexing ----------------------------------------------------

    def cell_coords(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cell (i, j) containing each point, clipped into the grid.

        Clipping guards against positions exactly on the outer faces
        (x == nx from a just-reflected particle); boundary enforcement
        runs before cell indexing, so interior points are the norm.
        """
        i = np.clip(np.floor(x).astype(np.int64), 0, self.nx - 1)
        j = np.clip(np.floor(y).astype(np.int64), 0, self.ny - 1)
        return i, j

    def cell_index(
        self, x: np.ndarray, y: np.ndarray, out: np.ndarray = None
    ) -> np.ndarray:
        """Flattened cell index ``i * ny + j`` of each point.

        ``out`` (int64, same shape) receives the result in place --
        the step loop passes the population's cell column so repeated
        indexing performs no O(N) result allocation.
        """
        i, j = self.cell_coords(x, y)
        if out is not None:
            np.multiply(i, self.ny, out=out)
            out += j
            return out
        return i * self.ny + j

    def cell_index_from_coords(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Flatten (i, j) cell coordinates to the linear index."""
        return np.asarray(i) * self.ny + np.asarray(j)

    def coords_from_cell_index(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Invert the flattened cell index back to (i, j)."""
        idx = np.asarray(idx)
        return idx // self.ny, idx % self.ny

    def cell_centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid arrays (shape nx x ny) of cell-center coordinates."""
        cx = np.arange(self.nx) + 0.5
        cy = np.arange(self.ny) + 0.5
        return np.meshgrid(cx, cy, indexing="ij")

    # -- predicates -------------------------------------------------------

    def inside(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask of points strictly inside the tunnel box."""
        return (x >= 0) & (x < self.nx) & (y >= 0) & (y < self.ny)

    def exited_downstream(self, x: np.ndarray) -> np.ndarray:
        """Mask of particles past the soft downstream (sink) boundary."""
        return np.asarray(x) >= self.nx
