"""The randomized sort by cell key (sub-step 3, part 2).

"The sort is a crucial step in the implementation of this particle
simulation algorithm. ... The primary purpose of the sort is to put all
particles occupying a given cell into neighbouring addresses thus making
it easy both to identify collision candidates and to sample macroscopic
quantities from cells."  The subtler consequence: with one particle per
virtual processor the sort achieves "a perfect dynamic load balance for
the collision routine" -- processing power is redistributed to match the
cell populations every step.

**The fused counting-sort kernel.**  The cell index is a small dense
integer (98x64 = 6272 cells), so a comparison sort is overkill: the
natural O(N) algorithm is a counting sort -- per-cell histogram, prefix
sum to bucket offsets, stable placement.  NumPy exposes exactly that
machinery: ``np.argsort(kind="stable")`` on a <= 16-bit integer key runs
the library's radix/counting path (histogram + prefix scan per byte), an
order of magnitude faster than the comparison sort it falls back to for
wider dtypes.  :func:`sort_by_cell` therefore narrows the key to 16 bits
whenever the cell range allows and keeps the wide comparison sort only
as a fallback for huge grids.

The paper's intra-cell randomization ("a random number less than the
scale factor is added" to the scaled cell index) is preserved, but
implemented as bucket shuffling: apply a uniform random permutation of
*all* particles first, then counting-sort the permuted cell keys stably.
Each cell's bucket receives its members in uniformly random relative
order -- exactly the distribution the scaled-key trick approximates --
while the key stays narrow and the histogram (``counts``) falls out of
the same pass, eliminating the separate ``cell_populations`` bincount
the step loop used to pay.

The CM engine supplies explicit ``mix_bits`` instead of an rng; that
path keeps the paper's literal ``cell * scale + bits`` key (narrowed
when it fits) so the emulated sort order is bit-identical to the seed
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core.cells import randomized_sort_keys
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError

#: Largest key value that still takes NumPy's radix/counting sort path
#: (stable argsort of uint16); beyond this the kernel falls back to the
#: wide comparison sort.  Keys are validated non-negative upstream.
NARROW_KEY_LIMIT = int(np.iinfo(np.uint16).max)


@dataclass(frozen=True)
class SortStepResult:
    """Bookkeeping from one sort step.

    Attributes
    ----------
    order:
        Applied permutation (pre-sort index of each sorted slot).
    rank_shift:
        Mean absolute change of sorted rank per particle -- the
        "general communication" driver: a particle whose rank moved
        less than the VP block size stays on its physical processor.
    counts:
        Per-cell populations (length ``n_cells``) when the caller
        passed ``n_cells`` -- the histogram half of the fused kernel,
        reusable downstream (selection probabilities, diagnostics)
        without a second bincount.  ``None`` otherwise.
    """

    order: np.ndarray
    rank_shift: float
    counts: Optional[np.ndarray] = None


def counting_sort_order(
    cell: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    scratch=None,
    max_key: Optional[int] = None,
) -> np.ndarray:
    """Stable O(N) sort permutation of small-integer cell keys.

    With ``shuffle=True`` (and an rng) the returned order additionally
    randomizes intra-cell positions uniformly: a global permutation
    ``p`` is drawn, the permuted keys are counting-sorted stably, and
    the two permutations are composed, so equal keys land in the order
    ``p`` visits them.  ``shuffle=False`` is the plain stable sort (the
    ablation / ``scale=1`` configuration).

    ``scratch`` (a :class:`repro.core.particles.ScratchBuffers`) makes
    the kernel allocation-free apart from the argsort's own output;
    ``max_key`` skips the O(N) max scan when the caller knows the key
    range (e.g. ``domain.n_cells - 1``).
    """
    n = cell.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if max_key is None:
        # Only scanned when the caller did not vouch for the key range
        # (the step loop passes ``max_key`` and skips both scans).  A
        # negative key would corrupt silently via the unsafe uint16
        # narrowing, so it must be rejected here.
        if int(cell.min()) < 0:
            raise ConfigurationError("cell indices must be non-negative")
        max_key = int(cell.max())
    narrow = max_key <= NARROW_KEY_LIMIT

    if not (shuffle and rng is not None):
        if narrow:
            if scratch is not None:
                key16 = scratch.array("sort_key16", n, dtype=np.uint16)
            else:
                key16 = np.empty(n, dtype=np.uint16)
            np.copyto(key16, cell, casting="unsafe")
            return np.argsort(key16, kind="stable")
        return np.argsort(cell, kind="stable")

    if scratch is not None:
        p = scratch.permutation(n, rng)
        key16 = scratch.array("sort_key16", n, dtype=np.uint16)
        order = scratch.array("sort_order", n, dtype=np.intp)
    else:
        p = rng.permutation(n)
        key16 = np.empty(n, dtype=np.uint16)
        order = np.empty(n, dtype=np.intp)
    if narrow:
        np.copyto(key16, cell, casting="unsafe")
        # Gather the pre-shuffled keys; "clip" because p is a
        # permutation (always in range) and "raise" would buffer.
        shuffled = scratch.array("sort_shuf16", n, dtype=np.uint16) \
            if scratch is not None else np.empty(n, dtype=np.uint16)
        np.take(key16, p, out=shuffled, mode="clip")
        s = np.argsort(shuffled, kind="stable")
    else:
        s = np.argsort(cell[p], kind="stable")
    np.take(p, s, out=order, mode="clip")
    return order


def sort_by_cell(
    particles: ParticleArrays,
    rng: Optional[np.random.Generator] = None,
    scale: int = DEFAULT_SORT_SCALE,
    mix_bits: Optional[np.ndarray] = None,
    n_cells: Optional[int] = None,
    kernel: str = "counting",
    counts_out: Optional[np.ndarray] = None,
) -> SortStepResult:
    """Sort the population by cell with randomized intra-cell order.

    After this call, particles of one cell occupy a contiguous run of
    addresses in random intra-cell order, ready for even/odd pairing.

    ``scale`` retains its seed-implementation meaning: ``scale = 1``
    disables the intra-cell mixing (stable no-op on equal cells, the
    ablation configuration); ``scale > 1`` enables it.  When
    ``mix_bits`` is given the literal scaled-key sort of the seed
    implementation runs (the CM engine's "quick & dirty" bits path,
    bit-identical ordering); otherwise mixing uses the fused
    shuffle-then-counting-sort kernel, which is uniform rather than
    approximately uniform and keeps the sort key 16 bits wide.

    ``n_cells`` additionally requests the per-cell histogram in the
    result (derived from the sorted population by binary search);
    ``counts_out`` (int64, length ``n_cells``) receives that histogram
    in place -- shard workers pass a persistent buffer so the per-step
    counts never allocate.

    ``kernel`` selects the sort implementation: ``"counting"`` (the
    fused narrow-key kernel) or ``"scaled-key"`` (the original wide
    int64 stable argsort of ``cell * scale + offset`` -- kept as the
    measurable baseline for the hot-path benchmark and the ablation
    A/B flag ``Simulation(config, hotpath=False)``).
    """
    cell = particles.cell
    n = cell.shape[0]
    scratch = particles.scratch
    if kernel not in ("counting", "scaled-key"):
        raise ConfigurationError(f"unknown sort kernel {kernel!r}")

    if mix_bits is not None:
        # Seed-faithful scaled-key path (CM mix bits).  Narrow the key
        # dtype when the scaled range fits: stability makes the
        # permutation bit-identical to the wide sort.
        keys = randomized_sort_keys(cell, rng=rng, scale=scale,
                                    mix_bits=mix_bits)
        if keys.size and keys.max() <= NARROW_KEY_LIMIT:
            keys = keys.astype(np.uint16)
        order = np.argsort(keys, kind="stable")
    elif kernel == "scaled-key":
        keys = randomized_sort_keys(cell, rng=rng, scale=scale)
        order = np.argsort(keys, kind="stable")
    else:
        if scale < 1 or (scale > 1 and rng is None):
            # Delegate the argument validation (raises) to the shared
            # key helper so the error contract matches the seed.
            randomized_sort_keys(cell, rng=rng, scale=scale)
        max_key = (n_cells - 1) if n_cells is not None else None
        order = counting_sort_order(
            cell, rng=rng, shuffle=(scale > 1), scratch=scratch,
            max_key=max_key,
        )

    if n:
        if scratch is not None:
            diff = scratch.array("sort_rankdiff", n, dtype=np.intp)
            np.subtract(order, scratch.arange(n), out=diff)
            np.abs(diff, out=diff)
            rank_shift = float(diff.mean())
        else:
            rank_shift = float(np.abs(order - np.arange(n)).mean())
    else:
        rank_shift = 0.0
    particles.reorder_inplace(order)

    counts = None
    if n_cells is not None:
        # The population is cell-sorted now, so the histogram is a
        # binary search over the n_cells bucket edges -- O(C log N)
        # instead of the O(N) bincount pass.
        edges = np.searchsorted(particles.cell, np.arange(n_cells + 1))
        if counts_out is not None:
            if counts_out.shape != (n_cells,):
                raise ConfigurationError(
                    f"counts_out must have shape ({n_cells},)"
                )
            np.subtract(edges[1:], edges[:-1], out=counts_out)
            counts = counts_out
        else:
            counts = np.diff(edges)
    return SortStepResult(order=order, rank_shift=rank_shift, counts=counts)
