"""The domain-sharded execution backend.

One worker process per x-slab steps its shard of the wind tunnel; the
parent drives the step protocol over the four-method backend seam
(:class:`repro.core.simulation.SerialBackend` documents it).  All bulk
state -- the shard particle populations (ping-pong column buffers), the
migration channels, per-shard diagnostics and sampler accumulators --
lives in shared memory inherited over ``fork``, so the steady-state
step exchanges no pickled data at all; pipes carry only rare traffic
(worker tracebacks, the reservoir on an explicit ``gather``).

Each step runs in two phases separated by a worker barrier:

* **Phase A** -- claim the reservoir flux (first shard), collisionless
  motion, boundary enforcement (the first shard owns the plunger, the
  last the downstream sink), pack boundary-crossing particles into the
  outgoing migration channels, backfill-remove them locally.
* **Phase B** -- append arrivals (left neighbour first, then right),
  cell indexing, the fused counting sort, pairing + selection,
  collisions, reservoir mixing (first shard), downstream-flux shipping
  (last shard), sampling, and the shard's diagnostics row.

Determinism: every worker draws all of a step's random numbers from a
counter-based stream keyed ``(seed, shard_id, step)``
(:func:`repro.rng.shard_stream`), and the exchange order is fixed, so a
run is bitwise reproducible run-to-run at any fixed worker count --
whether the shards execute as processes or inline (``processes=False``,
the sequential mode used for tests and single-core hosts).  With
``n_workers=1`` the backend delegates to the serial engine outright and
is bitwise identical to it by construction.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import motion
from repro.core.boundary import BoundaryStats, WindTunnelBoundaries
from repro.core.cells import assign_cells
from repro.core.collision import collide_adjacent_pairs
from repro.core.pairing import even_odd_pairs, reflection_pairs
from repro.core.particles import COLUMN_NAMES, ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.sampling import CellSampler
from repro.core.selection import fused_select_collide, select_collisions
from repro.core.simulation import SerialBackend, StepDiagnostics
from repro.core.sortstep import IncrementalSorter, sort_by_cell
from repro.errors import (
    ConfigurationError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.parallel.exchange import LEFT, RIGHT, MigrationChannels
from repro.parallel.rebalance import (
    RebalanceConfig,
    planned_transfers,
    validate_plan,
)
from repro.parallel.shard import ShardSlabs
from repro.rng import shard_stream
from repro.telemetry.observables import load_imbalance
from repro.telemetry.spans import (
    RING_FIELDS,
    RING_STATE,
    WORKER_SPAN_NAMES,
    drain_ring,
    ring_append,
)

#: Span name -> ring name-id (the rings carry only numbers).
_SPAN_ID = {name: i for i, name in enumerate(WORKER_SPAN_NAMES)}

# -- control-word layout (shared int64 vector) --------------------------

CTRL_CMD = 0
CTRL_STEP = 1
CTRL_SAMPLE = 2
CTRL_ERROR = 3       # 0 = healthy, else failing shard_id + 1
CTRL_FLUX = 4        # downstream-exit count in transit to shard 0
CTRL_WORDS = 5

CMD_IDLE = 0
CMD_STEP = 1
CMD_GATHER = 2
CMD_STOP = 3
CMD_REBALANCE = 4

MISC_PLUNGER = 0     # plunger face position, published by shard 0
MISC_WORDS = 1

# -- per-shard diagnostics row (shared float64 matrix) ------------------

(
    D_NFLOW,
    D_NRES,
    D_NPAIRS,
    D_NCAND,
    D_NCOLL,
    D_PROBSUM,
    D_WALLS,
    D_WEDGE,
    D_REMOVED,
    D_INJECTED,
    D_CLAMPED,
    D_PLUNGER,
    D_ENERGY,
    D_MOMX,
    D_T_MOTION,
    D_T_EXCHANGE,
    D_T_SORT,
    D_T_SELECTION,
    D_T_COLLISION,
    D_T_RESERVOIR,
    D_SORT_MOVED,
    D_SORT_REBUILD,
    D_T_INDEX,
) = range(23)
NDIAG = 23

#: Worker phases merged into the driver's :class:`repro.perf.PerfLedger`
#: (summed CPU-seconds across shards; "exchange" is the migration cost
#: the serial engine does not have, "index" the incremental kernel's
#: cell-indexing + mover-detection pass -- both outside the paper's
#: four-phase split).
PHASE_COLUMNS = (
    ("motion", D_T_MOTION),
    ("exchange", D_T_EXCHANGE),
    ("sort", D_T_SORT),
    ("selection", D_T_SELECTION),
    ("collision", D_T_COLLISION),
    ("reservoir", D_T_RESERVOIR),
    ("index", D_T_INDEX),
)


class ShardWorker:
    """One shard's step executor (runs in a worker process or inline).

    Owns the shard's boundaries (inlet on the first shard, outlet on
    the last), its slab bounds, and -- on shard 0 -- the reservoir and
    the plunger.  The particle population is adopted after construction
    (:meth:`adopt`) so its columns live in the backend's shared
    segments.
    """

    def __init__(
        self,
        shard_id: int,
        n_workers: int,
        config,
        slabs: ShardSlabs,
        channels: MigrationChannels,
        ctrl: np.ndarray,
        shared: Dict[str, np.ndarray],
        vf_flat: np.ndarray,
        seed,
        fault_plan=None,
    ) -> None:
        self.shard_id = shard_id
        self.n_workers = n_workers
        self.config = config
        self.domain = config.domain
        self.channels = channels
        self.shared = shared
        self._ctrl = ctrl
        self._vf_flat = vf_flat
        self._seed = seed
        self.x_lo, self.x_hi = slabs.bounds(shard_id)
        # Guard bounds: a migrant landing beyond the *neighbour's* far
        # edge would need a channel that does not exist.
        self._left_guard = slabs.bounds(shard_id - 1)[0] if shard_id > 0 else 0.0
        self._right_guard = (
            slabs.bounds(shard_id + 1)[1]
            if shard_id < n_workers - 1
            else float(self.domain.nx)
        )
        self.boundaries = WindTunnelBoundaries(
            domain=config.domain,
            freestream=config.freestream,
            wedge=config.wedge,
            plunger_trigger=config.plunger_trigger,
            wall_model=config.wall_model,
            accommodation=config.accommodation,
            has_inlet=(shard_id == 0),
            has_outlet=(shard_id == n_workers - 1),
        )
        #: Only shard 0 holds the reservoir (installed by the backend):
        #: it pays the plunger withdrawals and runs the mixing;
        #: downstream deposits arrive from the last shard as a count
        #: through the shared flux slot (the deposit re-deals particle
        #: state anyway, so only the count is physical).
        self.reservoir: Optional[Reservoir] = None
        self.particles: Optional[ParticleArrays] = None
        self._counts = np.zeros(config.domain.n_cells, dtype=np.int64)
        #: Per-worker incremental-sort state (``sort_kernel=
        #: "incremental"``): each shard maintains its own canonical
        #: order; migration arrivals/removals mark rows dirty through
        #: the population's order listener, so the cached state
        #: survives worker steps and only the touched rows re-insert.
        self._sorter: Optional[IncrementalSorter] = (
            IncrementalSorter(config.domain.n_cells)
            if config.sort_kernel == "incremental" else None
        )
        self.sampler = CellSampler(config.domain)
        samp = shared["samp"][shard_id]
        self.sampler._count = samp[0]
        self.sampler._mu = samp[1]
        self.sampler._mv = samp[2]
        self.sampler._mw = samp[3]
        self.sampler._e_trans = samp[4]
        self.sampler._e_rot = samp[5]
        self.surface = None
        if config.wedge is not None and "surf" in shared:
            from repro.core.surface import SurfaceSampler

            self.surface = SurfaceSampler(
                config.wedge, n_strips=shared["surf"].shape[2] - 1
            )
            self.surface._impulse_x = shared["surf"][shard_id, 0]
            self.surface._impulse_y = shared["surf"][shard_id, 1]
            self.surface._hits = shared["surf_hits"][shard_id]
        self._ref0: Dict[str, np.ndarray] = {}
        self._ref1: Dict[str, np.ndarray] = {}
        self._stream: Optional[np.random.Generator] = None
        self._bstats: Optional[BoundaryStats] = None
        #: Deterministic fault injection (None on production runs).
        self._fault_plan = fault_plan
        #: True inside a forked worker process (set by ``_worker_main``);
        #: selects hard process death vs a plain raise for ``crash``.
        self._forked = False

    def _emit_spans(self, step: int, intervals) -> None:
        """Append phase spans to this shard's shared ring (if any).

        ``intervals`` is a sequence of ``(name, t0, t1)`` built from
        timestamps the worker already takes for the diagnostics row, so
        the marginal cost is a handful of array writes per step.
        """
        rings = self.shared.get("spans")
        if rings is None:
            return
        state = self.shared["span_state"][self.shard_id]
        ring = rings[self.shard_id]
        pid = os.getpid()
        for name, t0, t1 in intervals:
            ring_append(
                ring, state, _SPAN_ID[name], t0, t1,
                step, self.shard_id, pid,
            )

    def adopt(
        self,
        parts: ParticleArrays,
        set0: Dict[str, np.ndarray],
        set1: Dict[str, np.ndarray],
    ) -> None:
        """Re-home ``parts`` in the shard's shared ping-pong buffers.

        ``set0``/``set1`` are kept as identity references for the
        front-flag publication; copies go into the population so the
        originals stay unmutated by front/back swaps.
        """
        parts.enable_scratch_from(dict(set0), dict(set1))
        self._ref0 = dict(set0)
        self._ref1 = dict(set1)
        self.particles = parts
        self._publish_layout()

    def _publish_layout(self) -> None:
        """Export the particle count and per-column front flags."""
        parts = self.particles
        self.shared["n_parts"][self.shard_id] = parts.n
        fronts = parts.front_buffers
        flags = self.shared["front_flags"]
        for ci, name in enumerate(COLUMN_NAMES):
            flags[self.shard_id, ci] = (
                0 if fronts[name] is self._ref0[name] else 1
            )

    # -- the two step phases --------------------------------------------

    def _inject_faults(self, step: int) -> None:
        """Fire any armed worker fault for ``(step, shard)``.

        Called only when a plan is installed; production runs skip even
        the call (one ``is None`` test in :meth:`phase_a`).
        """
        plan = self._fault_plan
        self.channels._step = step
        if plan.take("exception", step, self.shard_id) is not None:
            raise WorkerCrashError(
                "injected worker exception",
                step=step,
                shard=self.shard_id,
                injected=True,
            )
        if plan.take("crash", step, self.shard_id) is not None:
            if self._forked:
                # A real process death: skips the barriers, leaves the
                # parent to find the corpse via the barrier timeout.
                os._exit(17)
            raise WorkerCrashError(
                "injected worker crash (inline mode)",
                step=step,
                shard=self.shard_id,
                injected=True,
            )
        hang = plan.take("hang", step, self.shard_id)
        if hang is not None:
            time.sleep(hang.seconds)

    def phase_a(self, step: int, sample: bool) -> None:
        """Flux claim, motion, boundaries, migration pack + removal."""
        if self._fault_plan is not None:
            self._inject_faults(step)
        self._stream = shard_stream(self._seed, self.shard_id, step)
        stream = self._stream
        t0 = time.perf_counter()
        parts = self.particles

        # Shard 0 claims the downstream-exit count the last shard
        # shipped in the previous step's phase B (the end-of-step
        # barrier orders the write before this read) and deposits it
        # into the reservoir.
        if self.reservoir is not None and self.n_workers > 1:
            pending = int(self._ctrl[CTRL_FLUX])
            if pending:
                self._ctrl[CTRL_FLUX] = 0
                self.reservoir.deposit(stream, pending)

        motion.advance(parts)
        self.boundaries.surface_sampler = (
            self.surface if (sample and self.surface is not None) else None
        )
        parts, bstats = self.boundaries.apply_rebuilding(
            parts, self.reservoir, stream
        )
        self.particles = parts
        self._bstats = bstats
        t1 = time.perf_counter()

        # Pack boundary-crossers into the outgoing channels, then
        # backfill them away (the sort re-orders everything anyway).
        sc = parts.scratch
        n = parts.n
        x = parts.x
        remove = None
        if self.shard_id > 0:
            lmask = sc.array("mig_left", n, dtype=bool)
            np.less(x, self.x_lo, out=lmask)
            lidx = np.flatnonzero(lmask)
            if lidx.size and float(x[lidx].min()) < self._left_guard:
                raise ConfigurationError(
                    f"shard {self.shard_id}: a particle crossed more than "
                    "one slab in a single step; use fewer workers (wider "
                    "slabs) for this flow"
                )
            self.channels.ship(parts, lidx, self.shard_id, LEFT)
            remove = lmask
        if self.shard_id < self.n_workers - 1:
            rmask = sc.array("mig_right", n, dtype=bool)
            np.greater_equal(x, self.x_hi, out=rmask)
            ridx = np.flatnonzero(rmask)
            if ridx.size and float(x[ridx].max()) >= self._right_guard:
                raise ConfigurationError(
                    f"shard {self.shard_id}: a particle crossed more than "
                    "one slab in a single step; use fewer workers (wider "
                    "slabs) for this flow"
                )
            self.channels.ship(parts, ridx, self.shard_id, RIGHT)
            remove = (
                rmask if remove is None
                else np.logical_or(remove, rmask, out=remove)
            )
        if remove is not None and remove.any():
            parts.remove_inplace(remove)
        t2 = time.perf_counter()
        self._t_motion = t1 - t0
        self._t_exchange = t2 - t1
        self._emit_spans(
            step,
            (
                ("phase_a", t0, t2),
                ("motion", t0, t1),
                ("exchange", t1, t2),
            ),
        )

    def phase_b(self, step: int, sample: bool) -> None:
        """Arrivals, sort, selection, collisions, flux ship, publish."""
        stream = self._stream
        parts = self.particles
        cfg = self.config
        t0 = time.perf_counter()
        self.channels.receive(parts, self.shard_id)
        t1 = time.perf_counter()

        if self._sorter is not None:
            # Temporal-coherence path: indexing + mover detection
            # ("index"), order maintenance ("sort"), then the fused
            # selection/collision pass over reflection pairs.
            assign_cells(parts, self.domain)
            self._sorter.detect(parts)
            t1b = time.perf_counter()
            sres = self._sorter.update(parts)
            t2 = time.perf_counter()

            rpairs = reflection_pairs(
                sres.order, sres.counts, sres.offsets, stream,
                scratch=parts.scratch,
            )
            fused = fused_select_collide(
                parts,
                rpairs,
                cfg.freestream,
                cfg.model,
                sres.counts,
                volume_fractions=self._vf_flat,
                rng=stream,
                internal_exchange_probability=(
                    cfg.model.internal_exchange_probability
                ),
            )
            t3 = fused.t_boundary
            t4 = time.perf_counter()
            n_pairs_total = parts.n // 2
            n_cand = rpairs.n_pairs
            n_coll = fused.n_collisions
            prob_sum = fused.probability_sum
            sort_moved = sres.moved
            sort_rebuilt = 1 if sres.rebuilt else 0
            t_index = t1b - t1
        else:
            assign_cells(parts, self.domain)
            sort_by_cell(
                parts,
                rng=stream,
                scale=cfg.sort_scale,
                n_cells=self.domain.n_cells,
                kernel="counting",
                counts_out=self._counts,
            )
            t1b = t1
            t2 = time.perf_counter()

            pairs = even_odd_pairs(parts.cell, scratch=parts.scratch)
            draws = parts.scratch.array("sel_draws", pairs.n_pairs)
            stream.random(out=draws)
            selection = select_collisions(
                parts,
                pairs,
                cfg.freestream,
                cfg.model,
                self._counts,
                volume_fractions=self._vf_flat,
                rng=stream,
                draws=draws,
            )
            t3 = time.perf_counter()

            collide_adjacent_pairs(
                parts,
                np.flatnonzero(selection.accept),
                rng=stream,
                internal_exchange_probability=(
                    cfg.model.internal_exchange_probability
                ),
            )
            t4 = time.perf_counter()
            n_pairs_total = pairs.n_pairs
            n_cand = pairs.n_candidates
            n_coll = selection.n_collisions
            # probability is already zeroed on non-candidates, so the
            # plain sum is the candidate sum the merged mean needs.
            prob_sum = float(selection.probability.sum())
            sort_moved = 0
            sort_rebuilt = 0
            t_index = 0.0

        if self.reservoir is not None and cfg.reservoir_mix_rounds:
            self.reservoir.mix(stream, rounds=cfg.reservoir_mix_rounds)
        # The last shard ships its downstream-exit count toward shard 0
        # (claimed there at the start of the next step's phase A).
        if self.n_workers > 1 and self.shard_id == self.n_workers - 1:
            self._ctrl[CTRL_FLUX] += self._bstats.n_removed_downstream
        t5 = time.perf_counter()

        if sample:
            self.sampler.accumulate(parts)

        self._publish_layout()
        row = self.shared["diag"][self.shard_id]
        b = self._bstats
        row[D_NFLOW] = parts.n
        row[D_NRES] = self.reservoir.size if self.reservoir is not None else 0
        row[D_NPAIRS] = n_pairs_total
        row[D_NCAND] = n_cand
        row[D_NCOLL] = n_coll
        row[D_PROBSUM] = prob_sum
        row[D_WALLS] = b.n_reflected_walls
        row[D_WEDGE] = b.n_reflected_wedge
        row[D_REMOVED] = b.n_removed_downstream
        row[D_INJECTED] = b.n_injected_upstream
        row[D_CLAMPED] = b.n_clamped
        row[D_PLUNGER] = float(b.plunger_reset)
        row[D_ENERGY] = parts.total_energy()
        row[D_MOMX] = float(parts.u.sum())
        row[D_T_MOTION] = self._t_motion
        row[D_T_EXCHANGE] = self._t_exchange + (t1 - t0)
        row[D_T_SORT] = t2 - t1b
        row[D_T_SELECTION] = t3 - t2
        row[D_T_COLLISION] = t4 - t3
        row[D_T_RESERVOIR] = t5 - t4
        row[D_SORT_MOVED] = sort_moved
        row[D_SORT_REBUILD] = sort_rebuilt
        row[D_T_INDEX] = t_index
        if self.shard_id == 0:
            self.shared["misc"][MISC_PLUNGER] = self.boundaries.plunger.position
        self._emit_spans(
            step,
            (
                ("phase_b", t0, t5),
                ("exchange", t0, t1),
                ("index", t1, t1b),
                ("sort", t1b, t2),
                ("selection", t2, t3),
                ("collision", t3, t4),
                ("reservoir", t4, t5),
            ),
        )

    # -- the repartition epoch (adaptive load balancing) -----------------

    def rebalance_a(self, step: int) -> None:
        """Ship the rows in ceded columns toward their new owner.

        The parent has already published the new edge tuple in
        ``shared["edges"]``; the planner's adjacency clamp guarantees
        every ceded column transfers between *adjacent* shards, so the
        existing migration channels carry the whole repartition as one
        widened exchange epoch.  No RNG is consumed and no physics
        runs -- a rebalance only re-homes particle ownership.
        """
        parts = self.particles
        edges = self.shared["edges"]
        new_lo = float(edges[self.shard_id])
        new_hi = float(edges[self.shard_id + 1])
        if self._fault_plan is not None:
            # Publish the step so channel-level faults stay keyed.
            self.channels._step = step
        sc = parts.scratch
        n = parts.n
        x = parts.x
        remove = None
        if self.shard_id > 0:
            lmask = sc.array("mig_left", n, dtype=bool)
            np.less(x, new_lo, out=lmask)
            self.channels.ship(
                parts, np.flatnonzero(lmask), self.shard_id, LEFT
            )
            remove = lmask
        if self.shard_id < self.n_workers - 1:
            rmask = sc.array("mig_right", n, dtype=bool)
            np.greater_equal(x, new_hi, out=rmask)
            self.channels.ship(
                parts, np.flatnonzero(rmask), self.shard_id, RIGHT
            )
            remove = (
                rmask if remove is None
                else np.logical_or(remove, rmask, out=remove)
            )
        if remove is not None and remove.any():
            parts.remove_inplace(remove)

    def rebalance_b(self) -> None:
        """Adopt arrivals and refresh slab bounds from the new edges.

        Runs after the mid-epoch barrier: every neighbour's ceded rows
        are in the channels, arrival order is the same fixed
        left-then-right order as a normal step.  The incremental-sort
        state repairs itself through the population's order listener
        (removals and appends mark rows dirty), so only the touched
        rows re-insert on the next step.
        """
        parts = self.particles
        self.channels.receive(parts, self.shard_id)
        edges = self.shared["edges"]
        k = self.shard_id
        self.x_lo = float(edges[k])
        self.x_hi = float(edges[k + 1])
        self._left_guard = float(edges[k - 1]) if k > 0 else 0.0
        self._right_guard = (
            float(edges[k + 2])
            if k < self.n_workers - 1
            else float(self.domain.nx)
        )
        self._publish_layout()

    # -- rare traffic ----------------------------------------------------

    def gather_payload(self) -> Dict[str, np.ndarray]:
        """Worker-private state the parent cannot see in shared memory."""
        res = self.reservoir.particles
        return {
            "plunger": np.float64(self.boundaries.plunger.position),
            "res_x": np.ascontiguousarray(res.x),
            "res_y": np.ascontiguousarray(res.y),
            "res_u": np.ascontiguousarray(res.u),
            "res_v": np.ascontiguousarray(res.v),
            "res_w": np.ascontiguousarray(res.w),
            "res_rot": np.ascontiguousarray(res.rot),
            "res_perm": np.ascontiguousarray(res.perm),
            "res_cell": np.ascontiguousarray(res.cell),
            "res_z": np.ascontiguousarray(res.z),
        }


def _worker_main(worker, start_b, mid_b, end_b, ctrl, conn) -> None:
    """Worker-process command loop.

    A failed phase poisons the worker (subsequent phases no-op) but
    never skips a barrier -- the parent always completes the step,
    sees the error flag, and raises with the piped traceback.
    """
    worker._forked = True
    failed = False
    while True:
        start_b.wait()
        cmd = int(ctrl[CTRL_CMD])
        if cmd == CMD_STOP:
            break
        if cmd == CMD_STEP:
            step = int(ctrl[CTRL_STEP])
            sample = bool(ctrl[CTRL_SAMPLE])
            if not failed:
                try:
                    worker.phase_a(step, sample)
                except BaseException:
                    failed = True
                    ctrl[CTRL_ERROR] = worker.shard_id + 1
                    conn.send(traceback.format_exc())
            mid_b.wait()
            if not failed:
                try:
                    worker.phase_b(step, sample)
                except BaseException:
                    failed = True
                    ctrl[CTRL_ERROR] = worker.shard_id + 1
                    conn.send(traceback.format_exc())
            end_b.wait()
        elif cmd == CMD_REBALANCE:
            step = int(ctrl[CTRL_STEP])
            if not failed:
                try:
                    worker.rebalance_a(step)
                except BaseException:
                    failed = True
                    ctrl[CTRL_ERROR] = worker.shard_id + 1
                    conn.send(traceback.format_exc())
            mid_b.wait()
            if not failed:
                try:
                    worker.rebalance_b()
                except BaseException:
                    failed = True
                    ctrl[CTRL_ERROR] = worker.shard_id + 1
                    conn.send(traceback.format_exc())
            end_b.wait()
        elif cmd == CMD_GATHER:
            if worker.reservoir is not None and not failed:
                try:
                    conn.send(worker.gather_payload())
                except BaseException:
                    failed = True
                    ctrl[CTRL_ERROR] = worker.shard_id + 1
            end_b.wait()
        else:
            end_b.wait()
    conn.close()


class ShardedBackend:
    """Slab-decomposed multi-process execution of the step loop.

    Parameters
    ----------
    n_workers:
        Shard count.  ``1`` delegates to :class:`SerialBackend`
        outright (bitwise identical to a serial run by construction).
    processes:
        ``True`` forks one worker process per shard; ``False`` steps
        the same shard objects sequentially in-process (bitwise
        identical results -- the deterministic per-``(shard, step)``
        RNG streams make execution order irrelevant), useful for tests
        and single-core hosts.
    capacity_factor:
        Shared column-buffer headroom per shard, as a multiple of the
        bind-time shard population.  The shock can locally compress the
        flow well above freestream density, so the default is generous;
        an overflow raises with a message naming this knob.
    channel_capacity:
        Migrants per channel per step (default: one shard's worth).
    flux_pending:
        Downstream-exit count already in transit at bind time (snapshot
        restore continuity; 0 for fresh runs).
    barrier_timeout:
        Seconds the parent waits on the step barriers before declaring
        the worker pool wedged.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan` arming the
        deterministic fault-injection hooks in the workers and the
        migration channels.  ``None`` (the default) leaves every hook
        dormant at zero overhead.
    rebalance:
        Optional :class:`repro.parallel.rebalance.RebalanceConfig`
        enabling cadenced adaptive load balancing.  ``None`` (the
        default) keeps the decomposition static: no rebalance code runs
        beyond one ``is None`` test per step, so disabled runs are
        bitwise identical to pre-rebalancer behavior.
    edges:
        Optional explicit slab-edge tuple (length ``n_workers + 1``)
        to bind with, instead of the uniform split -- snapshot-restore
        continuity for checkpoints taken after a rebalance.
    """

    def __init__(
        self,
        n_workers: int,
        processes: bool = True,
        capacity_factor: float = 3.0,
        channel_capacity: Optional[int] = None,
        flux_pending: int = 0,
        barrier_timeout: float = 300.0,
        fault_plan=None,
        rebalance: Optional[RebalanceConfig] = None,
        edges: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if capacity_factor < 1.0:
            raise ConfigurationError("capacity_factor must be >= 1")
        if flux_pending < 0:
            raise ConfigurationError("flux_pending must be non-negative")
        if edges is not None and len(edges) != n_workers + 1:
            raise ConfigurationError(
                f"edges must have length n_workers + 1 = {n_workers + 1}, "
                f"got {len(edges)}"
            )
        self.n_workers = n_workers
        self._processes = bool(processes)
        self._capacity_factor = float(capacity_factor)
        self._channel_capacity = channel_capacity
        self._flux_pending0 = int(flux_pending)
        self._barrier_timeout = float(barrier_timeout)
        self.fault_plan = fault_plan
        self.rebalance_config = rebalance
        self._edges0 = tuple(int(e) for e in edges) if edges is not None else None
        self._serial = SerialBackend() if n_workers == 1 else None
        self._bound = False
        self._closed = False
        self._procs: List = []
        self._pipes: List = []
        self._workers: List[ShardWorker] = []
        #: Lifetime rebalance counters (telemetry reads these).
        self.rebalance_count = 0
        self.rebalance_skipped = 0
        self.rebalance_columns_moved = 0
        self._pending_rebalance_event: Optional[Dict] = None

    # -- seam: bind -----------------------------------------------------

    def bind(self, sim) -> "ShardedBackend":
        """Decompose ``sim``'s state into shards and start the pool."""
        if self._serial is not None:
            self._serial.bind(sim)
            return self
        if self._bound:
            raise ConfigurationError("backend is already bound")
        if not sim.hotpath:
            raise ConfigurationError(
                "the sharded backend requires the hot-path kernels "
                "(Simulation(..., hotpath=True))"
            )
        cfg = sim.config
        if isinstance(cfg.seed, np.random.Generator):
            raise ConfigurationError(
                "sharded runs need a stateless seed (int or SeedSequence) "
                "to key the per-shard RNG streams"
            )
        W = self.n_workers
        if self._edges0 is not None:
            self._slabs = ShardSlabs.from_edges(cfg.domain.nx, self._edges0)
        else:
            self._slabs = ShardSlabs.split(cfg.domain.nx, W)

        ctx = None
        if self._processes:
            try:
                ctx = mp.get_context("fork")
            except ValueError:
                raise ConfigurationError(
                    "the 'fork' start method is unavailable on this "
                    "platform; use ShardedBackend(..., processes=False)"
                ) from None
        alloc = self._make_alloc(ctx)

        n_global = sim.particles.n
        n_cells = cfg.domain.n_cells
        self._ctrl = alloc((CTRL_WORDS,), np.int64)
        self._ctrl[CTRL_FLUX] = self._flux_pending0
        self._misc = alloc((MISC_WORDS,), np.float64)
        self._misc[MISC_PLUNGER] = sim.boundaries.plunger.position
        shared: Dict[str, np.ndarray] = {
            "n_parts": alloc((W,), np.int64),
            "front_flags": alloc((W, len(COLUMN_NAMES)), np.int8),
            "diag": alloc((W, NDIAG), np.float64),
            "samp": alloc((W, 6, n_cells), np.float64),
            "misc": self._misc,
            # Live slab edges: the parent publishes a repartition here
            # before issuing CMD_REBALANCE; workers re-read their slab
            # bounds from it at the end of the epoch.
            "edges": alloc((W + 1,), np.int64),
        }
        shared["edges"][:] = np.asarray(self._slabs.edges, dtype=np.int64)
        if sim.surface is not None:
            ns = sim.surface.n_strips
            shared["surf"] = alloc((W, 2, ns + 1), np.float64)
            shared["surf_hits"] = alloc((W, ns + 1), np.int64)
        # Worker span rings: allocated only when a telemetry hub is
        # attached at bind time (otherwise the workers skip emission on
        # one dict lookup per phase).
        telemetry = getattr(sim, "telemetry", None)
        if telemetry is not None:
            cap = int(getattr(telemetry, "span_ring_capacity", 8192))
            shared["spans"] = alloc((W, cap, RING_FIELDS), np.float64)
            shared["span_state"] = alloc((W, RING_STATE), np.int64)
        self._shared = shared

        rdof = cfg.model.rotational_dof
        chan_cap = self._channel_capacity or max(2048, n_global // W)
        self._channels = MigrationChannels(
            W, rdof, chan_cap, alloc, fault_plan=self.fault_plan
        )

        # Stable partition by x: gather + re-bind round-trips exactly.
        order, splits = self._slabs.partition_order(sim.particles.x)
        self._set0: List[Dict[str, np.ndarray]] = []
        self._set1: List[Dict[str, np.ndarray]] = []
        self._workers = []
        self._shard_caps = np.zeros(W, dtype=np.int64)
        for k in range(W):
            seg = sim.particles.select(order[splits[k] : splits[k + 1]])
            cap_k = max(
                512,
                int(self._capacity_factor * max(seg.n, n_global // W)),
            )
            self._shard_caps[k] = cap_k
            set0: Dict[str, np.ndarray] = {}
            set1: Dict[str, np.ndarray] = {}
            for name in COLUMN_NAMES:
                col = getattr(seg, name)
                shape = (cap_k,) + col.shape[1:]
                set0[name] = alloc(shape, col.dtype)
                set1[name] = alloc(shape, col.dtype)
            w = ShardWorker(
                shard_id=k,
                n_workers=W,
                config=cfg,
                slabs=self._slabs,
                channels=self._channels,
                ctrl=self._ctrl,
                shared=shared,
                vf_flat=sim._vf_flat,
                seed=cfg.seed,
                fault_plan=self.fault_plan,
            )
            w.adopt(seg, set0, set1)
            self._set0.append(set0)
            self._set1.append(set1)
            self._workers.append(w)
        # Shard 0 inherits the reservoir and the live plunger phase.
        self._workers[0].reservoir = sim.reservoir
        self._workers[0].boundaries.plunger.position = (
            sim.boundaries.plunger.position
        )

        # Baselines so gather *adds* worker accumulation to whatever the
        # driver's samplers already held (snapshot restores).
        s = sim.sampler
        self._samp_base = np.stack(
            [s._count, s._mu, s._mv, s._mw, s._e_trans, s._e_rot]
        ).copy()
        self._samp_steps0 = s._steps
        if sim.surface is not None:
            self._surf_base = np.stack(
                [sim.surface._impulse_x, sim.surface._impulse_y]
            ).copy()
            self._surf_hits_base = sim.surface._hits.copy()
            self._surf_steps0 = sim.surface._steps
        self._sample_steps = 0

        if self._processes:
            self._start_barrier = ctx.Barrier(W + 1)
            self._mid_barrier = ctx.Barrier(W)
            self._end_barrier = ctx.Barrier(W + 1)
            self._pipes = []
            self._procs = []
            for w in self._workers:
                recv_end, send_end = ctx.Pipe(duplex=False)
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        w,
                        self._start_barrier,
                        self._mid_barrier,
                        self._end_barrier,
                        self._ctrl,
                        send_end,
                    ),
                    daemon=True,
                )
                p.start()
                send_end.close()
                self._pipes.append(recv_end)
                self._procs.append(p)
        self._bound = True
        return self

    def _make_alloc(self, ctx):
        """Shared-memory (process mode) or heap (inline) allocator."""
        if ctx is None:
            return lambda shape, dtype: np.zeros(shape, dtype=dtype)

        def alloc(shape, dtype):
            dt = np.dtype(dtype)
            count = int(np.prod(shape))
            raw = ctx.RawArray("b", max(count, 1) * dt.itemsize)
            return np.frombuffer(raw, dtype=dt, count=count).reshape(shape)

        return alloc

    # -- seam: step -----------------------------------------------------

    def step(self, sim, sample: bool = False) -> StepDiagnostics:
        """Advance every shard one step and merge the diagnostics."""
        if self._serial is not None:
            return self._serial.step(sim, sample=sample)
        if not self._bound or self._closed:
            raise ConfigurationError("backend is not bound (or closed)")
        step_idx = sim.step_count
        if self._processes:
            self._ctrl[CTRL_CMD] = CMD_STEP
            self._ctrl[CTRL_STEP] = step_idx
            self._ctrl[CTRL_SAMPLE] = int(sample)
            self._await(self._start_barrier, step=step_idx)
            self._await(self._end_barrier, step=step_idx)
            if self._ctrl[CTRL_ERROR]:
                self._raise_worker_error(step=step_idx)
        else:
            for w in self._workers:
                w.phase_a(step_idx, sample)
            for w in self._workers:
                w.phase_b(step_idx, sample)
        sim.step_count += 1
        if sample:
            self._sample_steps += 1
        diag = self._merge_diagnostics(sim)
        rb = self.rebalance_config
        if rb is not None and sim.step_count % rb.every == 0:
            self.maybe_rebalance(sim.step_count)
        return diag

    def _await(self, barrier, step: Optional[int] = None) -> None:
        """Wait on a step barrier; on failure, diagnose and raise typed.

        A broken or timed-out barrier with dead children is a crash
        (:class:`WorkerCrashError`, listing the corpses); with every
        worker alive it is a hang (:class:`WorkerHangError`).  Either
        way the pool is unrecoverable, so it is torn down hard before
        raising -- the supervisor respawns from a checkpoint.
        """
        try:
            barrier.wait(timeout=self._barrier_timeout)
        except Exception:
            dead = [
                (w.shard_id, p.exitcode)
                for w, p in zip(self._workers, self._procs)
                if not p.is_alive()
            ]
            self._emergency_stop()
            if dead:
                raise WorkerCrashError(
                    "worker process died during a sharded step barrier",
                    step=step,
                    dead=dead,
                ) from None
            raise WorkerHangError(
                "sharded step barrier timed out with all workers alive",
                step=step,
                timeout_s=self._barrier_timeout,
                n_workers=self.n_workers,
            ) from None

    def _raise_worker_error(self, step: Optional[int] = None) -> None:
        shard = int(self._ctrl[CTRL_ERROR]) - 1
        tracebacks = []
        for k, pipe in enumerate(self._pipes):
            try:
                while pipe.poll(0.5):
                    tracebacks.append(f"[shard {k}]\n{pipe.recv()}")
            except (EOFError, OSError):
                pass
        detail = "\n".join(tracebacks) or "(no traceback received)"
        raise WorkerCrashError(
            f"worker for shard {shard} failed:\n{detail}",
            step=step,
            shard=shard,
        )

    def _merge_diagnostics(self, sim) -> StepDiagnostics:
        d = self._shared["diag"]
        n_pairs = int(d[:, D_NPAIRS].sum())
        n_cand = int(d[:, D_NCAND].sum())
        bstats = BoundaryStats(
            n_reflected_walls=int(d[:, D_WALLS].sum()),
            n_reflected_wedge=int(d[:, D_WEDGE].sum()),
            n_removed_downstream=int(d[:, D_REMOVED].sum()),
            n_injected_upstream=int(d[:, D_INJECTED].sum()),
            n_clamped=int(d[:, D_CLAMPED].sum()),
            plunger_reset=bool(d[0, D_PLUNGER]),
        )
        for name, col in PHASE_COLUMNS:
            sim.perf.record(name, float(d[:, col].sum()))
        n_flow = int(d[:, D_NFLOW].sum())
        sim.perf.end_step(n_particles=n_flow)
        sort_moved_fraction: Optional[float] = None
        sort_rebuilds: Optional[int] = None
        if sim.hotpath and sim.config.sort_kernel == "incremental":
            sort_moved_fraction = (
                float(d[:, D_SORT_MOVED].sum()) / n_flow if n_flow else 0.0
            )
            sort_rebuilds = int(d[:, D_SORT_REBUILD].sum())
        return StepDiagnostics(
            step=sim.step_count,
            n_flow=n_flow,
            n_reservoir=int(d[0, D_NRES]),
            n_candidates=n_cand,
            n_collisions=int(d[:, D_NCOLL].sum()),
            pairing_efficiency=(n_cand / n_pairs) if n_pairs else 0.0,
            mean_collision_probability=(
                float(d[:, D_PROBSUM].sum()) / n_cand if n_cand else 0.0
            ),
            boundary=bstats,
            total_energy=float(d[:, D_ENERGY].sum()),
            momentum_x=float(d[:, D_MOMX].sum()),
            sort_moved_fraction=sort_moved_fraction,
            sort_rebuilds=sort_rebuilds,
            phase_seconds=(
                sim.perf.last_step_seconds if sim.perf.enabled else None
            ),
        )

    # -- adaptive load balancing ----------------------------------------

    @property
    def slab_edges(self) -> Optional[Tuple[int, ...]]:
        """Current slab-edge tuple (``None`` for the serial delegate)."""
        if self._serial is not None or not self._bound:
            return None
        return self._slabs.edges

    def _column_histogram(self) -> np.ndarray:
        """Global per-column particle counts, read from shard memory.

        A pure function of simulation state (never wall-clock), read
        between steps while every worker is idle at the start barrier
        -- this is what keeps the rebalance decision, and therefore the
        whole run, bitwise reproducible at a fixed worker count.
        """
        nx = self._slabs.nx
        hist = np.zeros(nx, dtype=np.int64)
        flags = self._shared["front_flags"]
        xi = COLUMN_NAMES.index("x")
        for k in range(self.n_workers):
            nk = int(self._shared["n_parts"][k])
            src = self._set0[k] if flags[k, xi] == 0 else self._set1[k]
            cols = np.clip(
                np.floor(src["x"][:nk]).astype(np.int64), 0, nx - 1
            )
            hist += np.bincount(cols, minlength=nx)
        return hist

    def maybe_rebalance(self, step: int, force: bool = False) -> bool:
        """Run the measure -> decide -> act loop once.

        Measures the per-shard loads, and when the max-over-mean
        imbalance exceeds the configured threshold (or ``force`` is
        set), plans new edges, re-validates channel and buffer capacity
        against the exact planned transfers, and executes the
        repartition epoch.  Records a ``rebalance`` event (executed or
        skipped, with the measured imbalance and columns moved) for the
        telemetry hub to collect via :meth:`take_rebalance_event`.
        Returns ``True`` when a repartition was executed.
        """
        if self._serial is not None or not self._bound or self._closed:
            return False
        cfg = self.rebalance_config or RebalanceConfig(every=1)
        loads = np.asarray(self._shared["n_parts"], dtype=np.float64)
        imb = load_imbalance(loads)
        if not force and imb < cfg.threshold:
            return False
        hist = self._column_histogram()
        old = self._slabs
        new = old.rebalance(hist, max_shift=cfg.max_shift)
        event: Dict = {
            "step": int(step),
            "imbalance": float(imb),
            "edges_before": list(old.edges),
            "edges_after": list(new.edges),
            "columns_moved": int(
                np.abs(
                    np.asarray(new.edges) - np.asarray(old.edges)
                ).sum()
            ),
            "rows_moved": 0,
            "executed": False,
            "skipped": None,
        }
        if new is old:
            # Already at the clamped optimum: nothing to move.  Not an
            # actionable event, so leave the counters untouched.
            return False
        reason = validate_plan(
            old, new, hist, self._channels.capacity, self._shard_caps
        )
        if reason is not None:
            event["skipped"] = reason
            event["edges_after"] = list(old.edges)
            event["columns_moved"] = 0
            self.rebalance_skipped += 1
            self._pending_rebalance_event = event
            return False
        to_left, to_right = planned_transfers(old, new, hist)
        event["rows_moved"] = int(to_left.sum() + to_right.sum())
        self._execute_rebalance(new, step)
        event["executed"] = True
        self.rebalance_count += 1
        self.rebalance_columns_moved += event["columns_moved"]
        self._pending_rebalance_event = event
        return True

    def _execute_rebalance(self, new: ShardSlabs, step: int) -> None:
        """Publish the new edges and run the repartition epoch."""
        self._shared["edges"][:] = np.asarray(new.edges, dtype=np.int64)
        self._slabs = new
        if self._processes:
            self._ctrl[CTRL_CMD] = CMD_REBALANCE
            self._ctrl[CTRL_STEP] = step
            self._await(self._start_barrier, step=step)
            self._await(self._end_barrier, step=step)
            if self._ctrl[CTRL_ERROR]:
                self._raise_worker_error(step=step)
        else:
            for w in self._workers:
                w.rebalance_a(step)
            for w in self._workers:
                w.rebalance_b()

    def take_rebalance_event(self) -> Optional[Dict]:
        """Pop the latest rebalance event (telemetry hub hook)."""
        ev = self._pending_rebalance_event
        self._pending_rebalance_event = None
        return ev

    # -- seam: gather ---------------------------------------------------

    @property
    def pending_flux(self) -> int:
        """Downstream-exit count in transit toward shard 0's reservoir."""
        if self._serial is not None:
            return 0
        return int(self._ctrl[CTRL_FLUX])

    def gather(self, sim) -> None:
        """Mirror the authoritative shard state back into the driver."""
        if self._serial is not None:
            return
        if not self._bound or self._closed:
            raise ConfigurationError("backend is not bound (or closed)")
        # Flow population: concatenate the shard segments in shard
        # order from whichever shared buffer is each column's front.
        full: Optional[ParticleArrays] = None
        flags = self._shared["front_flags"]
        for k in range(self.n_workers):
            nk = int(self._shared["n_parts"][k])
            cols = {}
            for ci, name in enumerate(COLUMN_NAMES):
                src = (self._set0[k] if flags[k, ci] == 0 else self._set1[k])
                cols[name] = src[name][:nk].copy()
            seg = ParticleArrays(**cols)
            full = seg if full is None else ParticleArrays.concatenate(full, seg)
        if sim.hotpath:
            full.enable_scratch()
        sim.particles = full

        # Reservoir + plunger live in worker 0's process memory.
        if self._processes:
            self._ctrl[CTRL_CMD] = CMD_GATHER
            self._await(self._start_barrier)
            payload = self._recv_payload(self._pipes[0])
            self._await(self._end_barrier)
            if self._ctrl[CTRL_ERROR]:
                self._raise_worker_error()
            res = ParticleArrays(
                x=payload["res_x"],
                y=payload["res_y"],
                u=payload["res_u"],
                v=payload["res_v"],
                w=payload["res_w"],
                rot=payload["res_rot"],
                perm=payload["res_perm"],
                cell=payload["res_cell"],
                z=payload["res_z"],
            )
            plunger = float(payload["plunger"])
        else:
            w0 = self._workers[0]
            res = w0.reservoir.particles.copy()
            plunger = w0.boundaries.plunger.position
        if sim.hotpath:
            res.enable_scratch()
        sim.reservoir.particles = res
        sim.boundaries.plunger.position = plunger

        # Samplers: restored baseline + the shared per-shard sums.
        s = sim.sampler
        merged = self._samp_base + self._shared["samp"].sum(axis=0)
        s._count[:] = merged[0]
        s._mu[:] = merged[1]
        s._mv[:] = merged[2]
        s._mw[:] = merged[3]
        s._e_trans[:] = merged[4]
        s._e_rot[:] = merged[5]
        s._steps = self._samp_steps0 + self._sample_steps
        if sim.surface is not None and "surf" in self._shared:
            surf = self._surf_base + self._shared["surf"].sum(axis=0)
            sim.surface._impulse_x[:] = surf[0]
            sim.surface._impulse_y[:] = surf[1]
            sim.surface._hits[:] = (
                self._surf_hits_base + self._shared["surf_hits"].sum(axis=0)
            )
            sim.surface._steps = self._surf_steps0 + self._sample_steps

    def _recv_payload(self, pipe):
        deadline = time.monotonic() + self._barrier_timeout
        while time.monotonic() < deadline:
            if pipe.poll(0.25):
                return pipe.recv()
            if self._ctrl[CTRL_ERROR]:
                self._await(self._end_barrier)
                self._raise_worker_error()
        self._emergency_stop()
        raise WorkerHangError(
            "timed out waiting for the gather payload",
            timeout_s=self._barrier_timeout,
        )

    # -- introspection for the invariant auditor ------------------------

    def shard_columns(self) -> Optional[List[Dict[str, np.ndarray]]]:
        """Zero-copy views of every shard's live particle columns.

        The auditor reads the authoritative shard state straight out of
        the shared ping-pong buffers (front buffer, first ``n_k`` rows
        per column) without a gather.  ``None`` for the 1-worker serial
        delegate, where ``sim.particles`` is already authoritative.
        """
        if self._serial is not None or not self._bound:
            return None
        flags = self._shared["front_flags"]
        views: List[Dict[str, np.ndarray]] = []
        for k in range(self.n_workers):
            nk = int(self._shared["n_parts"][k])
            cols = {}
            for ci, name in enumerate(COLUMN_NAMES):
                src = self._set0[k] if flags[k, ci] == 0 else self._set1[k]
                cols[name] = src[name][:nk]
            views.append(cols)
        return views

    def shard_slab_bounds(self) -> Optional[List[Tuple[float, float]]]:
        """Per-shard ``(x_lo, x_hi)`` slab bounds (containment audit)."""
        if self._serial is not None or not self._bound:
            return None
        return [self._slabs.bounds(k) for k in range(self.n_workers)]

    def migration_state(self) -> Optional[Tuple[np.ndarray, int]]:
        """``(counts, capacity)`` of the migration channels, for audit."""
        if self._serial is not None or not self._bound:
            return None
        return np.asarray(self._channels.counts), self._channels.capacity

    def sort_states(self) -> Optional[List]:
        """Per-shard :class:`IncrementalSorter` instances, for audit.

        Only reachable in inline mode -- in process mode the sorters
        live in worker memory, so the order audit is skipped there.
        ``None`` entries (counting kernel) are possible.
        """
        if self._serial is not None or not self._bound or self._processes:
            return None
        return [w._sorter for w in self._workers]

    # -- introspection for the telemetry hub -----------------------------

    def shard_loads(self) -> Optional[np.ndarray]:
        """Per-shard particle counts (the load-imbalance observable)."""
        if self._serial is not None or not self._bound:
            return None
        return np.asarray(self._shared["n_parts"]).copy()

    def exchange_occupancy(self) -> Optional[Tuple[np.ndarray, int]]:
        """``(high_water, capacity)`` of the migration channels.

        The high-water marks accumulate across the run (written by the
        workers at ship time), so a single read answers "how close did
        any channel come to overflowing".
        """
        if self._serial is not None or not self._bound:
            return None
        return (
            np.asarray(self._channels.high_water).copy(),
            self._channels.capacity,
        )

    def drain_span_rings(self) -> Optional[np.ndarray]:
        """Drain every worker span ring into one row block (or None)."""
        if self._serial is not None or not self._bound:
            return None
        rings = self._shared.get("spans")
        if rings is None:
            return None
        states = self._shared["span_state"]
        blocks = [
            drain_ring(rings[k], states[k]) for k in range(self.n_workers)
        ]
        blocks = [b for b in blocks if b.shape[0]]
        if not blocks:
            return np.empty((0, RING_FIELDS))
        return np.concatenate(blocks, axis=0)

    # -- seam: close ----------------------------------------------------

    def close(self) -> None:
        """Stop the worker pool (idempotent; inline mode is a no-op).

        Escalates per worker: cooperative STOP handshake, then
        ``join``, then ``terminate`` (SIGTERM), then ``kill`` (SIGKILL)
        -- so a wedged or fault-injected worker can never leak past an
        exception path (``Simulation`` is a context manager and calls
        this from ``__exit__``).
        """
        if self._serial is not None or self._closed:
            self._closed = True
            return
        self._closed = True
        if self._processes and self._procs:
            try:
                self._ctrl[CTRL_CMD] = CMD_STOP
                self._start_barrier.wait(timeout=5.0)
            except Exception:
                pass
            self._shutdown_procs()

    def _emergency_stop(self) -> None:
        """Tear the pool down without the cooperative handshake.

        Used when the step protocol itself failed (broken barrier, dead
        or wedged workers): the STOP command could never be delivered,
        so go straight to the join -> terminate -> kill escalation.
        """
        self._closed = True
        if self._processes and self._procs:
            self._shutdown_procs(join_first=0.5)

    def _shutdown_procs(self, join_first: float = 5.0) -> None:
        for p in self._procs:
            p.join(timeout=join_first)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        self._procs = []
        self._pipes = []
