"""ABL2 -- ablation: stochastic rounding of the fixed-point halvings.

The paper: "the consistent truncation after division by 2 can lead to a
significant loss in total energy in stagnation regions of the flow.  The
problem is solved by arbitrarily adding with uniform probability either
0 or 1 to the result of this division, in a statistical sense this
achieves the correct rounding."

The ablation isolates the collision arithmetic on a cold
(stagnation-like) fixed-point bath and measures the relative energy
drift per halving mode, including the "exact_paper" literal reading
(bit added after the divide) for contrast.
"""

from repro.analysis.report import ExperimentRecord
from repro.core.engine_cm import fixed_point_energy_drift

ROUNDS = 50
COLD_LSB = 96.0  # most probable speed in fixed-point LSBs: stagnation-like


def test_abl_stochastic_rounding(benchmark, emit):
    drift_trunc = fixed_point_energy_drift(
        "truncate", rounds=ROUNDS, c_mp_lsb=COLD_LSB, seed=11
    )
    drift_floor = fixed_point_energy_drift(
        "floor", rounds=ROUNDS, c_mp_lsb=COLD_LSB, seed=11
    )
    drift_paper = fixed_point_energy_drift(
        "exact_paper", rounds=ROUNDS, c_mp_lsb=COLD_LSB, seed=11
    )
    drift_stoch = benchmark.pedantic(
        fixed_point_energy_drift,
        args=("stochastic",),
        kwargs={"rounds": ROUNDS, "c_mp_lsb": COLD_LSB, "seed": 11},
        rounds=1,
        iterations=1,
    )

    rec = ExperimentRecord(
        "ABL2", "fixed-point halving modes: energy drift on a cold bath"
    )
    rec.add(
        "relative drift, truncate",
        None,
        drift_trunc,
        note="the raw integer divide the paper observed losing energy",
    )
    rec.add("relative drift, floor shift", None, drift_floor)
    rec.add(
        "relative drift, stochastic (pre-shift bit)",
        0.0,
        drift_stoch,
        rel_tol=abs(drift_trunc) / 10,
        note="the paper's fix, read as add-before-shift",
    )
    rec.add(
        "relative drift, literal paper wording (post-divide bit)",
        None,
        drift_paper,
        note="+0.5 LSB mean bias on every word: still drifts",
    )
    rec.add(
        "improvement factor |truncate| / |stochastic|",
        None,
        abs(drift_trunc) / max(abs(drift_stoch), 1e-12),
    )
    emit(rec)

    assert drift_trunc < -0.05
    assert abs(drift_stoch) < abs(drift_trunc) / 10
    # The literal reading (bit added after the divide) is also bad --
    # an order of magnitude worse than the pre-shift form.
    assert abs(drift_paper) > 10 * abs(drift_stoch)
