"""Field extraction helpers for the figure benches.

Figures 2/3/5/6 of the paper are *surface* (perspective) views of the
same density data as the contour plots; what they communicate is the
shape of the density surface in specific windows: the full tunnel (wake
shock visible or washed out) and the stagnation region by the wedge
(approach to the theoretical post-shock rise).  These helpers cut those
windows and summarize them so the benches can print comparable numbers
and dump the raw surfaces for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge


@dataclass(frozen=True)
class Window:
    """A rectangular cell-index window of a field."""

    i_lo: int
    i_hi: int
    j_lo: int
    j_hi: int

    def extract(self, field: np.ndarray) -> np.ndarray:
        """Slice the window out of a full-domain field."""
        return field[self.i_lo : self.i_hi, self.j_lo : self.j_hi]


def stagnation_window(wedge: Wedge, domain: Domain, pad: float = 6.0) -> Window:
    """The figure 3/6 window: the region by the wedge face.

    Covers from ``pad`` cells upstream of the leading edge to the
    corner, floor to a little above the corner height.
    """
    i_lo = max(int(wedge.x_leading - pad), 0)
    i_hi = min(int(wedge.x_trailing + 1), domain.nx)
    j_hi = min(int(wedge.height + pad), domain.ny)
    if i_hi <= i_lo or j_hi <= 0:
        raise ConfigurationError("degenerate stagnation window")
    return Window(i_lo=i_lo, i_hi=i_hi, j_lo=0, j_hi=j_hi)


def wake_window(wedge: Wedge, domain: Domain, clearance: float = 2.0) -> Window:
    """The wake region behind the back face (figure 2/5's far field)."""
    i_lo = min(int(wedge.x_trailing + clearance), domain.nx - 2)
    j_hi = min(int(wedge.height + 2), domain.ny)
    return Window(i_lo=i_lo, i_hi=domain.nx, j_lo=0, j_hi=j_hi)


@dataclass(frozen=True)
class SurfaceSummary:
    """Scalar description of a density-surface window."""

    minimum: float
    maximum: float
    mean: float
    roughness: float  # RMS cell-to-cell jump: statistical noise proxy

    @classmethod
    def of(cls, window_field: np.ndarray) -> "SurfaceSummary":
        f = np.asarray(window_field, dtype=np.float64)
        if f.size == 0:
            raise ConfigurationError("empty window")
        diff_x = np.diff(f, axis=0)
        diff_y = np.diff(f, axis=1)
        rough = float(
            np.sqrt(
                (np.concatenate((diff_x.ravel(), diff_y.ravel())) ** 2).mean()
            )
        )
        return cls(
            minimum=float(f.min()),
            maximum=float(f.max()),
            mean=float(f.mean()),
            roughness=rough,
        )


def stagnation_rise_profile(
    rho: np.ndarray,
    wedge: Wedge,
    offsets: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0),
    chord_fraction: float = 0.75,
) -> np.ndarray:
    """Density sampled at fixed normal offsets off the ramp surface.

    Figure 3's subject: "the approach that the simulation takes to the
    theoretical rise in density behind the shock."  Samples the field at
    points displaced along the ramp normal from the surface point at
    ``chord_fraction`` of the ramp (default 75%, where the shock layer
    is thick enough that small offsets stay inside it; the ramp normal
    leans upstream, so large offsets or forward stations would poke
    through the shock into the freestream).  A converged near-continuum
    run rises toward the R-H plateau as the offset leaves the cut-cell
    band.
    """
    if not 0.0 < chord_fraction < 1.0:
        raise ConfigurationError("chord_fraction must be in (0, 1)")
    xm = wedge.x_leading + chord_fraction * wedge.base
    ym = wedge.ramp_height_at(xm)
    nx_hat, ny_hat = wedge.ramp_normal
    out = []
    for d in offsets:
        px, py = xm + d * nx_hat, ym + d * ny_hat
        i, j = int(px), int(py)
        i = min(max(i, 0), rho.shape[0] - 1)
        j = min(max(j, 0), rho.shape[1] - 1)
        out.append(rho[i, j])
    return np.asarray(out)


def centerline_profile(rho: np.ndarray, j: int) -> np.ndarray:
    """A single x-profile of the field at row ``j`` (for quick plots)."""
    if not 0 <= j < rho.shape[1]:
        raise ConfigurationError("row out of range")
    return rho[:, j].copy()
