"""Chaos integration suite: the PR's acceptance criteria.

Every scenario here injects a real failure -- SIGKILLed workers,
stalled heartbeats, expired deadlines, a SIGKILLed orchestrator, a
torn journal -- and asserts the service's exactly-once terminal-state
contract plus bitwise-identical resumption:

* every submitted job reaches exactly ONE terminal state (counted in
  the journal, not just the in-memory table);
* a job that was killed and resumed produces a ``density_sha256``
  identical to an unfailed run at the same worker count;
* duplicate submission of a completed (digest, seed) returns the
  cached result without stepping the engine.
"""

from __future__ import annotations

import time

import pytest

from repro.service import Orchestrator, ServiceJournal
from repro.service import store as st
from repro.service.store import load_journal_tolerant
from repro.resilience.faults import FaultPlan, FaultSpec
from tests.service.conftest import TINY, fast_config, wait_terminal

pytestmark = [pytest.mark.service, pytest.mark.resilience]


def terminal_record_counts(data_dir) -> dict:
    """job_id -> number of terminal-state records in the journal."""
    records, _ = load_journal_tolerant(
        data_dir / ServiceJournal.filename
    )
    counts: dict = {}
    for rec in records:
        if rec.get("kind") == "submitted":
            counts.setdefault(rec["job"]["job_id"], 0)
        if (
            rec.get("kind") == "state"
            and rec.get("state") in st.TERMINAL_STATES
        ):
            counts[rec["job_id"]] = counts.get(rec["job_id"], 0) + 1
    return counts


def assert_exactly_once_terminal(orch) -> None:
    counts = terminal_record_counts(orch.data_dir)
    assert counts, "no jobs journaled"
    assert all(n == 1 for n in counts.values()), counts
    for job in orch.store.jobs.values():
        assert job.terminal, (job.job_id, job.state)


def clean_sha(tmp_path, seed) -> str:
    """The density digest of an unfailed run of the TINY job."""
    orch = Orchestrator(tmp_path / "clean", fast_config(workers=1))
    out = orch.submit(scenario="wedge", seed=seed, overrides=dict(TINY))
    wait_terminal(orch, out["job_id"])
    sha = orch.result(out["job_id"])["density_sha256"]
    orch.shutdown()
    return sha


class TestWorkerDeath:
    def test_sigkilled_worker_resumes_bitwise_identical(self, tmp_path):
        orch = Orchestrator(tmp_path / "svc", fast_config(workers=1))
        out = orch.submit(
            scenario="wedge",
            seed=31,
            overrides=dict(TINY),
            faults=[{"kind": "worker_kill", "step": 16}],
        )
        status = wait_terminal(orch, out["job_id"])
        assert status["state"] == st.DONE
        assert status["attempt"] == 2  # one death, one resume
        result = orch.result(out["job_id"])
        assert result["attempt"] == 2
        assert_exactly_once_terminal(orch)
        orch.shutdown()
        assert result["density_sha256"] == clean_sha(tmp_path, 31)

    def test_repeated_deaths_exhaust_retries_to_failed(self, tmp_path):
        # Three kills against max_job_retries=1: attempts 1 and 2 both
        # die, so the job must FAIL -- exactly once.
        orch = Orchestrator(
            tmp_path, fast_config(workers=1, max_job_retries=1)
        )
        out = orch.submit(
            scenario="wedge",
            seed=32,
            overrides=dict(TINY),
            faults=[
                {"kind": "worker_kill", "step": 8},
                {"kind": "worker_kill", "step": 8},
                {"kind": "worker_kill", "step": 8},
            ],
        )
        status = wait_terminal(orch, out["job_id"])
        assert status["state"] == st.FAILED
        assert status["attempt"] == 2
        assert_exactly_once_terminal(orch)
        orch.shutdown()


class TestWatchdog:
    def test_stalled_heartbeat_is_killed_and_retried(self, tmp_path):
        orch = Orchestrator(
            tmp_path / "svc",
            fast_config(workers=1, heartbeat_timeout=1.0),
        )
        out = orch.submit(
            scenario="wedge",
            seed=33,
            overrides=dict(TINY),
            faults=[
                {"kind": "worker_stall", "step": 8, "seconds": 60.0}
            ],
        )
        status = wait_terminal(orch, out["job_id"])
        assert status["state"] == st.DONE
        assert status["attempt"] == 2
        assert "stall" in (orch.store.get(out["job_id"]).error or "")
        assert_exactly_once_terminal(orch)
        result = orch.result(out["job_id"])
        orch.shutdown()
        assert result["density_sha256"] == clean_sha(tmp_path, 33)

    def test_deadline_expiry_times_out_without_retry(self, tmp_path):
        orch = Orchestrator(tmp_path, fast_config(workers=1))
        out = orch.submit(
            scenario="wedge",
            seed=34,
            overrides={
                "nx": 32, "ny": 16, "density": 6.0,
                "transient": 0, "average": 100000,
            },
            deadline=1.0,
        )
        status = wait_terminal(orch, out["job_id"], timeout=60)
        assert status["state"] == st.TIMED_OUT
        assert status["attempt"] == 1  # a deadline is not retryable
        assert "deadline" in status["error"]
        assert orch._m_timeouts.value == 1
        assert_exactly_once_terminal(orch)
        orch.shutdown()


class TestOrchestratorCrash:
    def test_sigkill_after_dispatch_resumes_on_restart(self, tmp_path):
        # The injected kill fires right after the RUNNING transition is
        # journaled (seq 3: service_start, submitted, state) -- the
        # worker is mid-flight and the orchestrator dies without a
        # trace, exactly like SIGKILL.
        data = tmp_path / "svc"
        plan = FaultPlan([FaultSpec("orchestrator_kill", step=3)])
        orch = Orchestrator(
            data, fast_config(workers=1), fault_plan=plan
        )
        out = orch.submit(scenario="wedge", seed=35, overrides=dict(TINY))
        deadline = time.time() + 30
        while not orch._dead:
            assert time.time() < deadline, "injected kill never fired"
            time.sleep(0.02)

        orch2 = Orchestrator(data, fast_config(workers=1))
        # Crash recovery replayed the journal: the in-flight job was
        # requeued, resumed from its checkpoint, and finished.
        status = wait_terminal(orch2, out["job_id"])
        assert status["state"] == st.DONE
        assert_exactly_once_terminal(orch2)
        result = orch2.result(out["job_id"])
        # The cache survived the crash too: resubmission is served
        # without stepping the engine.
        again = orch2.submit(
            scenario="wedge", seed=35, overrides=dict(TINY)
        )
        assert again["cached"] is True
        assert again["job_id"] == out["job_id"]
        orch2.shutdown()
        assert result["density_sha256"] == clean_sha(tmp_path, 35)

    def test_torn_journal_tail_recovers_on_restart(self, tmp_path):
        # Tear the journal on the DONE record: the crash loses the
        # terminal transition, so the restarted orchestrator replays
        # the job as RUNNING, requeues it, and it completes again.
        # The journal then holds exactly one (surviving) DONE record.
        plan = FaultPlan([FaultSpec("journal_tear", step=4)])
        orch = Orchestrator(
            tmp_path, fast_config(workers=1), fault_plan=plan
        )
        out = orch.submit(scenario="wedge", seed=36, overrides=dict(TINY))
        deadline = time.time() + 60
        while not orch._dead:
            assert time.time() < deadline, "injected tear never fired"
            time.sleep(0.02)

        orch2 = Orchestrator(tmp_path, fast_config(workers=1))
        assert orch2.store.torn_tail is True
        status = wait_terminal(orch2, out["job_id"])
        assert status["state"] == st.DONE
        assert_exactly_once_terminal(orch2)
        result = orch2.result(out["job_id"])
        orch2.shutdown()
        assert result["steps"] == TINY["average"]


class TestChaosMix:
    def test_every_job_reaches_exactly_one_terminal_state(self, tmp_path):
        """The headline invariant under a mixed chaos load."""
        orch = Orchestrator(
            tmp_path,
            fast_config(
                workers=2, heartbeat_timeout=1.5, max_job_retries=2
            ),
        )
        jobs = [
            orch.submit(scenario="wedge", seed=41, overrides=dict(TINY)),
            orch.submit(
                scenario="wedge",
                seed=42,
                overrides=dict(TINY),
                faults=[{"kind": "worker_kill", "step": 8}],
            ),
            orch.submit(
                scenario="wedge",
                seed=43,
                overrides=dict(TINY),
                faults=[
                    {"kind": "worker_stall", "step": 16, "seconds": 30.0}
                ],
            ),
            orch.submit(
                scenario="wedge",
                seed=44,
                overrides={
                    "nx": 32, "ny": 16, "density": 6.0,
                    "transient": 0, "average": 100000,
                },
                deadline=1.5,
            ),
        ]
        states = {
            j["job_id"]: wait_terminal(orch, j["job_id"], timeout=180)[
                "state"
            ]
            for j in jobs
        }
        assert states[jobs[0]["job_id"]] == st.DONE
        assert states[jobs[1]["job_id"]] == st.DONE
        assert states[jobs[2]["job_id"]] == st.DONE
        assert states[jobs[3]["job_id"]] == st.TIMED_OUT
        assert_exactly_once_terminal(orch)
        orch.shutdown()
